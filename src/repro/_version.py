"""Single source of truth for the package version.

The authoritative version lives in ``pyproject.toml``.  Installed builds
read it back through :mod:`importlib.metadata`; source checkouts (the
``PYTHONPATH=src`` workflow used by the test-suite and CI) fall back to
parsing ``pyproject.toml`` directly so the two never disagree.
"""

from __future__ import annotations

import re
from pathlib import Path

#: The distribution name registered in ``pyproject.toml``.
DISTRIBUTION_NAME = "repro-topl-icde"

_VERSION_PATTERN = re.compile(r'^version\s*=\s*"([^"]+)"\s*$', re.MULTILINE)


def _version_from_pyproject() -> str | None:
    """Parse ``version = "..."`` out of the checkout's pyproject.toml."""
    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    match = _VERSION_PATTERN.search(text)
    return match.group(1) if match else None


def resolve_version() -> str:
    """Return the package version from installed metadata or the source tree."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return _version_from_pyproject() or "0.0.0"
    try:
        return version(DISTRIBUTION_NAME)
    except PackageNotFoundError:
        return _version_from_pyproject() or "0.0.0"


__version__ = resolve_version()
