"""Maximum Influence Arborescence (MIA) propagation primitives.

Section II-B adopts the MIA model of Chen et al.:

* The propagation probability of a path ``P_{u,v} = <u = u_1, ..., u_m = v>``
  is the product of its edge probabilities (Eq. 1).
* The *maximum influence path* ``MIP_{u,v}`` is the path maximising that
  product (Eq. 2), and the user-to-user propagation probability ``upp(u, v)``
  is its probability (Eq. 3).

Finding the maximum-product path is a shortest-path problem: maximising
``prod p_i`` equals minimising ``sum -log p_i``.  We run Dijkstra directly in
probability space (max-heap on probabilities) to avoid the log transform and
its numerical edge cases at ``p = 0``.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from typing import Optional

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork, VertexId


def path_propagation_probability(graph: SocialNetwork, path: Iterable[VertexId]) -> float:
    """Return ``pp(P)`` — the product of edge probabilities along ``path`` (Eq. 1).

    Raises
    ------
    GraphError
        If the path revisits a vertex (paths are non-cyclic user sequences).
    EdgeNotFoundError
        If two consecutive vertices are not adjacent.
    """
    vertices = list(path)
    if len(set(vertices)) != len(vertices):
        raise GraphError(f"path revisits a vertex: {vertices!r}")
    probability = 1.0
    for u, v in zip(vertices, vertices[1:]):
        probability *= graph.probability(u, v)
    return probability


def maximum_influence_paths(
    graph: SocialNetwork,
    source: VertexId,
    threshold: float = 0.0,
    allowed: Optional[frozenset] = None,
) -> dict[VertexId, float]:
    """Return ``upp(source, v)`` for every vertex reachable above ``threshold``.

    Runs a max-product Dijkstra from ``source``.  Vertices whose best path
    probability falls below ``threshold`` are not expanded (the MIA model
    truncates arborescences at a minimum influence, which is also what keeps
    the computation local); they are omitted from the result.

    Parameters
    ----------
    graph:
        The social network.
    source:
        Origin of the propagation.
    threshold:
        Minimum propagation probability to keep exploring (``0`` explores the
        whole reachable graph).
    allowed:
        Optional vertex subset the propagation may travel through.

    Returns
    -------
    dict
        Mapping ``vertex -> upp(source, vertex)``; contains ``source -> 1.0``.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not 0.0 <= threshold <= 1.0:
        raise GraphError(f"threshold must be in [0, 1], got {threshold}")
    if allowed is not None and source not in allowed:
        raise GraphError(f"source {source!r} is not in the allowed vertex set")

    best: dict[VertexId, float] = {}
    # Max-heap via negated probabilities.
    heap: list[tuple[float, int, VertexId]] = [(-1.0, 0, source)]
    counter = 1
    adjacency = graph.adjacency()
    while heap:
        negative_probability, _, vertex = heapq.heappop(heap)
        probability = -negative_probability
        if vertex in best:
            continue
        best[vertex] = probability
        for neighbour in adjacency[vertex]:
            if neighbour in best:
                continue
            if allowed is not None and neighbour not in allowed:
                continue
            next_probability = probability * graph.probability(vertex, neighbour)
            if next_probability < threshold or next_probability <= 0.0:
                continue
            heapq.heappush(heap, (-next_probability, counter, neighbour))
            counter += 1
    return best


def user_to_user_propagation(
    graph: SocialNetwork, source: VertexId, target: VertexId
) -> float:
    """Return ``upp(source, target)`` (Eq. 3); ``0`` when no path exists."""
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return 1.0
    probabilities = maximum_influence_paths(graph, source)
    return probabilities.get(target, 0.0)


def maximum_influence_path(
    graph: SocialNetwork, source: VertexId, target: VertexId
) -> Optional[list[VertexId]]:
    """Return the vertices of ``MIP_{source, target}`` or ``None`` if unreachable.

    Mostly used by tests and examples; the query algorithms only need the
    probabilities, not the concrete paths.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return [source]

    best: dict[VertexId, float] = {}
    predecessor: dict[VertexId, VertexId] = {}
    heap: list[tuple[float, int, VertexId]] = [(-1.0, 0, source)]
    counter = 1
    adjacency = graph.adjacency()
    while heap:
        negative_probability, _, vertex = heapq.heappop(heap)
        probability = -negative_probability
        if vertex in best:
            continue
        best[vertex] = probability
        if vertex == target:
            break
        for neighbour in adjacency[vertex]:
            if neighbour in best:
                continue
            next_probability = probability * graph.probability(vertex, neighbour)
            if next_probability <= 0.0:
                continue
            if next_probability > best.get(neighbour, -1.0):
                pass
            heapq.heappush(heap, (-next_probability, counter, neighbour))
            counter += 1
            # Record the predecessor of the *best known* relaxation.  Because
            # the heap may contain stale entries, only overwrite when this
            # relaxation is the best seen so far for the neighbour.
            recorded = predecessor.get(neighbour)
            if recorded is None or next_probability > _path_probability_via(
                graph, best, predecessor, neighbour
            ):
                predecessor[neighbour] = vertex
    if target not in best:
        return None
    path = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    return path


def _path_probability_via(
    graph: SocialNetwork,
    best: dict[VertexId, float],
    predecessor: dict[VertexId, VertexId],
    vertex: VertexId,
) -> float:
    """Probability of the currently-recorded path to ``vertex`` (0 if unknown)."""
    parent = predecessor.get(vertex)
    if parent is None or parent not in best:
        return 0.0
    return best[parent] * graph.probability(parent, vertex)
