"""Community-level influence propagation.

This module implements the community-to-user propagation probability
``cpp(g, v)`` (Eq. 4), the influenced community ``g_inf`` (Definition 3), and
the influential score ``sigma(g)`` (Eq. 5) — i.e. the
``calculate_influence(g, theta)`` routine of Section VI-B.

``cpp(g, v)`` is ``max_{u in V(g)} upp(u, v)`` for vertices outside ``g`` and
1 for members of ``g``.  Computationally this is a *multi-source* max-product
Dijkstra seeded with every community vertex at probability 1.  The expansion
is truncated at the influence threshold ``theta``: once the best achievable
probability for a frontier vertex falls below ``theta`` it can never rise
again (edge probabilities are <= 1), so the truncation is exact — matching
the paper's boundary-expansion description where a new vertex ``v_new`` is
added while ``cpp(g, v_new) = max_{u in g_inf} cpp(g, u) * p_{u, v_new} >= theta``.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork, VertexId


@dataclass(frozen=True)
class InfluencedCommunity:
    """The influenced community ``g_inf`` of a seed community.

    Attributes
    ----------
    seed_vertices:
        The vertices of the seed community ``g``.
    cpp:
        Mapping ``vertex -> cpp(g, vertex)`` for every vertex of ``g_inf``
        (i.e. every vertex with ``cpp >= theta``, including the seed vertices
        at probability 1).
    threshold:
        The influence threshold ``theta`` the community was computed for.
    """

    seed_vertices: frozenset
    cpp: dict
    threshold: float

    @property
    def vertices(self) -> frozenset:
        """All vertices of ``g_inf`` (seed members included)."""
        return frozenset(self.cpp)

    @property
    def influenced_only(self) -> frozenset:
        """Vertices influenced by ``g`` but not members of it."""
        return frozenset(self.cpp) - self.seed_vertices

    @property
    def score(self) -> float:
        """The influential score ``sigma(g)`` (Eq. 5)."""
        return sum(self.cpp.values())

    def __len__(self) -> int:
        return len(self.cpp)

    def cpp_of(self, vertex: VertexId) -> float:
        """Return ``cpp(g, vertex)``; 0 when the vertex is outside ``g_inf``."""
        return self.cpp.get(vertex, 0.0)


def community_propagation(
    graph: SocialNetwork,
    seed_vertices: Iterable[VertexId],
    threshold: float,
) -> InfluencedCommunity:
    """Compute the influenced community of ``seed_vertices`` at ``threshold``.

    This is the library's ``calculate_influence(g, theta)``: a multi-source
    max-product Dijkstra from the seed community, truncated at ``theta``.

    Parameters
    ----------
    graph:
        The full social network ``G``.
    seed_vertices:
        The vertices of the seed community ``g`` (must be non-empty and all
        present in ``graph``).
    threshold:
        Influence threshold ``theta`` in ``[0, 1)``; vertices with
        ``cpp < theta`` are excluded from ``g_inf``.

    Returns
    -------
    InfluencedCommunity
    """
    seeds = frozenset(seed_vertices)
    if not seeds:
        raise GraphError("seed community must contain at least one vertex")
    for vertex in seeds:
        if not graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
    if not 0.0 <= threshold < 1.0:
        raise GraphError(f"influence threshold must be in [0, 1), got {threshold}")

    adjacency = graph.adjacency()
    cpp: dict[VertexId, float] = {}
    heap: list[tuple[float, int, VertexId]] = []
    counter = 0
    for seed in seeds:
        heap.append((-1.0, counter, seed))
        counter += 1
    heapq.heapify(heap)

    while heap:
        negative_probability, _, vertex = heapq.heappop(heap)
        probability = -negative_probability
        if vertex in cpp:
            continue
        cpp[vertex] = probability
        for neighbour in adjacency[vertex]:
            if neighbour in cpp:
                continue
            next_probability = probability * graph.probability(vertex, neighbour)
            if next_probability <= 0.0:
                continue
            # Exact truncation: probabilities only shrink along a path, so a
            # frontier value below theta can never re-enter g_inf.
            if next_probability < threshold:
                continue
            heapq.heappush(heap, (-next_probability, counter, neighbour))
            counter += 1

    # With threshold == 0 the Dijkstra above visits everything reachable;
    # otherwise every retained vertex satisfies cpp >= threshold by
    # construction (seeds have cpp == 1 > threshold since threshold < 1).
    if threshold > 0.0:
        cpp = {v: p for v, p in cpp.items() if p >= threshold}
    return InfluencedCommunity(seed_vertices=seeds, cpp=cpp, threshold=threshold)


def community_to_user_probability(
    graph: SocialNetwork,
    seed_vertices: Iterable[VertexId],
    target: VertexId,
) -> float:
    """Return ``cpp(g, target)`` exactly (Eq. 4), without threshold truncation."""
    seeds = frozenset(seed_vertices)
    if target in seeds:
        return 1.0
    influenced = community_propagation(graph, seeds, threshold=0.0)
    return influenced.cpp_of(target)


def influential_score(
    graph: SocialNetwork,
    seed_vertices: Iterable[VertexId],
    threshold: float,
) -> float:
    """Return ``sigma(g)`` (Eq. 5) for the given seed community and threshold."""
    return community_propagation(graph, seed_vertices, threshold).score


def influence_score_upper_bounds(
    graph: SocialNetwork,
    seed_vertices: Iterable[VertexId],
    thresholds: Iterable[float],
) -> list[tuple[float, float]]:
    """Return ``(theta_z, sigma_z)`` pairs for a sorted list of thresholds.

    Used by the offline pre-computation (Algorithm 2, lines 10-12): a single
    propagation at the *smallest* threshold is reused to derive the score at
    every larger threshold, since the influenced community at ``theta_{z+1}``
    is a subset of the one at ``theta_z``.
    """
    ordered = sorted(set(float(t) for t in thresholds))
    if not ordered:
        return []
    for value in ordered:
        if not 0.0 <= value < 1.0:
            raise GraphError(f"influence thresholds must be in [0, 1), got {value}")
    base = community_propagation(graph, seed_vertices, ordered[0])
    pairs: list[tuple[float, float]] = []
    for theta in ordered:
        score = sum(p for p in base.cpp.values() if p >= theta)
        pairs.append((theta, score))
    return pairs
