"""Influence propagation: the MIA model, influenced communities, IC cascades."""

from repro.influence.mia import (
    maximum_influence_path,
    maximum_influence_paths,
    path_propagation_probability,
    user_to_user_propagation,
)
from repro.influence.propagation import (
    InfluencedCommunity,
    community_propagation,
    community_to_user_probability,
    influence_score_upper_bounds,
    influential_score,
)
from repro.influence.cascade import (
    CascadeResult,
    estimate_spread,
    simulate_independent_cascade,
)

__all__ = [
    "maximum_influence_path",
    "maximum_influence_paths",
    "path_propagation_probability",
    "user_to_user_propagation",
    "InfluencedCommunity",
    "community_propagation",
    "community_to_user_probability",
    "influence_score_upper_bounds",
    "influential_score",
    "CascadeResult",
    "estimate_spread",
    "simulate_independent_cascade",
]
