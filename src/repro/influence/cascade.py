"""Monte-Carlo Independent Cascade (IC) spread estimation.

The paper's influence model is MIA (Section II-B), but its related-work
discussion grounds the influential score in the classic influence-maximisation
literature where spread is defined by the Independent Cascade model.  This
module provides an IC simulator so that users (and one of the extra ablation
benches) can compare the deterministic MIA-based influential score against a
sampled IC spread for the same seed community.

It is an optional extension: nothing on the TopL-ICDE / DTopL-ICDE hot path
depends on it.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Union

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork, VertexId

RandomLike = Union[int, random.Random, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of a Monte-Carlo IC estimation."""

    seed_vertices: frozenset
    num_simulations: int
    mean_spread: float
    std_spread: float
    activation_frequency: dict

    def activation_probability(self, vertex: VertexId) -> float:
        """Estimated probability that ``vertex`` ends up activated."""
        return self.activation_frequency.get(vertex, 0.0)


def simulate_independent_cascade(
    graph: SocialNetwork,
    seed_vertices: Iterable[VertexId],
    rng: RandomLike = None,
) -> frozenset:
    """Run a single IC simulation and return the set of activated vertices.

    Each newly activated vertex gets one chance to activate each inactive
    neighbour ``v`` with probability ``p_{u,v}``.
    """
    seeds = frozenset(seed_vertices)
    if not seeds:
        raise GraphError("seed set must contain at least one vertex")
    for vertex in seeds:
        if not graph.has_vertex(vertex):
            raise VertexNotFoundError(vertex)
    generator = _resolve_rng(rng)
    activated = set(seeds)
    frontier = list(seeds)
    adjacency = graph.adjacency()
    while frontier:
        next_frontier: list[VertexId] = []
        for vertex in frontier:
            for neighbour in adjacency[vertex]:
                if neighbour in activated:
                    continue
                if generator.random() < graph.probability(vertex, neighbour):
                    activated.add(neighbour)
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return frozenset(activated)


def estimate_spread(
    graph: SocialNetwork,
    seed_vertices: Iterable[VertexId],
    num_simulations: int = 100,
    rng: RandomLike = None,
) -> CascadeResult:
    """Estimate the expected IC spread of ``seed_vertices`` by simulation."""
    if num_simulations <= 0:
        raise GraphError(f"num_simulations must be positive, got {num_simulations}")
    seeds = frozenset(seed_vertices)
    generator = _resolve_rng(rng)
    sizes: list[int] = []
    activation_counts: dict[VertexId, int] = {}
    for _ in range(num_simulations):
        activated = simulate_independent_cascade(graph, seeds, rng=generator)
        sizes.append(len(activated))
        for vertex in activated:
            activation_counts[vertex] = activation_counts.get(vertex, 0) + 1
    mean = sum(sizes) / num_simulations
    variance = sum((s - mean) ** 2 for s in sizes) / num_simulations
    frequency = {v: c / num_simulations for v, c in activation_counts.items()}
    return CascadeResult(
        seed_vertices=seeds,
        num_simulations=num_simulations,
        mean_spread=mean,
        std_spread=variance ** 0.5,
        activation_frequency=frequency,
    )
