"""Keyword vocabularies and the sampling distributions used by the paper.

Section VIII-A generates a keyword set ``v_i.W`` per vertex from a keyword
domain ``Sigma``, following a *Uniform*, *Gaussian*, or *Zipf* distribution —
producing the synthetic graphs called ``Uni``, ``Gau`` and ``Zipf``.  This
module provides:

* :class:`Vocabulary` — an ordered keyword domain with index <-> keyword maps;
* :func:`default_vocabulary` — a marketing-flavoured domain mirroring the
  keywords of Figure 1 (Movies, Books, Jewelry, ...), padded to any size;
* samplers for the three distributions, each taking an explicit RNG.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Sequence
from typing import Union

from repro.exceptions import DatasetError

RandomLike = Union[int, random.Random, None]

#: Keyword seeds inspired by Figure 1 of the paper.
_BASE_KEYWORDS = (
    "movies",
    "books",
    "food",
    "jewelry",
    "crafts",
    "health",
    "wellness",
    "home-decor",
    "cosmetics",
    "skincare",
    "sports",
    "travel",
    "music",
    "gaming",
    "fashion",
    "fitness",
    "photography",
    "gardening",
    "cooking",
    "technology",
)


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


class Vocabulary:
    """An ordered keyword domain ``Sigma``.

    The order matters for the Gaussian and Zipf samplers (they are defined
    over keyword *ranks*), and for reproducibility of hashed bit vectors.
    """

    __slots__ = ("_keywords", "_index")

    def __init__(self, keywords: Iterable[str]) -> None:
        ordered = list(dict.fromkeys(keywords))
        if not ordered:
            raise DatasetError("a vocabulary requires at least one keyword")
        self._keywords: tuple[str, ...] = tuple(ordered)
        self._index: dict[str, int] = {kw: i for i, kw in enumerate(self._keywords)}

    def __len__(self) -> int:
        return len(self._keywords)

    def __iter__(self):
        return iter(self._keywords)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._index

    def __getitem__(self, index: int) -> str:
        return self._keywords[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary(size={len(self._keywords)})"

    @property
    def keywords(self) -> tuple[str, ...]:
        """The keywords in rank order."""
        return self._keywords

    def index_of(self, keyword: str) -> int:
        """Return the rank of ``keyword`` within the vocabulary."""
        try:
            return self._index[keyword]
        except KeyError:
            raise DatasetError(f"keyword {keyword!r} is not in the vocabulary") from None

    def sample(self, count: int, rng: RandomLike = None) -> list[str]:
        """Sample ``count`` distinct keywords uniformly without replacement."""
        if count > len(self._keywords):
            raise DatasetError(
                f"cannot sample {count} keywords from a domain of {len(self._keywords)}"
            )
        generator = _resolve_rng(rng)
        return generator.sample(list(self._keywords), count)


def default_vocabulary(size: int = 50) -> Vocabulary:
    """Return a vocabulary of ``size`` keywords.

    The first keywords come from the Figure 1 example; remaining slots are
    filled with ``topic-<i>`` placeholders so arbitrarily large domains
    (|Sigma| up to 80 in Table III) are available.
    """
    if size <= 0:
        raise DatasetError(f"vocabulary size must be positive, got {size}")
    keywords = list(_BASE_KEYWORDS[:size])
    next_id = 0
    while len(keywords) < size:
        keywords.append(f"topic-{next_id}")
        next_id += 1
    return Vocabulary(keywords)


# --------------------------------------------------------------------------- #
# distributions
# --------------------------------------------------------------------------- #
class KeywordDistribution:
    """Base class for keyword-sampling distributions over a vocabulary.

    Subclasses implement :meth:`weights`, returning one non-negative weight
    per keyword rank; :meth:`sample_keywords` then draws a set of distinct
    keywords proportionally to those weights.
    """

    name = "base"

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary

    def weights(self) -> Sequence[float]:
        """Return one sampling weight per keyword rank."""
        raise NotImplementedError

    def sample_keywords(self, count: int, rng: RandomLike = None) -> frozenset:
        """Sample ``count`` distinct keywords according to the distribution."""
        size = len(self.vocabulary)
        if count <= 0:
            return frozenset()
        count = min(count, size)
        generator = _resolve_rng(rng)
        weights = list(self.weights())
        chosen: set[str] = set()
        # Weighted sampling without replacement: draw, remove, renormalise.
        available = list(range(size))
        while len(chosen) < count and available:
            local_weights = [weights[i] for i in available]
            total = sum(local_weights)
            if total <= 0:
                index = generator.choice(available)
            else:
                pick = generator.random() * total
                cumulative = 0.0
                index = available[-1]
                for candidate, weight in zip(available, local_weights):
                    cumulative += weight
                    if pick <= cumulative:
                        index = candidate
                        break
            chosen.add(self.vocabulary[index])
            available.remove(index)
        return frozenset(chosen)


class UniformKeywordDistribution(KeywordDistribution):
    """Every keyword is equally likely (the paper's ``Uni`` graphs)."""

    name = "uniform"

    def weights(self) -> Sequence[float]:
        return [1.0] * len(self.vocabulary)


class GaussianKeywordDistribution(KeywordDistribution):
    """Keyword popularity follows a Gaussian over ranks (the ``Gau`` graphs).

    The mean sits at the middle rank; the standard deviation defaults to one
    sixth of the domain so that popularity decays smoothly towards both ends.
    """

    name = "gaussian"

    def __init__(self, vocabulary: Vocabulary, std_fraction: float = 1.0 / 6.0) -> None:
        super().__init__(vocabulary)
        if std_fraction <= 0:
            raise DatasetError(f"std_fraction must be positive, got {std_fraction}")
        self.std_fraction = std_fraction

    def weights(self) -> Sequence[float]:
        size = len(self.vocabulary)
        mean = (size - 1) / 2.0
        std = max(size * self.std_fraction, 1e-9)
        return [math.exp(-((rank - mean) ** 2) / (2.0 * std * std)) for rank in range(size)]


class ZipfKeywordDistribution(KeywordDistribution):
    """Keyword popularity follows a Zipf law over ranks (the ``Zipf`` graphs)."""

    name = "zipf"

    def __init__(self, vocabulary: Vocabulary, exponent: float = 1.0) -> None:
        super().__init__(vocabulary)
        if exponent <= 0:
            raise DatasetError(f"Zipf exponent must be positive, got {exponent}")
        self.exponent = exponent

    def weights(self) -> Sequence[float]:
        return [1.0 / ((rank + 1) ** self.exponent) for rank in range(len(self.vocabulary))]


_DISTRIBUTIONS = {
    "uniform": UniformKeywordDistribution,
    "gaussian": GaussianKeywordDistribution,
    "zipf": ZipfKeywordDistribution,
}


def make_distribution(name: str, vocabulary: Vocabulary) -> KeywordDistribution:
    """Build a keyword distribution by name (``uniform`` / ``gaussian`` / ``zipf``)."""
    try:
        factory = _DISTRIBUTIONS[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown keyword distribution {name!r}; expected one of {sorted(_DISTRIBUTIONS)}"
        ) from None
    return factory(vocabulary)


def distribution_names() -> tuple[str, ...]:
    """Return the supported distribution names."""
    return tuple(sorted(_DISTRIBUTIONS))
