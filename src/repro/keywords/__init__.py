"""Keyword handling: bit-vector signatures and sampling vocabularies."""

from repro.keywords.bitvector import (
    DEFAULT_NUM_BITS,
    BitVector,
    aggregate,
    hash_keyword,
    may_share_keyword,
)
from repro.keywords.vocabulary import (
    GaussianKeywordDistribution,
    KeywordDistribution,
    UniformKeywordDistribution,
    Vocabulary,
    ZipfKeywordDistribution,
    default_vocabulary,
    distribution_names,
    make_distribution,
)

__all__ = [
    "DEFAULT_NUM_BITS",
    "BitVector",
    "aggregate",
    "hash_keyword",
    "may_share_keyword",
    "GaussianKeywordDistribution",
    "KeywordDistribution",
    "UniformKeywordDistribution",
    "Vocabulary",
    "ZipfKeywordDistribution",
    "default_vocabulary",
    "distribution_names",
    "make_distribution",
]
