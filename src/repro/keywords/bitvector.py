"""Keyword bit vectors (Bloom-style signatures).

The offline phase hashes every keyword set ``v_i.W`` into a ``B``-bit vector
``v_i.BV`` (Algorithm 2, lines 1–3).  Aggregated vectors for r-hop subgraphs
and index entries are bit-ORs of member vectors; the query keyword set ``Q``
is hashed into ``Q.BV`` the same way, and the index-level keyword pruning rule
(Lemma 5) discards an entry ``N_i`` whenever ``N_i.BV_r AND Q.BV == 0``.

The signature is conservative: a zero AND proves that no member vertex can
contain a query keyword, while a non-zero AND may still be a false positive
(two different keywords hashing to the same bit), which is safe because
pruning only ever *keeps* such candidates.

Bit vectors are stored as plain Python ints, which makes OR/AND aggregation a
single machine operation for the default ``B = 64``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.exceptions import GraphError

#: Default signature width, matching a single machine word.
DEFAULT_NUM_BITS = 64


def hash_keyword(keyword: str, num_bits: int = DEFAULT_NUM_BITS) -> int:
    """Map ``keyword`` to a bit position in ``[0, num_bits)``.

    Uses blake2b for a stable, platform-independent hash (Python's built-in
    ``hash`` is randomised per process, which would break index persistence).
    """
    if num_bits <= 0:
        raise GraphError(f"num_bits must be positive, got {num_bits}")
    digest = hashlib.blake2b(keyword.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_bits


class BitVector:
    """An immutable ``B``-bit keyword signature.

    Instances support ``|`` (aggregate), ``&`` (intersection test input) and
    equality/hashing so they can be used as dict keys in the index.
    """

    __slots__ = ("bits", "num_bits")

    def __init__(self, bits: int = 0, num_bits: int = DEFAULT_NUM_BITS) -> None:
        if num_bits <= 0:
            raise GraphError(f"num_bits must be positive, got {num_bits}")
        mask = (1 << num_bits) - 1
        self.bits = bits & mask
        self.num_bits = num_bits

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_keywords(
        cls, keywords: Iterable[str], num_bits: int = DEFAULT_NUM_BITS
    ) -> "BitVector":
        """Hash a keyword collection into a signature."""
        bits = 0
        for keyword in keywords:
            bits |= 1 << hash_keyword(keyword, num_bits)
        return cls(bits, num_bits)

    @classmethod
    def empty(cls, num_bits: int = DEFAULT_NUM_BITS) -> "BitVector":
        """Return the all-zero signature."""
        return cls(0, num_bits)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self.bits | other.bits, self.num_bits)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self.bits & other.bits, self.num_bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.bits == other.bits and self.num_bits == other.num_bits

    def __hash__(self) -> int:
        return hash((self.bits, self.num_bits))

    def __bool__(self) -> bool:
        return self.bits != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(0b{self.bits:0{self.num_bits}b})"

    def intersects(self, other: "BitVector") -> bool:
        """Return ``True`` if the two signatures share at least one set bit."""
        self._check_compatible(other)
        return (self.bits & other.bits) != 0

    def contains_all(self, other: "BitVector") -> bool:
        """Return ``True`` if every bit set in ``other`` is also set here."""
        self._check_compatible(other)
        return (self.bits & other.bits) == other.bits

    def popcount(self) -> int:
        """Return the number of set bits."""
        return bin(self.bits).count("1")

    def set_positions(self) -> tuple[int, ...]:
        """Return the sorted bit positions that are set."""
        return tuple(i for i in range(self.num_bits) if self.bits & (1 << i))

    def _check_compatible(self, other: "BitVector") -> None:
        if self.num_bits != other.num_bits:
            raise GraphError(
                f"bit vectors have mismatched widths: {self.num_bits} vs {other.num_bits}"
            )


def aggregate(vectors: Iterable[BitVector], num_bits: int = DEFAULT_NUM_BITS) -> BitVector:
    """OR-aggregate a collection of bit vectors (empty input gives the zero vector)."""
    result = BitVector.empty(num_bits)
    for vector in vectors:
        result = result | vector
    return result


def may_share_keyword(candidate: BitVector, query: BitVector) -> bool:
    """Conservative keyword test used by Lemma 5.

    ``False`` means *provably* no shared keyword (safe to prune).  ``True``
    means a shared keyword is possible (keep the candidate).
    """
    return candidate.intersects(query)
