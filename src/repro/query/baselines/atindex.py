"""The ATindex baseline for TopL-ICDE (Section VIII-A).

ATindex adapts the state-of-the-art (k, d)-truss community search approach:

* **offline** it computes and stores the truss decomposition of the graph
  (the trussness of every edge and vertex);
* **online** it filters out vertices whose trussness is below ``k``, extracts
  the r-hop subgraph around each remaining vertex (restricted to
  keyword-qualified vertices), computes the maximal k-truss inside it, scores
  the resulting community and finally returns the ``L`` highest-scoring ones.

Compared with the paper's method it lacks the tree index, the keyword/support
aggregate bounds and — crucially — the influential-score pruning, so it scores
far more candidate communities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.graph.social_network import SocialNetwork
from repro.graph.traversal import hop_subgraph
from repro.influence.propagation import community_propagation
from repro.query.params import TopLQuery
from repro.query.results import QueryStatistics, SeedCommunity, TopLResult
from repro.query.seed import extract_seed_community, keyword_qualified_vertices
from repro.truss.decomposition import TrussDecomposition, truss_decomposition


@dataclass
class ATIndex:
    """Offline part of the ATindex baseline: the truss decomposition of ``G``."""

    decomposition: TrussDecomposition

    @classmethod
    def build(cls, graph: SocialNetwork) -> "ATIndex":
        """Pre-compute the trussness of every edge/vertex of ``graph``."""
        return cls(decomposition=truss_decomposition(graph))

    def candidate_centers(self, graph: SocialNetwork, query: TopLQuery) -> list:
        """Vertices that survive the trussness and keyword filters."""
        centers = []
        for vertex in graph.vertices():
            if self.decomposition.trussness_of_vertex(vertex) < query.k:
                continue
            if not graph.keywords(vertex) & query.keywords:
                continue
            centers.append(vertex)
        return centers


def atindex_topl(
    graph: SocialNetwork,
    query: TopLQuery,
    index: Optional[ATIndex] = None,
    centers: Optional[list] = None,
) -> TopLResult:
    """Answer a TopL-ICDE query with the ATindex baseline.

    Parameters
    ----------
    graph:
        The social network.
    query:
        The query parameters.
    index:
        A pre-built :class:`ATIndex`; built on the fly when omitted.
    centers:
        Optional explicit centre sample (the paper samples 0.5% of DBLP's
        centres for this baseline because it is so slow; the Figure 2 bench
        uses the same protocol through this parameter).
    """
    started = time.perf_counter()
    statistics = QueryStatistics()
    if index is None:
        index = ATIndex.build(graph)

    if centers is None:
        candidate_centers = index.candidate_centers(graph, query)
    else:
        allowed = set(centers)
        candidate_centers = [
            vertex for vertex in index.candidate_centers(graph, query) if vertex in allowed
        ]

    results: dict[frozenset, SeedCommunity] = {}
    for center in candidate_centers:
        statistics.candidates_examined += 1
        view = hop_subgraph(graph, center, query.radius)
        qualified = keyword_qualified_vertices(view, query.keywords)
        if center not in qualified:
            continue
        restricted = view.restrict(qualified)
        vertices = extract_seed_community(graph, center, query, restricted)
        if not vertices or vertices in results:
            continue
        influenced = community_propagation(graph, vertices, query.theta)
        statistics.communities_scored += 1
        results[vertices] = SeedCommunity(
            center=center,
            vertices=vertices,
            influenced=influenced,
            k=query.k,
            radius=query.radius,
        )
    ranked = sorted(results.values(), key=lambda community: community.score, reverse=True)
    statistics.elapsed_seconds = time.perf_counter() - started
    return TopLResult(communities=tuple(ranked[: query.top_l]), statistics=statistics)
