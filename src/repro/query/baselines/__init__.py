"""Baselines: ATindex, brute force, Greedy_WoP, Optimal, and the k-core comparator."""

from repro.query.baselines.atindex import ATIndex, atindex_topl
from repro.query.baselines.bruteforce import all_seed_communities, bruteforce_topl
from repro.query.baselines.greedy_wop import greedy_without_pruning, greedy_wop_dtopl
from repro.query.baselines.kcore_baseline import compare_with_kcore, kcore_community
from repro.query.baselines.optimal import optimal_dtopl, optimal_selection

__all__ = [
    "ATIndex",
    "atindex_topl",
    "all_seed_communities",
    "bruteforce_topl",
    "greedy_without_pruning",
    "greedy_wop_dtopl",
    "compare_with_kcore",
    "kcore_community",
    "optimal_dtopl",
    "optimal_selection",
]
