"""k-core community baseline (the Figure 5 case study comparator).

The case study (RQ3) contrasts the Top1-ICDE seed community with the k-core
community around the same centre vertex: the k-core has weaker structural
cohesiveness (a degree condition instead of a triangle condition) and ignores
keywords, and the paper shows it achieves a lower influential score and
reaches fewer users.  This module extracts that comparator and packages it in
the same :class:`SeedCommunity` shape so the two can be reported side by side.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.traversal import hop_subgraph
from repro.influence.propagation import community_propagation
from repro.query.results import SeedCommunity
from repro.truss.kcore import kcore_component_of


def kcore_community(
    graph: SocialNetwork,
    center: VertexId,
    k: int,
    theta: float,
    radius: Optional[int] = None,
) -> Optional[SeedCommunity]:
    """Return the k-core community around ``center`` scored at ``theta``.

    Parameters
    ----------
    graph:
        The social network.
    center:
        The centre vertex shared with the TopL-ICDE community being compared.
    k:
        Core parameter (every member has degree >= k inside the community).
    theta:
        Influence threshold used to compute the influential score.
    radius:
        When given, the k-core is computed inside ``hop(center, radius)``
        (matching the locality of the seed community); otherwise in the whole
        graph.

    Returns
    -------
    SeedCommunity or None
        ``None`` when ``center`` is not part of any k-core.
    """
    if not 0.0 <= theta < 1.0:
        raise GraphError(f"influence threshold must be in [0, 1), got {theta}")
    scope = hop_subgraph(graph, center, radius) if radius is not None else graph
    vertices = kcore_component_of(scope, k, center)
    if not vertices:
        return None
    influenced = community_propagation(graph, vertices, theta)
    return SeedCommunity(
        center=center,
        vertices=vertices,
        influenced=influenced,
        k=k,
        radius=radius if radius is not None else -1,
    )


def compare_with_kcore(
    graph: SocialNetwork,
    topl_community: SeedCommunity,
    k: int,
    theta: float,
    radius: Optional[int] = None,
) -> dict:
    """Build the Figure 5 comparison rows for a TopL-ICDE community vs a k-core.

    Returns a dict with one entry per method containing the seed size,
    influential score and the number of possibly influenced users.
    """
    kcore = kcore_community(graph, topl_community.center, k, theta, radius=radius)
    rows = {
        "topl_icde": {
            "seed_size": len(topl_community),
            "score": round(topl_community.score, 2),
            "influenced_users": topl_community.num_influenced,
        }
    }
    if kcore is None:
        rows["kcore"] = {"seed_size": 0, "score": 0.0, "influenced_users": 0}
    else:
        rows["kcore"] = {
            "seed_size": len(kcore),
            "score": round(kcore.score, 2),
            "influenced_users": kcore.num_influenced,
        }
    return rows
