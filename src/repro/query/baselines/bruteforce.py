"""Brute-force TopL-ICDE baseline (no index, no pruning).

Enumerates every vertex as a candidate centre, extracts its seed community,
scores it and keeps the best ``L``.  It is the ground truth the index-based
algorithm is tested against, and the "no pruning at all" reference point for
the ablation discussion.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.graph.social_network import SocialNetwork
from repro.influence.propagation import community_propagation
from repro.query.params import TopLQuery
from repro.query.results import QueryStatistics, SeedCommunity, TopLResult
from repro.query.seed import extract_seed_community


def bruteforce_topl(
    graph: SocialNetwork,
    query: TopLQuery,
    centers: Optional[list] = None,
) -> TopLResult:
    """Answer a TopL-ICDE query by exhaustive enumeration.

    Parameters
    ----------
    graph:
        The social network.
    query:
        The query parameters.
    centers:
        Optional subset of centre vertices to consider (defaults to every
        vertex); the Figure 2 DBLP sampling protocol passes a random sample
        here.
    """
    started = time.perf_counter()
    statistics = QueryStatistics()
    candidates: dict[frozenset, SeedCommunity] = {}
    if centers is None:
        centers = list(graph.vertices())
    for center in centers:
        statistics.candidates_examined += 1
        vertices = extract_seed_community(graph, center, query)
        if not vertices:
            continue
        if vertices in candidates:
            continue
        influenced = community_propagation(graph, vertices, query.theta)
        statistics.communities_scored += 1
        candidates[vertices] = SeedCommunity(
            center=center,
            vertices=vertices,
            influenced=influenced,
            k=query.k,
            radius=query.radius,
        )
    ranked = sorted(candidates.values(), key=lambda community: community.score, reverse=True)
    statistics.elapsed_seconds = time.perf_counter() - started
    return TopLResult(communities=tuple(ranked[: query.top_l]), statistics=statistics)


def all_seed_communities(graph: SocialNetwork, query: TopLQuery) -> list[SeedCommunity]:
    """Return every distinct seed community of the graph, scored, best first.

    Used by the Optimal DTopL baseline (which needs the full candidate pool)
    and by effectiveness tests.
    """
    result = bruteforce_topl(
        graph, query.with_overrides(top_l=max(graph.num_vertices(), 1))
    )
    return list(result.communities)
