"""The ``Optimal`` DTopL-ICDE baseline: exhaustive combination search.

Enumerates every size-``L`` subset of the candidate communities, computes its
diversity score exactly and returns the best.  Exponential in ``L`` — the
paper only runs it on 1K-vertex graphs to measure the accuracy of the greedy
method (Figure 6(e)) — but indispensable as ground truth.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Optional

from repro.graph.social_network import SocialNetwork
from repro.index.tree import TreeIndex
from repro.pruning.diversity import diversity_score
from repro.pruning.stats import PruningConfig
from repro.query.params import DTopLQuery
from repro.query.results import DTopLResult, QueryStatistics, SeedCommunity
from repro.query.baselines.bruteforce import all_seed_communities
from repro.query.topl import TopLProcessor


def optimal_selection(
    candidates: list[SeedCommunity], top_l: int
) -> tuple[list[SeedCommunity], float, int]:
    """Return the best size-``top_l`` subset, its diversity score, and #subsets tried."""
    if not candidates:
        return [], 0.0, 0
    size = min(top_l, len(candidates))
    best_subset: tuple[SeedCommunity, ...] = ()
    best_score = float("-inf")
    examined = 0
    for subset in combinations(candidates, size):
        examined += 1
        score = diversity_score([community.influenced for community in subset])
        if score > best_score:
            best_score = score
            best_subset = subset
    return list(best_subset), best_score, examined


def optimal_dtopl(
    graph: SocialNetwork,
    query: DTopLQuery,
    index: Optional[TreeIndex] = None,
    pruning: Optional[PruningConfig] = None,
    use_all_candidates: bool = False,
) -> DTopLResult:
    """Answer a DTopL-ICDE query exactly (exponential in ``L``).

    Parameters
    ----------
    use_all_candidates:
        When ``True`` the optimum is taken over *every* seed community of the
        graph (the true optimum of Definition 5); when ``False`` (default) it
        is taken over the same top-(n*L) candidate pool the greedy methods
        use, which isolates the quality of the greedy selection itself.
    """
    started = time.perf_counter()
    if use_all_candidates:
        candidates = all_seed_communities(graph, query.base)
        statistics = None
    else:
        processor = TopLProcessor(graph, index=index, pruning=pruning)
        candidate_result = processor.query(query.candidate_query())
        candidates = list(candidate_result.communities)
        statistics = candidate_result.statistics
    selection, score, examined = optimal_selection(candidates, query.top_l)
    result_statistics = statistics if statistics is not None else QueryStatistics()
    result_statistics.elapsed_seconds = time.perf_counter() - started
    return DTopLResult(
        communities=tuple(selection),
        diversity_score=score if selection else 0.0,
        statistics=result_statistics,
        increment_evaluations=examined,
        candidates_considered=len(candidates),
    )
