"""The ``Greedy_WoP`` DTopL-ICDE baseline: greedy refinement *without* pruning.

Identical candidate collection to the paper's method (top-(n*L) most
influential communities), but the refinement recomputes the marginal
diversity gain of *every* remaining candidate in *every* round instead of
lazily re-evaluating only the promising ones.  The selected set is the same —
plain greedy and CELF are equivalent in output — so the comparison isolates
the cost of the diversity-score pruning (Figure 6(a)).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.graph.social_network import SocialNetwork
from repro.index.tree import TreeIndex
from repro.pruning.diversity import apply_to_coverage, marginal_gain
from repro.pruning.stats import PruningConfig
from repro.query.params import DTopLQuery
from repro.query.results import DTopLResult, SeedCommunity
from repro.query.topl import TopLProcessor


def greedy_without_pruning(
    candidates: list[SeedCommunity], top_l: int
) -> tuple[list[SeedCommunity], int]:
    """Eager greedy selection; returns the selection and the number of gain evaluations."""
    remaining = list(candidates)
    selection: list[SeedCommunity] = []
    coverage: dict = {}
    evaluations = 0
    while remaining and len(selection) < top_l:
        best_index = -1
        best_gain = float("-inf")
        for position, community in enumerate(remaining):
            gain = marginal_gain(community.influenced, coverage)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_index = position
        chosen = remaining.pop(best_index)
        selection.append(chosen)
        apply_to_coverage(chosen.influenced, coverage)
    return selection, evaluations


def greedy_wop_dtopl(
    graph: SocialNetwork,
    query: DTopLQuery,
    index: Optional[TreeIndex] = None,
    pruning: Optional[PruningConfig] = None,
) -> DTopLResult:
    """Answer a DTopL-ICDE query with the unpruned greedy baseline."""
    started = time.perf_counter()
    processor = TopLProcessor(graph, index=index, pruning=pruning)
    candidate_result = processor.query(query.candidate_query())
    selection, evaluations = greedy_without_pruning(
        list(candidate_result.communities), query.top_l
    )
    coverage: dict = {}
    for community in selection:
        apply_to_coverage(community.influenced, coverage)
    statistics = candidate_result.statistics
    statistics.elapsed_seconds = time.perf_counter() - started
    return DTopLResult(
        communities=tuple(selection),
        diversity_score=sum(coverage.values()),
        statistics=statistics,
        increment_evaluations=evaluations,
        candidates_considered=len(candidate_result.communities),
    )
