"""Online DTopL-ICDE processing (Algorithm 4, ``Greedy_WP``).

The DTopL-ICDE problem is NP-hard (Lemma 8: reduction from Maximum Coverage),
so the paper answers it approximately:

1. run the online TopL-ICDE algorithm to collect the top ``n * L`` most
   influential candidate communities, then
2. greedily pick ``L`` of them maximising the diversity score
   ``D(S) = sum_v max_{g in S} cpp(g, v)``.

Because ``D`` is monotone and submodular, the greedy selection enjoys the
``(1 - 1/e)`` guarantee (scaled by ``eps = |S'| / |S_hat|`` for restricting
attention to the top ``n * L`` candidates, Lemma 10), and stale marginal
gains upper-bound fresh ones (Lemma 9) — which is exactly CELF-style lazy
evaluation: candidates are kept in a max-heap keyed by their last computed
gain, and a popped candidate whose gain is up to date is guaranteed optimal
for the current round.
"""

from __future__ import annotations

import heapq
import time
from typing import Optional

from repro.graph.social_network import SocialNetwork
from repro.index.tree import TreeIndex
from repro.pruning.diversity import apply_to_coverage, coverage_map, marginal_gain
from repro.pruning.stats import PruningConfig
from repro.query.params import DTopLQuery
from repro.query.results import DTopLResult, SeedCommunity, TopLResult
from repro.query.topl import TopLProcessor


class DTopLProcessor:
    """Executes DTopL-ICDE queries (candidate collection + lazy greedy refinement)."""

    def __init__(
        self,
        graph: SocialNetwork,
        index: Optional[TreeIndex] = None,
        pruning: Optional[PruningConfig] = None,
        propagation_cache=None,
        cache_epoch: int = 0,
        backend: str = "reference",
        frozen=None,
        workspace=None,
        kernel_tier: str = "auto",
    ) -> None:
        self.graph = graph
        self.topl = TopLProcessor(
            graph,
            index=index,
            pruning=pruning,
            propagation_cache=propagation_cache,
            cache_epoch=cache_epoch,
            backend=backend,
            frozen=frozen,
            workspace=workspace,
            kernel_tier=kernel_tier,
        )

    @property
    def index(self) -> TreeIndex:
        """The tree index shared with the underlying TopL processor."""
        return self.topl.index

    def query(self, query: DTopLQuery) -> DTopLResult:
        """Answer a DTopL-ICDE query with the lazy greedy (``Greedy_WP``)."""
        started = time.perf_counter()
        candidate_result = self.topl.query(query.candidate_query())
        selection, increments = greedy_select_diversified(
            list(candidate_result.communities), query.top_l
        )
        statistics = candidate_result.statistics
        statistics.elapsed_seconds = time.perf_counter() - started
        score = _diversity_of(selection)
        return DTopLResult(
            communities=tuple(selection),
            diversity_score=score,
            statistics=statistics,
            increment_evaluations=increments,
            candidates_considered=len(candidate_result.communities),
        )

    def candidates(self, query: DTopLQuery) -> TopLResult:
        """Return the raw top-(n*L) candidate communities (exposed for analysis)."""
        return self.topl.query(query.candidate_query())


def greedy_select_diversified(
    candidates: list[SeedCommunity], top_l: int
) -> tuple[list[SeedCommunity], int]:
    """Lazily-greedy selection of ``top_l`` communities maximising diversity.

    Returns the selected communities (in pick order) and the number of
    marginal-gain evaluations performed (the quantity the Lemma 9 pruning
    saves compared with ``Greedy_WoP``).
    """
    if top_l <= 0 or not candidates:
        return [], 0

    selection: list[SeedCommunity] = []
    coverage: dict = {}
    evaluations = 0

    # Heap entries: (-gain_bound, tie, round_computed, community).
    heap: list[tuple[float, int, int, SeedCommunity]] = []
    for tie, community in enumerate(candidates):
        # Initial bound: the community's own influential score (its gain
        # against the empty selection).
        heapq.heappush(heap, (-community.score, tie, 0, community))

    current_round = 0
    tie_breaker = len(candidates)
    while heap and len(selection) < top_l:
        negative_bound, _, computed_round, community = heapq.heappop(heap)
        if computed_round == current_round:
            # Bound is fresh for this round: by submodularity no other
            # candidate can beat it (Lemma 9), so select it.
            selection.append(community)
            apply_to_coverage(community.influenced, coverage)
            current_round += 1
            continue
        # Stale bound: recompute against the current selection and re-insert.
        gain = marginal_gain(community.influenced, coverage)
        evaluations += 1
        heapq.heappush(heap, (-gain, tie_breaker, current_round, community))
        tie_breaker += 1
    return selection, evaluations


def dtopl_icde(
    graph: SocialNetwork,
    query: DTopLQuery,
    index: Optional[TreeIndex] = None,
    pruning: Optional[PruningConfig] = None,
) -> DTopLResult:
    """Convenience wrapper: answer one DTopL-ICDE query."""
    processor = DTopLProcessor(graph, index=index, pruning=pruning)
    return processor.query(query)


def _diversity_of(selection: list[SeedCommunity]) -> float:
    # Sorted-sum for cross-backend bit-identical scores (see diversity_score).
    return sum(
        sorted(coverage_map([community.influenced for community in selection]).values())
    )
