"""Result value objects returned by the query algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.influence.propagation import InfluencedCommunity


@dataclass(frozen=True)
class SeedCommunity:
    """A seed community ``g`` together with its influence information.

    Attributes
    ----------
    center:
        The centre vertex ``v_q`` the community is built around.
    vertices:
        The community's vertex set ``V(g)``.
    influenced:
        The influenced community ``g_inf`` computed at the query threshold.
    k:
        The truss parameter the community satisfies.
    radius:
        The radius constraint the community satisfies.
    """

    center: object
    vertices: frozenset
    influenced: InfluencedCommunity
    k: int
    radius: int

    @property
    def score(self) -> float:
        """The influential score ``sigma(g)``."""
        return self.influenced.score

    @property
    def num_influenced(self) -> int:
        """Size of the influenced community ``|V(g_inf)|``."""
        return len(self.influenced)

    @property
    def num_influenced_outside(self) -> int:
        """Number of influenced vertices outside the seed community."""
        return len(self.influenced.influenced_only)

    def __len__(self) -> int:
        return len(self.vertices)

    def summary(self) -> dict:
        """Return a flat dict describing the community (used in reports)."""
        return {
            "center": self.center,
            "size": len(self.vertices),
            "score": round(self.score, 4),
            "influenced": self.num_influenced,
            "influenced_outside": self.num_influenced_outside,
            "k": self.k,
            "r": self.radius,
        }


@dataclass
class QueryStatistics:
    """Counters describing the work done by a query execution."""

    visited_index_nodes: int = 0
    visited_leaf_vertices: int = 0
    candidates_examined: int = 0
    communities_scored: int = 0
    pruned_by_keyword: int = 0
    pruned_by_support: int = 0
    pruned_by_radius: int = 0
    pruned_by_score: int = 0
    pruned_index_entries: int = 0
    heap_terminated_early: bool = False
    elapsed_seconds: float = 0.0
    propagation_cache_hits: int = 0
    propagation_cache_misses: int = 0

    @property
    def total_pruned(self) -> int:
        """Total candidates removed by any pruning rule."""
        return (
            self.pruned_by_keyword
            + self.pruned_by_support
            + self.pruned_by_radius
            + self.pruned_by_score
            + self.pruned_index_entries
        )

    def as_dict(self) -> dict:
        """Return the counters as a flat dict."""
        return {
            "visited_index_nodes": self.visited_index_nodes,
            "visited_leaf_vertices": self.visited_leaf_vertices,
            "candidates_examined": self.candidates_examined,
            "communities_scored": self.communities_scored,
            "pruned_by_keyword": self.pruned_by_keyword,
            "pruned_by_support": self.pruned_by_support,
            "pruned_by_radius": self.pruned_by_radius,
            "pruned_by_score": self.pruned_by_score,
            "pruned_index_entries": self.pruned_index_entries,
            "total_pruned": self.total_pruned,
            "heap_terminated_early": self.heap_terminated_early,
            "elapsed_seconds": self.elapsed_seconds,
            "propagation_cache_hits": self.propagation_cache_hits,
            "propagation_cache_misses": self.propagation_cache_misses,
        }


@dataclass(frozen=True)
class TopLResult:
    """Result of a TopL-ICDE query: at most ``L`` communities, best first."""

    communities: tuple
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def __len__(self) -> int:
        return len(self.communities)

    def __iter__(self):
        return iter(self.communities)

    def __getitem__(self, index: int) -> SeedCommunity:
        return self.communities[index]

    @property
    def best(self) -> Optional[SeedCommunity]:
        """The highest-scoring community, or ``None`` for empty results."""
        return self.communities[0] if self.communities else None

    @property
    def scores(self) -> tuple:
        """Scores of the returned communities, best first."""
        return tuple(community.score for community in self.communities)

    def summary_rows(self) -> list[dict]:
        """Return one summary dict per returned community."""
        return [community.summary() for community in self.communities]


@dataclass(frozen=True)
class DTopLResult:
    """Result of a DTopL-ICDE query: a set of ``L`` diversified communities."""

    communities: tuple
    diversity_score: float
    statistics: QueryStatistics = field(default_factory=QueryStatistics)
    increment_evaluations: int = 0
    candidates_considered: int = 0

    def __len__(self) -> int:
        return len(self.communities)

    def __iter__(self):
        return iter(self.communities)

    def __getitem__(self, index: int) -> SeedCommunity:
        return self.communities[index]

    def summary_rows(self) -> list[dict]:
        """Return one summary dict per selected community."""
        return [community.summary() for community in self.communities]
