"""Online TopL-ICDE processing (Algorithm 3).

The processor traverses the tree index with a max-heap keyed on the entries'
influential-score upper bounds, prunes entries and leaf vertices with the
rules of Section IV/VI-A, extracts a seed community for every surviving
candidate centre, scores it with ``calculate_influence`` and maintains the
current top-L result set.  Once the best remaining heap key no longer exceeds
the L-th best score, the traversal terminates.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Optional

from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.traversal import hop_subgraph
from repro.index.tree import TreeIndex, build_tree_index
from repro.influence.propagation import community_propagation
from repro.keywords.bitvector import BitVector
from repro.pruning.index_rules import index_keyword_prune, index_score_prune, index_support_prune
from repro.pruning.rules import (
    center_has_query_keyword,
    keyword_prune_by_bitvector,
    score_prune,
    support_prune,
    trussness_prune,
)
from repro.pruning.stats import PruningConfig, PruningCounters
from repro.query.params import TopLQuery
from repro.query.results import QueryStatistics, SeedCommunity, TopLResult
from repro.query.seed import extract_seed_community


@dataclass
class _Candidate:
    """A scored seed community while the result set is being maintained."""

    community: SeedCommunity

    @property
    def score(self) -> float:
        return self.community.score


class _ResultSet:
    """The running top-L result set ``S`` with its threshold ``sigma_L``.

    Distinct candidate centres can extract the *same* community (a dense
    cluster is found from several of its members), so the set deduplicates by
    vertex set and keeps only distinct communities.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: list[_Candidate] = []
        self._seen: set[frozenset] = set()

    @property
    def sigma_l(self) -> float:
        """The smallest score among the current L best (``-inf`` until full)."""
        if len(self._entries) < self.capacity:
            return float("-inf")
        return self._entries[-1].score

    def consider(self, community: SeedCommunity) -> bool:
        """Insert ``community`` if it improves the result set; return ``True`` if kept."""
        if community.vertices in self._seen:
            return False
        candidate = _Candidate(community)
        if len(self._entries) < self.capacity:
            self._entries.append(candidate)
        elif candidate.score > self.sigma_l:
            evicted = self._entries.pop()
            self._seen.discard(evicted.community.vertices)
            self._entries.append(candidate)
        else:
            return False
        self._seen.add(community.vertices)
        self._entries.sort(key=lambda entry: entry.score, reverse=True)
        return True

    def communities(self) -> tuple:
        """The current communities, best first."""
        return tuple(entry.community for entry in self._entries)


class TopLProcessor:
    """Executes TopL-ICDE queries against a graph and its tree index.

    Parameters
    ----------
    graph:
        The social network ``G``.
    index:
        A pre-built :class:`TreeIndex`; when omitted one is built with default
        parameters (convenient for small graphs and tests, but real deployments
        should build the index once and reuse it).
    pruning:
        Which pruning rules to apply (the Figure 4 ablation runs the processor
        with reduced configurations); ``None`` means the full stack.
    propagation_cache:
        Optional LRU cache (any object with ``get(key)`` / ``put(key, value)``,
        see :class:`repro.serve.cache.LRUCache`) memoising
        ``community_propagation`` results keyed on ``(vertex set, theta)``.
        Shared across queries by the serving layer.
    cache_epoch:
        Graph epoch tagged into propagation-cache keys; the serving layer
        passes the engine's current epoch so entries memoised before a
        dynamic update can never be served after it.
    backend:
        ``"reference"`` scores candidate communities with the dict-based
        :func:`~repro.influence.propagation.community_propagation`;
        ``"fast"`` scores them over an array snapshot of the graph
        (identical floats — see :mod:`repro.fastgraph`).  Candidate
        extraction always runs on the reference structures.
    frozen:
        Optional pre-built :class:`~repro.fastgraph.csr.CSRGraph` snapshot
        for the ``fast`` backend (the engine shares one across processors);
        when omitted the processor freezes the graph on first use.
    workspace:
        Optional :class:`~repro.fastgraph.kernels.CSRWorkspace` over
        ``frozen``, likewise shared by the engine so per-call processors do
        not rebuild the scratch arrays per query.  Workspaces are
        single-threaded: share one only across sequential callers.
    kernel_tier:
        Fast backend only: the kernel tier of any workspace this processor
        builds itself (``"auto"`` / ``"stdlib"`` / ``"vector"``, see
        :func:`~repro.fastgraph.kernels.make_workspace`).  Ignored when a
        shared ``workspace`` is supplied.
    """

    def __init__(
        self,
        graph: SocialNetwork,
        index: Optional[TreeIndex] = None,
        pruning: Optional[PruningConfig] = None,
        propagation_cache=None,
        cache_epoch: int = 0,
        backend: str = "reference",
        frozen=None,
        workspace=None,
        kernel_tier: str = "auto",
    ) -> None:
        self.graph = graph
        self.index = index if index is not None else build_tree_index(graph)
        self.pruning = pruning if pruning is not None else PruningConfig.all_enabled()
        self.propagation_cache = propagation_cache
        self.cache_epoch = cache_epoch
        self.backend = backend
        self.kernel_tier = kernel_tier
        self._frozen = frozen
        self._workspace = workspace
        if propagation_cache is not None:
            # Deferred import: repro.serve imports this module at package
            # init, so the cache helpers cannot be imported at module level.
            from repro.serve.cache import propagation_cache_key

            self._propagation_key = propagation_cache_key

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def query(self, query: TopLQuery) -> TopLResult:
        """Answer a TopL-ICDE query (Algorithm 3)."""
        started = time.perf_counter()
        self.index.validate_radius(query.radius)
        query_bv = BitVector.from_keywords(query.keywords, self.index.precomputed.num_bits)
        counters = PruningCounters()
        statistics = QueryStatistics()
        results = _ResultSet(query.top_l)

        root = self.index.root
        if root is None:
            statistics.elapsed_seconds = time.perf_counter() - started
            return TopLResult(communities=(), statistics=statistics)

        # Max-heap of (negated score bound, tie-breaker, node).
        heap: list[tuple[float, int, object]] = []
        counter = 0
        heapq.heappush(heap, (-float("inf"), counter, root))
        counter += 1
        # Distinct candidate centres frequently extract the same community
        # (every member of a dense cluster is a valid centre for it); scoring
        # is the expensive step, so communities are deduplicated before it.
        scored_vertex_sets: set[frozenset] = set()

        while heap:
            negative_key, _, node = heapq.heappop(heap)
            key = -negative_key
            statistics.visited_index_nodes += 1
            if self.pruning.score and key <= results.sigma_l:
                statistics.heap_terminated_early = True
                break

            if node.is_leaf:
                for vertex in node.vertices:
                    statistics.visited_leaf_vertices += 1
                    community = self._process_leaf_vertex(
                        vertex, query, query_bv, results, counters, statistics,
                        scored_vertex_sets,
                    )
                    if community is not None:
                        results.consider(community)
            else:
                for child in node.children:
                    if self._prune_index_entry(child, query, query_bv, results, counters):
                        continue
                    child_key = child.aggregates.score_bound_for(query.radius, query.theta)
                    heapq.heappush(heap, (-child_key, counter, child))
                    counter += 1

        statistics.pruned_by_keyword = counters.keyword + counters.index_keyword
        statistics.pruned_by_support = counters.support + counters.index_support
        statistics.pruned_by_score = counters.score + counters.index_score
        statistics.pruned_by_radius = counters.radius
        statistics.pruned_index_entries = counters.index_level
        statistics.elapsed_seconds = time.perf_counter() - started
        return TopLResult(communities=results.communities(), statistics=statistics)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _prune_index_entry(
        self,
        entry,
        query: TopLQuery,
        query_bv: BitVector,
        results: _ResultSet,
        counters: PruningCounters,
    ) -> bool:
        """Apply the index-level rules (Lemmas 5-7) to a child entry."""
        aggregates = entry.aggregates
        if self.pruning.keyword and index_keyword_prune(
            aggregates.bitvector(query.radius), query_bv
        ):
            counters.index_keyword += 1
            return True
        if self.pruning.support and (
            index_support_prune(aggregates.support_bound(query.radius), query.k)
            or trussness_prune(aggregates.trussness_bound, query.k)
        ):
            counters.index_support += 1
            return True
        if self.pruning.score and index_score_prune(
            aggregates.score_bounds(query.radius), query.theta, results.sigma_l
        ):
            counters.index_score += 1
            return True
        return False

    def _process_leaf_vertex(
        self,
        vertex: VertexId,
        query: TopLQuery,
        query_bv: BitVector,
        results: _ResultSet,
        counters: PruningCounters,
        statistics: QueryStatistics,
        scored_vertex_sets: set,
    ) -> Optional[SeedCommunity]:
        """Apply community-level pruning to a candidate centre, then refine it."""
        statistics.candidates_examined += 1
        aggregates = self.index.vertex_aggregates(vertex)
        radius_aggregates = aggregates.for_radius(query.radius)

        if self.pruning.keyword:
            # Lemma 1: the r-hop subgraph must contain at least one query
            # keyword, and the centre itself must carry one.
            if keyword_prune_by_bitvector(radius_aggregates.bitvector, query_bv):
                counters.keyword += 1
                return None
            if not center_has_query_keyword(self.graph, vertex, query.keywords):
                counters.keyword += 1
                return None
        if self.pruning.support and (
            support_prune(radius_aggregates.support_upper_bound, query.k)
            or trussness_prune(aggregates.center_trussness, query.k)
        ):
            counters.support += 1
            return None
        if self.pruning.score and score_prune(
            radius_aggregates.score_bound_for(query.theta), results.sigma_l
        ):
            counters.score += 1
            return None

        # Refinement: materialise hop(v, r), extract the seed community and
        # score it exactly.
        candidate_view = hop_subgraph(self.graph, vertex, query.radius)
        vertices = extract_seed_community(self.graph, vertex, query, candidate_view)
        if not vertices:
            counters.radius += 1
            return None
        if vertices in scored_vertex_sets:
            return None
        scored_vertex_sets.add(vertices)
        influenced = self._propagate(vertices, query.theta, statistics)
        statistics.communities_scored += 1
        return SeedCommunity(
            center=vertex,
            vertices=vertices,
            influenced=influenced,
            k=query.k,
            radius=query.radius,
        )

    def _propagate(self, vertices: frozenset, theta: float, statistics: QueryStatistics):
        """Run ``calculate_influence``, consulting the propagation cache if any."""
        cache = self.propagation_cache
        if cache is None:
            return self._calculate_influence(vertices, theta)
        key = self._propagation_key(vertices, theta, self.cache_epoch)
        influenced = cache.get(key)
        if influenced is not None:
            statistics.propagation_cache_hits += 1
            return influenced
        statistics.propagation_cache_misses += 1
        influenced = self._calculate_influence(vertices, theta)
        cache.put(key, influenced)
        return influenced

    def _calculate_influence(self, vertices: frozenset, theta: float):
        """Score a community on the configured backend (identical results)."""
        if self.backend != "fast":
            return community_propagation(self.graph, vertices, theta)
        if self._workspace is None:
            # Deferred import keeps repro.query importable without the
            # fastgraph package loaded (reference-only deployments).
            from repro.fastgraph.kernels import make_workspace

            if self._frozen is None:
                self._frozen = self.graph.freeze()
            self._workspace = make_workspace(self._frozen, self.kernel_tier)
        from repro.fastgraph.kernels import community_propagation_csr

        return community_propagation_csr(
            self._frozen, vertices, theta, workspace=self._workspace
        )


def topl_icde(
    graph: SocialNetwork,
    query: TopLQuery,
    index: Optional[TreeIndex] = None,
    pruning: Optional[PruningConfig] = None,
) -> TopLResult:
    """Convenience wrapper: answer one TopL-ICDE query.

    Builds a default index when none is supplied; reuse a
    :class:`TopLProcessor` (or the :class:`repro.core.engine.InfluentialCommunityEngine`)
    when running many queries against the same graph.
    """
    processor = TopLProcessor(graph, index=index, pruning=pruning)
    return processor.query(query)
