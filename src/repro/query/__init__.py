"""Online query processing: TopL-ICDE (Algorithm 3) and DTopL-ICDE (Algorithm 4)."""

from repro.query.params import (
    DTopLQuery,
    TopLQuery,
    make_dtopl_query,
    make_topl_query,
)
from repro.query.results import (
    DTopLResult,
    QueryStatistics,
    SeedCommunity,
    TopLResult,
)
from repro.query.seed import (
    extract_seed_community,
    is_valid_seed_community,
    seed_community_candidates,
)
from repro.query.topl import TopLProcessor, topl_icde
from repro.query.dtopl import DTopLProcessor, dtopl_icde, greedy_select_diversified

__all__ = [
    "DTopLQuery",
    "TopLQuery",
    "make_dtopl_query",
    "make_topl_query",
    "DTopLResult",
    "QueryStatistics",
    "SeedCommunity",
    "TopLResult",
    "extract_seed_community",
    "is_valid_seed_community",
    "seed_community_candidates",
    "TopLProcessor",
    "topl_icde",
    "DTopLProcessor",
    "dtopl_icde",
    "greedy_select_diversified",
]
