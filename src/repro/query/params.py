"""Query parameter objects for TopL-ICDE and DTopL-ICDE.

Definition 4 parameterises a TopL-ICDE query by the query keyword set ``Q``,
the truss support ``k``, the maximum community radius ``r``, the influence
threshold ``theta`` and the result size ``L``; DTopL-ICDE (Definition 5) adds
the candidate multiplier ``n`` used by the greedy refinement.  Table III lists
the values explored in the evaluation, with defaults in bold:

==========================  =========================  =========
parameter                   values                      default
==========================  =========================  =========
theta                       0.1, 0.2, 0.3               0.2
|Q|                         2, 3, 5, 8, 10              5
k                           3, 4, 5                     4
r                           1, 2, 3                     2
L                           2, 3, 5, 8, 10              5
|v_i.W|                     1 .. 5                      3
|Sigma|                     10, 20, 50, 80              50
|V(G)|                      10K .. 1M                   25K
n (DTopL)                   2, 3, 5, 8, 10              3
==========================  =========================  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import QueryParameterError

#: Table III default parameter values (bold entries).
DEFAULT_THETA = 0.2
DEFAULT_QUERY_KEYWORDS = 5
DEFAULT_TRUSS_K = 4
DEFAULT_RADIUS = 2
DEFAULT_RESULT_SIZE = 5
DEFAULT_KEYWORDS_PER_VERTEX = 3
DEFAULT_KEYWORD_DOMAIN = 50
DEFAULT_CANDIDATE_FACTOR = 3


@dataclass(frozen=True)
class TopLQuery:
    """Parameters of a TopL-ICDE query (Definition 4).

    Attributes
    ----------
    keywords:
        The query keyword set ``Q``; a seed community vertex qualifies when
        its keyword set intersects ``Q``.
    k:
        Truss support parameter (``k >= 2``).
    radius:
        Maximum seed-community radius ``r`` (``>= 1``).
    theta:
        Influence threshold ``theta`` in ``[0, 1)``.
    top_l:
        Number of seed communities to return (``L >= 1``).
    """

    keywords: frozenset = field(default_factory=frozenset)
    k: int = DEFAULT_TRUSS_K
    radius: int = DEFAULT_RADIUS
    theta: float = DEFAULT_THETA
    top_l: int = DEFAULT_RESULT_SIZE

    def __post_init__(self) -> None:
        object.__setattr__(self, "keywords", frozenset(self.keywords))
        if not self.keywords:
            raise QueryParameterError("query keyword set Q must be non-empty")
        if not all(isinstance(keyword, str) and keyword for keyword in self.keywords):
            raise QueryParameterError("query keywords must be non-empty strings")
        if self.k < 2:
            raise QueryParameterError(f"truss parameter k must be >= 2, got {self.k}")
        if self.radius < 1:
            raise QueryParameterError(f"radius r must be >= 1, got {self.radius}")
        if not 0.0 <= self.theta < 1.0:
            raise QueryParameterError(
                f"influence threshold theta must be in [0, 1), got {self.theta}"
            )
        if self.top_l < 1:
            raise QueryParameterError(f"result size L must be >= 1, got {self.top_l}")

    def with_overrides(self, **changes) -> "TopLQuery":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def describe(self) -> dict:
        """Return a flat dict of the parameters (used in reports)."""
        return {
            "|Q|": len(self.keywords),
            "k": self.k,
            "r": self.radius,
            "theta": self.theta,
            "L": self.top_l,
        }


@dataclass(frozen=True)
class DTopLQuery:
    """Parameters of a DTopL-ICDE query (Definition 5).

    Wraps a :class:`TopLQuery` and adds the candidate multiplier ``n``: the
    greedy refinement first collects the top-``n * L`` most influential
    communities and then selects ``L`` of them maximising the diversity score.
    """

    base: TopLQuery
    candidate_factor: int = DEFAULT_CANDIDATE_FACTOR

    def __post_init__(self) -> None:
        if not isinstance(self.base, TopLQuery):
            raise QueryParameterError("base must be a TopLQuery")
        if self.candidate_factor < 1:
            raise QueryParameterError(
                f"candidate factor n must be >= 1, got {self.candidate_factor}"
            )

    @property
    def keywords(self) -> frozenset:
        return self.base.keywords

    @property
    def k(self) -> int:
        return self.base.k

    @property
    def radius(self) -> int:
        return self.base.radius

    @property
    def theta(self) -> float:
        return self.base.theta

    @property
    def top_l(self) -> int:
        return self.base.top_l

    @property
    def num_candidates(self) -> int:
        """The number ``n * L`` of candidate communities to collect."""
        return self.candidate_factor * self.base.top_l

    def candidate_query(self) -> TopLQuery:
        """Return the TopL-ICDE query that collects the ``n * L`` candidates."""
        return self.base.with_overrides(top_l=self.num_candidates)

    def describe(self) -> dict:
        """Return a flat dict of the parameters (used in reports)."""
        summary = self.base.describe()
        summary["n"] = self.candidate_factor
        return summary


def make_topl_query(
    keywords,
    k: int = DEFAULT_TRUSS_K,
    radius: int = DEFAULT_RADIUS,
    theta: float = DEFAULT_THETA,
    top_l: int = DEFAULT_RESULT_SIZE,
) -> TopLQuery:
    """Convenience constructor accepting any keyword iterable."""
    return TopLQuery(
        keywords=frozenset(keywords), k=k, radius=radius, theta=theta, top_l=top_l
    )


def make_dtopl_query(
    keywords,
    k: int = DEFAULT_TRUSS_K,
    radius: int = DEFAULT_RADIUS,
    theta: float = DEFAULT_THETA,
    top_l: int = DEFAULT_RESULT_SIZE,
    candidate_factor: int = DEFAULT_CANDIDATE_FACTOR,
) -> DTopLQuery:
    """Convenience constructor for DTopL-ICDE queries."""
    base = make_topl_query(keywords, k=k, radius=radius, theta=theta, top_l=top_l)
    return DTopLQuery(base=base, candidate_factor=candidate_factor)
