"""Seed community extraction (Definition 2).

Given a centre vertex ``v_q``, an r-hop subgraph ``hop(v_q, r)``, a truss
parameter ``k`` and the query keyword set ``Q``, the extractor finds the seed
community centred at ``v_q``: the largest connected subgraph containing
``v_q`` such that

1. every vertex lies within ``r`` hops of ``v_q`` *inside the community*,
2. the community is a k-truss, and
3. every vertex carries at least one query keyword.

The constraints interact (removing far vertices can break the truss condition
and vice versa), so the extractor alternates the two reductions until a fixed
point is reached.  Both reductions only ever *remove* vertices, so the loop
terminates after at most ``|hop(v_q, r)|`` iterations; the result is the
unique maximal subgraph satisfying all constraints (each constraint is
monotone: any satisfying subgraph is contained in the fixed point).
"""

from __future__ import annotations

from typing import Optional

from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView
from repro.graph.traversal import hop_distances_within, hop_subgraph
from repro.query.params import TopLQuery
from repro.truss.ktruss import ktruss_component_of


def keyword_qualified_vertices(view: SubgraphView, keywords: frozenset) -> frozenset:
    """Return the vertices of ``view`` whose keyword set intersects ``keywords``."""
    return frozenset(v for v in view if view.keywords(v) & keywords)


def extract_seed_community(
    graph: SocialNetwork,
    center: VertexId,
    query: TopLQuery,
    candidate_view: Optional[SubgraphView] = None,
) -> Optional[frozenset]:
    """Extract the seed community centred at ``center`` for ``query``.

    Parameters
    ----------
    graph:
        The full social network ``G``.
    center:
        The candidate centre vertex ``v_q``.
    query:
        The query parameters (keywords, k, radius).
    candidate_view:
        Optionally, a pre-computed ``hop(center, radius)`` view to avoid
        recomputing the BFS (the online algorithm passes the view it already
        materialised for pruning).

    Returns
    -------
    frozenset or None
        The vertex set of the seed community, or ``None`` when no valid
        community centred at ``center`` exists.
    """
    if not graph.has_vertex(center):
        return None
    if not graph.keywords(center) & query.keywords:
        # The centre itself must carry a query keyword (it is part of g).
        return None

    if candidate_view is None:
        candidate_view = hop_subgraph(graph, center, query.radius)

    # Keyword constraint: drop every vertex without a query keyword.
    qualified = keyword_qualified_vertices(candidate_view, query.keywords)
    if center not in qualified:
        return None
    current = candidate_view.restrict(qualified)

    # Alternate truss + radius reductions to a fixed point.
    while True:
        if center not in current or len(current) < 2:
            return None

        truss_vertices = ktruss_component_of(current, query.k, center)
        if not truss_vertices or center not in truss_vertices:
            return None
        if len(truss_vertices) < len(current):
            current = current.restrict(truss_vertices)
            continue

        distances = hop_distances_within(current, center, max_depth=query.radius)
        within_radius = frozenset(distances)
        if len(within_radius) < len(current):
            current = current.restrict(within_radius)
            continue

        # Both constraints hold: fixed point reached.
        return frozenset(current.vertices)


def seed_community_candidates(
    graph: SocialNetwork,
    query: TopLQuery,
    centers=None,
) -> dict[VertexId, frozenset]:
    """Extract the seed community of every candidate centre.

    A helper used by the brute-force baseline and by tests: for every vertex
    in ``centers`` (default: all vertices), extract its seed community and
    return the non-empty ones keyed by centre.
    """
    if centers is None:
        centers = list(graph.vertices())
    communities: dict[VertexId, frozenset] = {}
    for center in centers:
        community = extract_seed_community(graph, center, query)
        if community:
            communities[center] = community
    return communities


def is_valid_seed_community(
    graph: SocialNetwork,
    vertices: frozenset,
    center: VertexId,
    query: TopLQuery,
) -> bool:
    """Check whether ``vertices`` satisfies every Definition 2 constraint.

    The library interprets a seed community as the vertex set of a connected
    k-truss (the standard edge-subgraph semantics of truss community search):
    every vertex must belong to the k-truss of the community's induced
    subgraph, the truss component containing the centre must span the whole
    community, every vertex must be within ``r`` hops of the centre inside the
    community, and every vertex must carry a query keyword.

    Used by tests and by the refinement step as a defence-in-depth assertion;
    the extractor's output always passes.
    """
    if center not in vertices:
        return False
    view = SubgraphView(graph, vertices, center=center)
    if not view.is_connected():
        return False
    if any(not (view.keywords(v) & query.keywords) for v in view):
        return False
    distances = hop_distances_within(view, center, max_depth=query.radius)
    if len(distances) != len(view):
        return False
    return ktruss_component_of(view, query.k, center) == frozenset(vertices)
