"""Edge edit scripts: the input format of the dynamic-graph subsystem.

An :class:`UpdateBatch` is an ordered sequence of :class:`EdgeUpdate` edits
(edge insertions and deletions) with *sequential* semantics: each edit is
validated and applied against the graph state produced by the edits before
it, so a script may insert an edge and delete it again later.  Scripts
round-trip through a small JSON document (see :meth:`UpdateBatch.to_json`)
that the ``repro update`` CLI subcommand replays.

Vertices referenced by an insertion but absent from the graph are created on
the fly; an edit may carry keyword sets for such *new* endpoints (keywords of
existing vertices are never modified by an edit script).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.exceptions import DynamicUpdateError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.truss.support import edge_key

PathLike = Union[str, Path]

INSERT = "insert"
DELETE = "delete"
_OPS = (INSERT, DELETE)

#: Default activation probability of inserted edges (mirrors ``add_edge``).
DEFAULT_INSERT_PROBABILITY = 0.5


@dataclass(frozen=True)
class EdgeUpdate:
    """One edit of an edit script: insert or delete the edge ``{u, v}``.

    Attributes
    ----------
    op:
        ``"insert"`` or ``"delete"``.
    u, v:
        Endpoints of the structural edge.
    p_uv, p_vu:
        Directional activation probabilities of an insertion (``p_vu``
        defaults to ``p_uv``, ``p_uv`` to 0.5); must be omitted on deletions.
    keywords_u, keywords_v:
        Keyword sets applied to an endpoint *created* by this insertion;
        ignored for endpoints that already exist.
    """

    op: str
    u: VertexId
    v: VertexId
    p_uv: Optional[float] = None
    p_vu: Optional[float] = None
    keywords_u: frozenset = field(default_factory=frozenset)
    keywords_v: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise DynamicUpdateError(f"edit op must be one of {_OPS}, got {self.op!r}")
        if self.u == self.v:
            raise DynamicUpdateError(f"self-loop edit on vertex {self.u!r} is not allowed")
        if self.op == DELETE and (self.p_uv is not None or self.p_vu is not None):
            raise DynamicUpdateError("deletions must not carry probabilities")
        object.__setattr__(self, "keywords_u", frozenset(self.keywords_u))
        object.__setattr__(self, "keywords_v", frozenset(self.keywords_v))

    @property
    def key(self) -> frozenset:
        """Canonical (orientation-free) key of the edited edge."""
        return edge_key(self.u, self.v)

    @classmethod
    def insert(
        cls,
        u: VertexId,
        v: VertexId,
        p_uv: float = DEFAULT_INSERT_PROBABILITY,
        p_vu: Optional[float] = None,
        keywords_u: Iterable[str] = (),
        keywords_v: Iterable[str] = (),
    ) -> "EdgeUpdate":
        """Build an insertion edit."""
        return cls(
            op=INSERT, u=u, v=v, p_uv=p_uv, p_vu=p_vu,
            keywords_u=frozenset(keywords_u), keywords_v=frozenset(keywords_v),
        )

    @classmethod
    def delete(cls, u: VertexId, v: VertexId) -> "EdgeUpdate":
        """Build a deletion edit."""
        return cls(op=DELETE, u=u, v=v)

    def resolved_probabilities(self) -> tuple[float, float]:
        """The effective ``(p_uv, p_vu)`` of an insertion after defaulting.

        ``p_uv`` defaults to :data:`DEFAULT_INSERT_PROBABILITY` and ``p_vu``
        to ``p_uv``.  This is the single source of the defaulting rule:
        every application site (direct graph apply, incremental truss
        maintenance, overlay replay, JSON encoding) shares it, which is what
        keeps a replayed ``DeltaCSR`` overlay bit-identical to its parent.
        """
        p_uv = DEFAULT_INSERT_PROBABILITY if self.p_uv is None else self.p_uv
        return p_uv, (p_uv if self.p_vu is None else self.p_vu)

    def as_dict(self) -> dict:
        """JSON-compatible representation of the edit."""
        record: dict = {"op": self.op, "u": self.u, "v": self.v}
        if self.op == INSERT:
            record["p_uv"], record["p_vu"] = self.resolved_probabilities()
            if self.keywords_u:
                record["keywords_u"] = sorted(self.keywords_u)
            if self.keywords_v:
                record["keywords_v"] = sorted(self.keywords_v)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "EdgeUpdate":
        """Parse one edit from its :meth:`as_dict` representation."""
        try:
            op = record["op"]
            u = record["u"]
            v = record["v"]
        except (KeyError, TypeError) as exc:
            raise DynamicUpdateError(f"malformed edit record: {record!r}") from exc
        return cls(
            op=op,
            u=u,
            v=v,
            p_uv=record.get("p_uv"),
            p_vu=record.get("p_vu"),
            keywords_u=frozenset(record.get("keywords_u", ())),
            keywords_v=frozenset(record.get("keywords_v", ())),
        )


class UpdateBatch:
    """An ordered edit script over a social network.

    The batch is immutable once constructed; :meth:`validate_against`
    dry-runs the whole script against a graph so application is all-or-nothing.
    """

    def __init__(self, updates: Iterable[EdgeUpdate] = ()) -> None:
        self.updates: tuple[EdgeUpdate, ...] = tuple(updates)
        for update in self.updates:
            if not isinstance(update, EdgeUpdate):
                raise DynamicUpdateError(
                    f"expected an EdgeUpdate, got {type(update).__name__}"
                )

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self.updates[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UpdateBatch(insertions={self.num_insertions}, "
            f"deletions={self.num_deletions})"
        )

    @property
    def num_insertions(self) -> int:
        """Number of insertion edits."""
        return sum(1 for update in self.updates if update.op == INSERT)

    @property
    def num_deletions(self) -> int:
        """Number of deletion edits."""
        return sum(1 for update in self.updates if update.op == DELETE)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate_against(self, graph: SocialNetwork) -> None:
        """Dry-run the script against ``graph``; raise before any mutation.

        Sequential semantics: each edit is checked against the edge set
        produced by the edits before it, so ``insert(a, b)`` followed by
        ``delete(a, b)`` is valid even when ``{a, b}`` is not in the graph.
        """
        edges = {edge_key(u, v) for u, v in graph.edges()}
        for position, update in enumerate(self.updates):
            key = update.key
            if update.op == INSERT:
                if key in edges:
                    raise DynamicUpdateError(
                        f"edit {position}: edge ({update.u!r}, {update.v!r}) "
                        "already exists (probability changes are not edits)"
                    )
                for probability in (update.p_uv, update.p_vu):
                    if probability is not None and not 0.0 <= float(probability) <= 1.0:
                        raise DynamicUpdateError(
                            f"edit {position}: probability {probability!r} "
                            "is outside [0, 1]"
                        )
                edges.add(key)
            else:
                if key not in edges:
                    raise DynamicUpdateError(
                        f"edit {position}: edge ({update.u!r}, {update.v!r}) "
                        "does not exist"
                    )
                edges.discard(key)

    def apply_to(self, graph: SocialNetwork) -> list:
        """Apply the script to ``graph`` directly, with no index maintenance.

        Used by forced rebuilds, where incremental bookkeeping would be
        thrown away anyway.  Returns the vertices the script created, in
        creation order.  Call :meth:`validate_against` first — application
        assumes a valid script.
        """
        new_vertices: list[VertexId] = []
        for update in self.updates:
            if update.op == INSERT:
                for vertex, keywords in (
                    (update.u, update.keywords_u),
                    (update.v, update.keywords_v),
                ):
                    if not graph.has_vertex(vertex):
                        graph.add_vertex(vertex, keywords)
                        new_vertices.append(vertex)
                p_uv, p_vu = update.resolved_probabilities()
                graph.add_edge(update.u, update.v, p_uv, p_vu)
            else:
                graph.remove_edge(update.u, update.v)
        return new_vertices

    # ------------------------------------------------------------------ #
    # edit-script JSON round trip
    # ------------------------------------------------------------------ #
    def to_json(self) -> dict:
        """Return the JSON edit-script document for this batch."""
        return {"format": "repro-edit-script", "version": 1,
                "edits": [update.as_dict() for update in self.updates]}

    @classmethod
    def from_json(cls, payload) -> "UpdateBatch":
        """Parse a batch from an edit-script document (or a bare edit list)."""
        if isinstance(payload, dict):
            try:
                edits = payload["edits"]
            except KeyError as exc:
                raise DynamicUpdateError(
                    "edit-script document is missing the 'edits' list"
                ) from exc
        else:
            edits = payload
        if not isinstance(edits, list):
            raise DynamicUpdateError(
                f"'edits' must be a list, got {type(edits).__name__}"
            )
        return cls(EdgeUpdate.from_dict(record) for record in edits)

    def save(self, path: PathLike) -> None:
        """Write the edit script to ``path`` as JSON."""
        with Path(path).open("w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)

    @classmethod
    def load(cls, path: PathLike) -> "UpdateBatch":
        """Load an edit script saved by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise DynamicUpdateError(f"edit script not found: {path}")
        with path.open("r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


def random_update_batch(
    graph: SocialNetwork,
    size: int,
    rng: Union[int, random.Random] = 7,
    insert_ratio: float = 0.5,
    focus: Optional[VertexId] = None,
    focus_radius: int = 2,
    weight_range: tuple[float, float] = (0.1, 0.9),
    grow_probability: float = 0.0,
    keyword_pool: Sequence[str] = (),
) -> UpdateBatch:
    """Generate a random, sequentially-valid edit script over ``graph``.

    Parameters
    ----------
    graph:
        The network the script will be applied to (left untouched here).
    size:
        Number of edits.
    rng:
        Seed or ``random.Random`` instance (scripts are reproducible).
    insert_ratio:
        Target fraction of insertions (deletions make up the rest; the ratio
        degrades gracefully when the candidate pool runs dry).
    focus / focus_radius:
        When ``focus`` is given, edits are restricted to vertices within
        ``focus_radius`` hops of it — a locality-biased churn model (real
        update streams cluster around active communities).
    weight_range:
        Interval the directional probabilities of insertions are drawn from.
    grow_probability:
        Probability that an insertion attaches a brand-new vertex instead of
        connecting two existing ones (models user arrival).
    keyword_pool:
        Keywords sampled for newly created vertices (1-3 each) when non-empty.
    """
    if size < 0:
        raise DynamicUpdateError(f"size must be >= 0, got {size}")
    generator = rng if isinstance(rng, random.Random) else random.Random(rng)

    if focus is not None:
        from repro.graph.traversal import bfs_distances

        pool = sorted(bfs_distances(graph, focus, max_depth=focus_radius), key=repr)
    else:
        pool = list(graph.vertices())

    pool_set = set(pool)
    edges = [
        edge_key(u, v)
        for u, v in graph.edges()
        if u in pool_set and v in pool_set
    ]
    edge_set = set(edges)
    numeric_ids = [v for v in graph.vertices() if isinstance(v, int)]
    next_vertex = (max(numeric_ids) + 1) if numeric_ids else len(pool)

    def draw_probability() -> float:
        low, high = weight_range
        return generator.uniform(low, high)

    def new_vertex_keywords() -> frozenset:
        if not keyword_pool:
            return frozenset()
        count = generator.randint(1, min(3, len(keyword_pool)))
        return frozenset(generator.sample(list(keyword_pool), count))

    updates: list[EdgeUpdate] = []
    while len(updates) < size:
        want_insert = generator.random() < insert_ratio
        if not want_insert and not edges:
            want_insert = True
        if want_insert:
            edit = None
            if grow_probability > 0.0 and generator.random() < grow_probability:
                anchor = generator.choice(pool) if pool else None
                if anchor is not None:
                    vertex = next_vertex
                    next_vertex += 1
                    edit = EdgeUpdate.insert(
                        anchor,
                        vertex,
                        draw_probability(),
                        draw_probability(),
                        keywords_v=new_vertex_keywords(),
                    )
                    pool.append(vertex)
                    pool_set.add(vertex)
            if edit is None:
                if len(pool) < 2:
                    break
                for _ in range(64):
                    u, v = generator.sample(pool, 2)
                    key = edge_key(u, v)
                    if key not in edge_set:
                        edit = EdgeUpdate.insert(
                            u, v, draw_probability(), draw_probability()
                        )
                        break
                else:  # pool is (near-)complete: fall back to a deletion
                    if not edges:
                        break
                    edit = None
            if edit is not None:
                edge_set.add(edit.key)
                edges.append(edit.key)
                updates.append(edit)
                continue
        if not edges:
            break
        position = generator.randrange(len(edges))
        key = edges[position]
        edges[position] = edges[-1]
        edges.pop()
        edge_set.discard(key)
        u, v = sorted(key, key=repr)
        updates.append(EdgeUpdate.delete(u, v))
    return UpdateBatch(updates)
