"""Incremental truss maintenance: exact supports and trussness under edits.

:class:`IncrementalTrussState` keeps the edge-support map and the full truss
decomposition of a mutable :class:`~repro.graph.social_network.SocialNetwork`
up to date while an :class:`~repro.dynamic.updates.UpdateBatch` is applied,
touching only the region an edit can actually reach instead of re-peeling the
whole graph.

The algorithm rests on the local fixpoint characterisation of trussness (the
truss analogue of the h-index characterisation of core numbers): ``tau(f)``
is the unique greatest labelling ``L`` with

    ``L(f) = 2 + max{ k : f lies in >= k triangles whose other two edges g, h
    both satisfy min(L(g), L(h)) >= k + 2 }``

Starting from any *upper bound* of the new trussness and repeatedly applying
the operator above (monotonically decreasing, via a worklist that re-examines
an edge only when a supporting triangle drops below its level) converges to
the exact decomposition of the mutated graph:

* **deletions** only lower trussness, so the old values are already a valid
  upper bound — the worklist starts from the edges whose support changed;
* **insertions** raise the trussness of an existing edge by at most one, and
  only for edges triangle-connected to the new edge through edges that could
  sit in the same k-truss.  A level-labelled BFS over triangles finds that
  candidate set; its estimates are bumped by one (the new edge starts at
  ``support + 2``) and the worklist settles them back down to exact values.

The worklist runs over **int edge ids** through the
:class:`~repro.graph.core.GraphCore` protocol, so the same code maintains a
reference :class:`~repro.graph.core.AdjacencyCore` view and a fast
:class:`~repro.fastgraph.delta.DeltaCSR` overlay — there is no
backend-specific maintenance path.  The public :attr:`supports` and
:attr:`trussness` maps keep the reference ``frozenset`` keying (and the
adopt-by-reference contract with ``PrecomputedData.global_edge_support``);
they are written through on every change, while the hot triangle loops touch
only the id-keyed twins.

Every quantity is exact after :meth:`IncrementalTrussState.apply` returns —
the equivalence test-suite checks bit-for-bit equality against a fresh
:func:`~repro.truss.decomposition.truss_decomposition` of the mutated graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.dynamic.updates import INSERT, UpdateBatch
from repro.graph.core import AdjacencyCore, GraphCore
from repro.graph.social_network import SocialNetwork, VertexId
from repro.truss.decomposition import TrussDecomposition, truss_decomposition
from repro.truss.support import edge_key, edge_support


@dataclass
class UpdateDelta:
    """What one applied batch actually changed (consumed by index refresh).

    ``deleted_edges`` records the removed edges *with* their directional
    probabilities so the affected-region analysis can still traverse them
    (paths through a deleted edge existed in the pre-update graph).
    """

    inserted_edges: list = field(default_factory=list)  # (u, v) pairs
    deleted_edges: list = field(default_factory=list)  # (u, v, p_uv, p_vu)
    new_vertices: list = field(default_factory=list)  # creation order
    touched_vertices: set = field(default_factory=set)  # endpoints of all edits
    support_changed: set = field(default_factory=set)  # surviving edges only
    truss_changed: set = field(default_factory=set)  # surviving edges only
    _support_baseline: dict = field(default_factory=dict)
    _truss_baseline: dict = field(default_factory=dict)

    def note_support(self, key: frozenset, old: int) -> None:
        self._support_baseline.setdefault(key, old)

    def note_trussness(self, key: frozenset, old: int) -> None:
        self._truss_baseline.setdefault(key, old)

    def finalize(self, supports: dict, trussness: dict) -> None:
        """Reduce the per-edit notes to net changes over the whole batch."""
        self.support_changed = {
            key
            for key, old in self._support_baseline.items()
            if key in supports and supports[key] != old
        }
        self.truss_changed = {
            key
            for key, old in self._truss_baseline.items()
            if key in trussness and trussness[key] != old
        }

    def changed_edge_vertices(self) -> set:
        """Endpoints of every support- or trussness-changed surviving edge."""
        vertices: set = set()
        for key in self.support_changed | self.truss_changed:
            vertices.update(key)
        return vertices


class IncrementalTrussState:
    """Exact supports + trussness of a graph, maintained under edge edits.

    Parameters
    ----------
    graph:
        The live network; :meth:`apply` mutates it.
    supports:
        Optional pre-computed support map to adopt **by reference** — passing
        ``PrecomputedData.global_edge_support`` keeps the offline data in sync
        with every edit for free.
    decomposition:
        Optional decomposition to seed the trussness map from; computed fresh
        (one full peeling) when omitted.
    core:
        Optional :class:`~repro.graph.core.GraphCore` the worklist runs over,
        kept in lockstep with ``graph`` by :meth:`apply`.  Defaults to a
        fresh :class:`~repro.graph.core.AdjacencyCore` view; the fast-backend
        engine passes its live :class:`~repro.fastgraph.delta.DeltaCSR`
        overlay so the same edits patch the query snapshot in place.
    """

    def __init__(
        self,
        graph: SocialNetwork,
        supports: Optional[dict] = None,
        decomposition: Optional[TrussDecomposition] = None,
        core: Optional[GraphCore] = None,
    ) -> None:
        self.graph = graph
        self.core = core if core is not None else AdjacencyCore(graph)
        self.supports = supports if supports is not None else edge_support(graph)
        if decomposition is None:
            decomposition = self._fresh_decomposition()
        self.trussness = dict(decomposition.edge_trussness)
        self._vertex_trussness = dict(decomposition.vertex_trussness)
        self._bind_core_maps()

    def _fresh_decomposition(self) -> TrussDecomposition:
        """One full peeling, on the cheapest representation available.

        A pristine CSR-backed core peels over the array buffers; anything
        else (a reference view, or an overlay that already carries edits)
        peels the live graph.  Trussness is a graph invariant, so the seed
        values are identical either way.
        """
        base = getattr(self.core, "base", None)
        if base is not None and not self.core.is_dirty:
            from repro.fastgraph.kernels import truss_decomposition_csr

            return truss_decomposition_csr(base)
        return truss_decomposition(self.graph)

    def _bind_core_maps(self) -> None:
        """(Re)derive the id-keyed hot maps from the public keyed maps.

        Called at construction and by :meth:`rebind_core` after the engine
        compacts a :class:`~repro.fastgraph.delta.DeltaCSR` overlay (which
        renumbers edge ids); the public maps are the durable representation,
        the id maps a cheap O(|E|) projection onto the current core.
        """
        supports, trussness = self.supports, self.trussness
        core = self.core
        edge_key_of = core.edge_key
        sup: dict[int, int] = {}
        tau: dict[int, int] = {}
        for edge_id in core.live_edge_ids():
            key = edge_key_of(edge_id)
            sup[edge_id] = supports[key]
            tau[edge_id] = trussness[key]
        self._sup = sup
        self._tau = tau

    def rebind_core(self, core: GraphCore) -> None:
        """Point the worklist at a new core over the same (current) graph."""
        self.core = core
        self._bind_core_maps()

    # ------------------------------------------------------------------ #
    # read access
    # ------------------------------------------------------------------ #
    def trussness_of_vertex(self, vertex: VertexId) -> int:
        """Trussness of ``vertex`` in the current graph (2 when isolated)."""
        return self._vertex_trussness.get(vertex, 2)

    def supports_by_edge_id(self) -> dict:
        """The live support map keyed by the core's int edge ids."""
        return self._sup

    def decomposition(self) -> TrussDecomposition:
        """Return the current decomposition as a plain read-only object."""
        return TrussDecomposition(
            edge_trussness=dict(self.trussness),
            vertex_trussness=dict(self._vertex_trussness),
        )

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply(self, batch: UpdateBatch) -> UpdateDelta:
        """Apply ``batch`` to the graph, maintaining supports and trussness.

        The batch is validated up front (all-or-nothing); each edit then
        updates supports locally and settles trussness to the exact values
        for the intermediate graph before the next edit is applied.  The
        core is kept in lockstep with the graph, edit by edit.
        """
        batch.validate_against(self.graph)
        delta = UpdateDelta()
        for update in batch:
            if update.op == INSERT:
                self._apply_insert(update, delta)
            else:
                self._apply_delete(update, delta)
        delta.finalize(self.supports, self.trussness)
        self._refresh_vertex_trussness(delta)
        return delta

    # ------------------------------------------------------------------ #
    # dual-map writes (id-keyed hot maps + public frozenset-keyed maps)
    # ------------------------------------------------------------------ #
    def _set_support(self, edge_id: int, key: frozenset, value: int) -> None:
        self._sup[edge_id] = value
        self.supports[key] = value

    def _set_trussness(self, edge_id: int, key: frozenset, value: int) -> None:
        self._tau[edge_id] = value
        self.trussness[key] = value

    # ------------------------------------------------------------------ #
    # single edits
    # ------------------------------------------------------------------ #
    def _apply_delete(self, update, delta: UpdateDelta) -> None:
        u_id, v_id = update.u, update.v
        graph, core = self.graph, self.core
        p_uv = graph.probability(u_id, v_id)
        p_vu = graph.probability(v_id, u_id)
        index_of = core.table.index_of
        row_u = core.neighbor_row(index_of(u_id))
        row_v = core.neighbor_row(index_of(v_id))
        # Triangle edge pairs, collected before the rows mutate.
        common = [(row_u[w], row_v[w]) for w in row_u.keys() & row_v.keys()]
        graph.remove_edge(u_id, v_id)
        edge_id = core.note_delete(u_id, v_id)

        key = edge_key(u_id, v_id)
        delta.note_support(key, self._sup.get(edge_id, 0))
        delta.note_trussness(key, self._tau.get(edge_id, 2))
        self._sup.pop(edge_id, None)
        self._tau.pop(edge_id, None)
        self.supports.pop(key, None)
        self.trussness.pop(key, None)
        delta.deleted_edges.append((u_id, v_id, p_uv, p_vu))
        delta.touched_vertices.update((u_id, v_id))

        dirty: list[int] = []
        edge_key_of = core.edge_key
        for edge_uw, edge_vw in common:
            for other in (edge_uw, edge_vw):
                delta.note_support(edge_key_of(other), self._sup[other])
                self._set_support(other, edge_key_of(other), self._sup[other] - 1)
                dirty.append(other)
        self._settle(dirty, delta)

    def _apply_insert(self, update, delta: UpdateDelta) -> None:
        u_id, v_id = update.u, update.v
        graph, core = self.graph, self.core
        for vertex, keywords in ((u_id, update.keywords_u), (v_id, update.keywords_v)):
            if not graph.has_vertex(vertex):
                graph.add_vertex(vertex, keywords)
                delta.new_vertices.append(vertex)
                self._vertex_trussness[vertex] = 2
        p_uv, p_vu = update.resolved_probabilities()
        graph.add_edge(u_id, v_id, p_uv, p_vu)
        edge_id = core.note_insert(
            u_id, v_id, p_uv, p_vu,
            keywords_u=update.keywords_u, keywords_v=update.keywords_v,
        )

        key = edge_key(u_id, v_id)
        index_of = core.table.index_of
        row_u = core.neighbor_row(index_of(u_id))
        row_v = core.neighbor_row(index_of(v_id))
        common = [(row_u[w], row_v[w]) for w in row_u.keys() & row_v.keys()]
        self._set_support(edge_id, key, len(common))
        delta.inserted_edges.append((u_id, v_id))
        delta.touched_vertices.update((u_id, v_id))
        edge_key_of = core.edge_key
        for edge_uw, edge_vw in common:
            for other in (edge_uw, edge_vw):
                delta.note_support(edge_key_of(other), self._sup[other])
                self._set_support(other, edge_key_of(other), self._sup[other] + 1)

        candidates = self._insertion_candidates(edge_id)
        for candidate in candidates:
            if candidate == edge_id:
                continue
            candidate_key = edge_key_of(candidate)
            delta.note_trussness(candidate_key, self._tau[candidate])
            self._set_trussness(candidate, candidate_key, self._tau[candidate] + 1)
        self._set_trussness(edge_id, key, self._sup[edge_id] + 2)
        self._settle(candidates, delta)

    # ------------------------------------------------------------------ #
    # the affected-region machinery
    # ------------------------------------------------------------------ #
    def _triangles_of(self, edge_id: int):
        """Yield ``(other_edge_1, other_edge_2)`` for each triangle of ``edge_id``."""
        a, b = self.core.edge_endpoints(edge_id)
        row_a = self.core.neighbor_row(a)
        row_b = self.core.neighbor_row(b)
        if len(row_a) > len(row_b):
            row_a, row_b = row_b, row_a
        for w, first in row_a.items():
            second = row_b.get(w)
            if second is not None:
                yield first, second

    def _insertion_candidates(self, new_edge: int) -> list[int]:
        """Edges whose trussness may rise after inserting ``new_edge``.

        Level-labelled BFS over triangles: a label ``l(f)`` bounds the largest
        ``k`` for which ``f`` could sit in the same (new) k-truss as the
        inserted edge, using ``tau + 1`` as the per-edge upper bound (a single
        insertion raises trussness by at most one).  An edge is a candidate
        when its label reaches ``tau + 1``; edges below that only *relay* the
        traversal.  The set provably contains every edge whose trussness
        rises: inside the new maximal k-truss, the riser is triangle-connected
        to the inserted edge through edges of trussness >= k, each of which
        carries a label >= k here.
        """
        start_level = self._sup[new_edge] + 2
        levels: dict[int, int] = {new_edge: start_level}
        queue: deque[int] = deque((new_edge,))
        candidates: list[int] = [new_edge]
        trussness = self._tau

        def upper_bound(edge: int) -> int:
            if edge == new_edge:
                return start_level
            return trussness[edge] + 1

        while queue:
            edge = queue.popleft()
            level = levels[edge]
            for first, second in self._triangles_of(edge):
                bound_first = upper_bound(first)
                bound_second = upper_bound(second)
                reachable = min(level, bound_first, bound_second)
                if reachable < 3:
                    continue
                for other, bound in ((first, bound_first), (second, bound_second)):
                    if reachable > levels.get(other, 2):
                        if (
                            other != new_edge
                            and levels.get(other, 2) < bound <= reachable
                        ):
                            candidates.append(other)
                        levels[other] = reachable
                        queue.append(other)
        return candidates

    def _local_trussness(self, edge_id: int) -> int:
        """The local fixpoint operator ``H`` evaluated at one edge."""
        trussness = self._tau
        values = sorted(
            (
                min(trussness[first], trussness[second])
                for first, second in self._triangles_of(edge_id)
            ),
            reverse=True,
        )
        best = 2
        for index, value in enumerate(values):
            feasible = min(value, index + 3)
            if feasible > best:
                best = feasible
        return best

    def _settle(self, dirty, delta: UpdateDelta) -> None:
        """Run the decreasing worklist until the labelling is a fixpoint."""
        queue: deque[int] = deque(dirty)
        queued = set(queue)
        trussness = self._tau
        edge_key_of = self.core.edge_key
        while queue:
            edge_id = queue.popleft()
            queued.discard(edge_id)
            current = trussness.get(edge_id)
            if current is None:  # edge deleted after being enqueued
                continue
            settled = self._local_trussness(edge_id)
            if settled >= current:
                continue
            key = edge_key_of(edge_id)
            delta.note_trussness(key, current)
            self._set_trussness(edge_id, key, settled)
            # A triangle supports a neighbour at level l only while both
            # other edges carry >= l; the drop from `current` to `settled`
            # can only invalidate neighbours between those levels.
            for first, second in self._triangles_of(edge_id):
                for other in (first, second):
                    if settled < trussness[other] <= current and other not in queued:
                        queue.append(other)
                        queued.add(other)

    def _refresh_vertex_trussness(self, delta: UpdateDelta) -> None:
        """Recompute vertex trussness around everything the batch touched."""
        graph, core = self.graph, self.core
        trussness = self._tau
        index_of = core.table.index_of
        stale = set(delta.touched_vertices)
        stale.update(delta.changed_edge_vertices())
        for key in delta.truss_changed:
            stale.update(key)
        for vertex in stale:
            if not graph.has_vertex(vertex):  # pragma: no cover - edge-only edits
                self._vertex_trussness.pop(vertex, None)
                continue
            best = 2
            for edge_id in core.neighbor_row(index_of(vertex)).values():
                value = trussness[edge_id]
                if value > best:
                    best = value
            self._vertex_trussness[vertex] = best
