"""Incremental truss maintenance: exact supports and trussness under edits.

:class:`IncrementalTrussState` keeps the edge-support map and the full truss
decomposition of a mutable :class:`~repro.graph.social_network.SocialNetwork`
up to date while an :class:`~repro.dynamic.updates.UpdateBatch` is applied,
touching only the region an edit can actually reach instead of re-peeling the
whole graph.

The algorithm rests on the local fixpoint characterisation of trussness (the
truss analogue of the h-index characterisation of core numbers): ``tau(f)``
is the unique greatest labelling ``L`` with

    ``L(f) = 2 + max{ k : f lies in >= k triangles whose other two edges g, h
    both satisfy min(L(g), L(h)) >= k + 2 }``

Starting from any *upper bound* of the new trussness and repeatedly applying
the operator above (monotonically decreasing, via a worklist that re-examines
an edge only when a supporting triangle drops below its level) converges to
the exact decomposition of the mutated graph:

* **deletions** only lower trussness, so the old values are already a valid
  upper bound — the worklist starts from the edges whose support changed;
* **insertions** raise the trussness of an existing edge by at most one, and
  only for edges triangle-connected to the new edge through edges that could
  sit in the same k-truss.  A level-labelled BFS over triangles finds that
  candidate set; its estimates are bumped by one (the new edge starts at
  ``support + 2``) and the worklist settles them back down to exact values.

Every quantity is exact after :meth:`IncrementalTrussState.apply` returns —
the equivalence test-suite checks bit-for-bit equality against a fresh
:func:`~repro.truss.decomposition.truss_decomposition` of the mutated graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.dynamic.updates import DEFAULT_INSERT_PROBABILITY, INSERT, UpdateBatch
from repro.graph.social_network import SocialNetwork, VertexId
from repro.truss.decomposition import TrussDecomposition, truss_decomposition
from repro.truss.support import edge_key, edge_support


@dataclass
class UpdateDelta:
    """What one applied batch actually changed (consumed by index refresh).

    ``deleted_edges`` records the removed edges *with* their directional
    probabilities so the affected-region analysis can still traverse them
    (paths through a deleted edge existed in the pre-update graph).
    """

    inserted_edges: list = field(default_factory=list)  # (u, v) pairs
    deleted_edges: list = field(default_factory=list)  # (u, v, p_uv, p_vu)
    new_vertices: list = field(default_factory=list)  # creation order
    touched_vertices: set = field(default_factory=set)  # endpoints of all edits
    support_changed: set = field(default_factory=set)  # surviving edges only
    truss_changed: set = field(default_factory=set)  # surviving edges only
    _support_baseline: dict = field(default_factory=dict)
    _truss_baseline: dict = field(default_factory=dict)

    def note_support(self, key: frozenset, old: int) -> None:
        self._support_baseline.setdefault(key, old)

    def note_trussness(self, key: frozenset, old: int) -> None:
        self._truss_baseline.setdefault(key, old)

    def finalize(self, supports: dict, trussness: dict) -> None:
        """Reduce the per-edit notes to net changes over the whole batch."""
        self.support_changed = {
            key
            for key, old in self._support_baseline.items()
            if key in supports and supports[key] != old
        }
        self.truss_changed = {
            key
            for key, old in self._truss_baseline.items()
            if key in trussness and trussness[key] != old
        }

    def changed_edge_vertices(self) -> set:
        """Endpoints of every support- or trussness-changed surviving edge."""
        vertices: set = set()
        for key in self.support_changed | self.truss_changed:
            vertices.update(key)
        return vertices


class IncrementalTrussState:
    """Exact supports + trussness of a graph, maintained under edge edits.

    Parameters
    ----------
    graph:
        The live network; :meth:`apply` mutates it.
    supports:
        Optional pre-computed support map to adopt **by reference** — passing
        ``PrecomputedData.global_edge_support`` keeps the offline data in sync
        with every edit for free.
    decomposition:
        Optional decomposition to seed the trussness map from; computed fresh
        (one full peeling) when omitted.
    """

    def __init__(
        self,
        graph: SocialNetwork,
        supports: Optional[dict] = None,
        decomposition: Optional[TrussDecomposition] = None,
    ) -> None:
        self.graph = graph
        self.supports = supports if supports is not None else edge_support(graph)
        if decomposition is None:
            decomposition = truss_decomposition(graph)
        self.trussness = dict(decomposition.edge_trussness)
        self._vertex_trussness = dict(decomposition.vertex_trussness)

    # ------------------------------------------------------------------ #
    # read access
    # ------------------------------------------------------------------ #
    def trussness_of_vertex(self, vertex: VertexId) -> int:
        """Trussness of ``vertex`` in the current graph (2 when isolated)."""
        return self._vertex_trussness.get(vertex, 2)

    def decomposition(self) -> TrussDecomposition:
        """Return the current decomposition as a plain read-only object."""
        return TrussDecomposition(
            edge_trussness=dict(self.trussness),
            vertex_trussness=dict(self._vertex_trussness),
        )

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply(self, batch: UpdateBatch) -> UpdateDelta:
        """Apply ``batch`` to the graph, maintaining supports and trussness.

        The batch is validated up front (all-or-nothing); each edit then
        updates supports locally and settles trussness to the exact values
        for the intermediate graph before the next edit is applied.
        """
        batch.validate_against(self.graph)
        delta = UpdateDelta()
        for update in batch:
            if update.op == INSERT:
                self._apply_insert(update, delta)
            else:
                self._apply_delete(update, delta)
        delta.finalize(self.supports, self.trussness)
        self._refresh_vertex_trussness(delta)
        return delta

    # ------------------------------------------------------------------ #
    # single edits
    # ------------------------------------------------------------------ #
    def _apply_delete(self, update, delta: UpdateDelta) -> None:
        u, v = update.u, update.v
        graph = self.graph
        p_uv = graph.probability(u, v)
        p_vu = graph.probability(v, u)
        common = graph.neighbor_set(u) & graph.neighbor_set(v)
        graph.remove_edge(u, v)

        key = edge_key(u, v)
        delta.note_support(key, self.supports.get(key, 0))
        delta.note_trussness(key, self.trussness.get(key, 2))
        self.supports.pop(key, None)
        self.trussness.pop(key, None)
        delta.deleted_edges.append((u, v, p_uv, p_vu))
        delta.touched_vertices.update((u, v))

        dirty: list[frozenset] = []
        for w in common:
            for other in (edge_key(u, w), edge_key(v, w)):
                delta.note_support(other, self.supports[other])
                self.supports[other] -= 1
                dirty.append(other)
        self._settle(dirty, delta)

    def _apply_insert(self, update, delta: UpdateDelta) -> None:
        u, v = update.u, update.v
        graph = self.graph
        for vertex, keywords in ((u, update.keywords_u), (v, update.keywords_v)):
            if not graph.has_vertex(vertex):
                graph.add_vertex(vertex, keywords)
                delta.new_vertices.append(vertex)
                self._vertex_trussness[vertex] = 2
        p_uv = DEFAULT_INSERT_PROBABILITY if update.p_uv is None else update.p_uv
        graph.add_edge(u, v, p_uv, update.p_vu)

        key = edge_key(u, v)
        common = graph.neighbor_set(u) & graph.neighbor_set(v)
        self.supports[key] = len(common)
        delta.inserted_edges.append((u, v))
        delta.touched_vertices.update((u, v))
        for w in common:
            for other in (edge_key(u, w), edge_key(v, w)):
                delta.note_support(other, self.supports[other])
                self.supports[other] += 1

        candidates = self._insertion_candidates(key)
        for candidate in candidates:
            if candidate == key:
                continue
            delta.note_trussness(candidate, self.trussness[candidate])
            self.trussness[candidate] += 1
        self.trussness[key] = self.supports[key] + 2
        self._settle(candidates, delta)

    # ------------------------------------------------------------------ #
    # the affected-region machinery
    # ------------------------------------------------------------------ #
    def _triangles_of(self, key: frozenset):
        """Yield ``(other_edge_1, other_edge_2)`` for each triangle of ``key``."""
        a, b = tuple(key)
        graph = self.graph
        common = graph.neighbor_set(a) & graph.neighbor_set(b)
        for w in common:
            yield edge_key(a, w), edge_key(b, w)

    def _insertion_candidates(self, new_edge: frozenset) -> list[frozenset]:
        """Edges whose trussness may rise after inserting ``new_edge``.

        Level-labelled BFS over triangles: a label ``l(f)`` bounds the largest
        ``k`` for which ``f`` could sit in the same (new) k-truss as the
        inserted edge, using ``tau + 1`` as the per-edge upper bound (a single
        insertion raises trussness by at most one).  An edge is a candidate
        when its label reaches ``tau + 1``; edges below that only *relay* the
        traversal.  The set provably contains every edge whose trussness
        rises: inside the new maximal k-truss, the riser is triangle-connected
        to the inserted edge through edges of trussness >= k, each of which
        carries a label >= k here.
        """
        start_level = self.supports[new_edge] + 2
        levels: dict[frozenset, int] = {new_edge: start_level}
        queue: deque[frozenset] = deque((new_edge,))
        candidates: list[frozenset] = [new_edge]
        trussness = self.trussness

        def upper_bound(edge: frozenset) -> int:
            if edge == new_edge:
                return start_level
            return trussness[edge] + 1

        while queue:
            edge = queue.popleft()
            level = levels[edge]
            for first, second in self._triangles_of(edge):
                bound_first = upper_bound(first)
                bound_second = upper_bound(second)
                reachable = min(level, bound_first, bound_second)
                if reachable < 3:
                    continue
                for other, bound in ((first, bound_first), (second, bound_second)):
                    if reachable > levels.get(other, 2):
                        if (
                            other != new_edge
                            and levels.get(other, 2) < bound <= reachable
                        ):
                            candidates.append(other)
                        levels[other] = reachable
                        queue.append(other)
        return candidates

    def _local_trussness(self, key: frozenset) -> int:
        """The local fixpoint operator ``H`` evaluated at one edge."""
        trussness = self.trussness
        values = sorted(
            (
                min(trussness[first], trussness[second])
                for first, second in self._triangles_of(key)
            ),
            reverse=True,
        )
        best = 2
        for index, value in enumerate(values):
            feasible = min(value, index + 3)
            if feasible > best:
                best = feasible
        return best

    def _settle(self, dirty, delta: UpdateDelta) -> None:
        """Run the decreasing worklist until the labelling is a fixpoint."""
        queue: deque[frozenset] = deque(dirty)
        queued = set(queue)
        trussness = self.trussness
        while queue:
            key = queue.popleft()
            queued.discard(key)
            current = trussness.get(key)
            if current is None:  # edge deleted after being enqueued
                continue
            settled = self._local_trussness(key)
            if settled >= current:
                continue
            delta.note_trussness(key, current)
            trussness[key] = settled
            # A triangle supports a neighbour at level l only while both
            # other edges carry >= l; the drop from `current` to `settled`
            # can only invalidate neighbours between those levels.
            for first, second in self._triangles_of(key):
                for other in (first, second):
                    if settled < trussness[other] <= current and other not in queued:
                        queue.append(other)
                        queued.add(other)

    def _refresh_vertex_trussness(self, delta: UpdateDelta) -> None:
        """Recompute vertex trussness around everything the batch touched."""
        graph = self.graph
        trussness = self.trussness
        stale = set(delta.touched_vertices)
        stale.update(delta.changed_edge_vertices())
        for key in delta.truss_changed:
            stale.update(key)
        for vertex in stale:
            if not graph.has_vertex(vertex):  # pragma: no cover - edge-only edits
                self._vertex_trussness.pop(vertex, None)
                continue
            best = 2
            for neighbour in graph.neighbors(vertex):
                value = trussness[edge_key(vertex, neighbour)]
                if value > best:
                    best = value
            self._vertex_trussness[vertex] = best
