"""Affected-region analysis and incremental index refresh.

After :class:`~repro.dynamic.truss_maintenance.IncrementalTrussState` has
applied a batch, this module decides *which centre vertices* need their
pre-computed records (Algorithm 2 aggregates) rebuilt, refreshes exactly
those, and reports the damage ratio the engine uses for its
incremental-vs-rebuild decision.

A centre ``v`` is affected when any ingredient of its record can differ on
the mutated graph:

* its ``r``-hop ball gained or lost members — ``v`` lies within ``r_max``
  hops of a modified endpoint (in the pre- or post-update graph, so deleted
  edges still count as traversable);
* the support of an edge inside the ball changed, or the trussness of an
  incident edge changed — those edges' endpoints are seeds too;
* its influence propagation can cross a modified edge: a path from the seed
  community through edge ``(a, b)`` with product >= theta only exists when
  some seed reaches ``a`` with product >= theta, so the reverse max-product
  Dijkstra from the modified endpoints (cut off at the smallest pre-selected
  threshold) finds every seed vertex whose propagation could change, and the
  centres within ``r_max`` hops of them inherit the taint.

Everything outside that set keeps records that are bit-for-bit identical to
what a fresh pre-computation would produce — the equivalence property suite
enforces this.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dynamic.truss_maintenance import IncrementalTrussState, UpdateDelta
from repro.graph.core import AdjacencyCore, GraphCore
from repro.graph.social_network import SocialNetwork, VertexId
from repro.index.precompute import PrecomputedData, compute_vertex_record
from repro.keywords.bitvector import BitVector

#: Default fraction of vertices past which patching loses to re-building.
DEFAULT_DAMAGE_THRESHOLD = 0.35


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`~repro.core.engine.InfluentialCommunityEngine.apply_updates` call did."""

    mode: str  # "incremental" | "rebuild" | "noop"
    insertions: int
    deletions: int
    new_vertices: int
    affected_vertices: int
    total_vertices: int
    support_changed_edges: int
    truss_changed_edges: int
    damage_ratio: float
    damage_threshold: float
    epoch: int
    elapsed_seconds: float
    #: Fast backend only: the snapshot overlay's dirt ratio after the batch
    #: (0.0 on the reference backend and on rebuilds, which reset the base).
    overlay_dirt_ratio: float = 0.0
    #: Whether the incremental path folded the overlay back into a pure CSR
    #: because the dirt ratio crossed ``EngineConfig.compact_dirt_ratio``.
    compacted: bool = False

    @property
    def applied_mode(self) -> str:
        """The operator-facing mode: ``patch`` / ``compact`` / ``rebuild`` / ``noop``.

        ``mode`` keeps the historical incremental-vs-rebuild contract;
        this view splits the incremental path by whether the snapshot
        overlay was compacted afterwards (the ``repro update`` CLI and the
        dynamic benchmark report it).
        """
        if self.mode != "incremental":
            return self.mode
        return "compact" if self.compacted else "patch"

    def as_dict(self) -> dict:
        """Flat dict for reports, the CLI and the dynamic-update benchmark."""
        return {
            "mode": self.mode,
            "applied_mode": self.applied_mode,
            "insertions": self.insertions,
            "deletions": self.deletions,
            "new_vertices": self.new_vertices,
            "affected_vertices": self.affected_vertices,
            "total_vertices": self.total_vertices,
            "support_changed_edges": self.support_changed_edges,
            "truss_changed_edges": self.truss_changed_edges,
            "damage_ratio": round(self.damage_ratio, 4),
            "damage_threshold": self.damage_threshold,
            "overlay_dirt_ratio": round(self.overlay_dirt_ratio, 4),
            "compacted": self.compacted,
            "epoch": self.epoch,
            "elapsed_seconds": self.elapsed_seconds,
        }


def _union_rows(core: GraphCore, delta: UpdateDelta):
    """Neighbour iteration over the post-update core plus deleted edges.

    Returns ``(neighbors, probability)`` callables over dense vertex ints.
    Traversing the union of the pre- and post-update edge sets
    over-approximates reachability in both graphs at once, which keeps the
    taint analysis one-pass and sound.
    """
    index_of = core.table.index_of
    extra: dict[int, dict[int, float]] = {}
    for u_id, v_id, p_uv, p_vu in delta.deleted_edges:
        u, v = index_of(u_id), index_of(v_id)
        extra.setdefault(u, {})[v] = p_uv
        extra.setdefault(v, {})[u] = p_vu

    def neighbors(vertex: int):
        row = core.neighbor_row(vertex)
        yield from row
        for neighbour in extra.get(vertex, ()):
            if neighbour not in row:
                yield neighbour

    def probability(source: int, target: int) -> float:
        if target in core.neighbor_row(source):
            return core.probability(source, target)
        return extra[source][target]

    return neighbors, probability


def reverse_influence_set(
    graph: SocialNetwork,
    delta: UpdateDelta,
    sources: Iterable[VertexId],
    threshold: float,
    core: Optional[GraphCore] = None,
) -> set:
    """Vertices that reach a modified endpoint with max-product >= threshold.

    Runs a reverse multi-source max-product Dijkstra over the union of the
    pre- and post-update edge sets: the step from ``vertex`` back to
    ``neighbour`` multiplies by ``p(neighbour, vertex)`` — the probability the
    neighbour activates the current vertex — because influence flows forward
    along the path being reconstructed.  With ``threshold <= 0`` propagation
    is unbounded, so every vertex is returned (the caller falls back to a
    rebuild).

    The traversal runs over int edge ids through the
    :class:`~repro.graph.core.GraphCore` protocol; ``core`` is whatever view
    the engine maintains (an :class:`~repro.graph.core.AdjacencyCore` view is
    built on the fly when omitted).
    """
    sources = [s for s in sources if graph.has_vertex(s)]
    if threshold <= 0.0:
        return set(graph.vertices())
    if core is None:
        core = AdjacencyCore(graph)
    index_of = core.table.index_of
    id_of = core.table.id_of
    neighbors, probability = _union_rows(core, delta)
    best: dict[int, float] = {}
    counter = 0
    heap: list[tuple[float, int, int]] = []
    for source in sources:
        heap.append((-1.0, counter, index_of(source)))
        counter += 1
    heapq.heapify(heap)
    while heap:
        negative, _, vertex = heapq.heappop(heap)
        if vertex in best:
            continue
        product = -negative
        best[vertex] = product
        for neighbour in neighbors(vertex):
            if neighbour in best:
                continue
            backwards = product * probability(neighbour, vertex)
            if backwards < threshold:
                continue
            heapq.heappush(heap, (-backwards, counter, neighbour))
            counter += 1
    return {id_of(vertex) for vertex in best}


def affected_centers(
    graph: SocialNetwork,
    delta: UpdateDelta,
    max_radius: int,
    theta_min: float,
    core: Optional[GraphCore] = None,
) -> set:
    """Centre vertices whose pre-computed records may differ after ``delta``.

    ``core`` is the engine's live :class:`~repro.graph.core.GraphCore` (kept
    in lockstep with ``graph`` by the truss state); when omitted a fresh
    reference view is built, which yields the same set.
    """
    if core is None:
        core = AdjacencyCore(graph)
    modified = set(delta.touched_vertices)
    seeds = reverse_influence_set(graph, delta, modified, theta_min, core=core)
    seeds.update(modified)
    seeds.update(delta.changed_edge_vertices())
    seeds = {vertex for vertex in seeds if graph.has_vertex(vertex)}

    index_of = core.table.index_of
    id_of = core.table.id_of
    neighbors, _ = _union_rows(core, delta)
    affected = {index_of(vertex) for vertex in seeds}
    frontier = list(affected)
    for _ in range(max_radius):
        next_frontier: list[int] = []
        for vertex in frontier:
            for neighbour in neighbors(vertex):
                if neighbour not in affected:
                    affected.add(neighbour)
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return {
        vertex_id
        for vertex_id in (id_of(vertex) for vertex in affected)
        if graph.has_vertex(vertex_id)
    }


def refresh_vertex_aggregates(
    graph: SocialNetwork,
    data: PrecomputedData,
    vertices: Iterable[VertexId],
    truss_state: IncrementalTrussState,
) -> int:
    """Recompute the records of ``vertices`` in place; return how many.

    Uses the same :func:`compute_vertex_record` code path as the full offline
    pass, against the (incrementally maintained) global supports in ``data``
    and the trussness held by ``truss_state``.
    """
    cache: dict[VertexId, BitVector] = {}

    def keyword_vector_of(vertex: VertexId) -> BitVector:
        vector = cache.get(vertex)
        if vector is None:
            vector = BitVector.from_keywords(graph.keywords(vertex), data.num_bits)
            cache[vertex] = vector
        return vector

    refreshed = 0
    for vertex in vertices:
        data.vertex_aggregates[vertex] = compute_vertex_record(
            graph,
            vertex,
            max_radius=data.max_radius,
            thresholds=data.thresholds,
            num_bits=data.num_bits,
            edge_supports=data.global_edge_support,
            keyword_vector_of=keyword_vector_of,
            center_trussness=truss_state.trussness_of_vertex(vertex),
        )
        refreshed += 1
    return refreshed
