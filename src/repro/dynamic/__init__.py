"""Dynamic-graph subsystem: edit scripts, incremental truss & index maintenance.

Social networks mutate continuously; this package keeps a built
:class:`~repro.core.engine.InfluentialCommunityEngine` correct under edge
insertions and deletions without paying a full offline-phase rebuild:

* :mod:`repro.dynamic.updates` — :class:`EdgeUpdate` / :class:`UpdateBatch`
  edit scripts (JSON round trip, random script generation);
* :mod:`repro.dynamic.truss_maintenance` — exact incremental edge-support and
  trussness maintenance via a local fixpoint worklist;
* :mod:`repro.dynamic.maintenance` — affected-centre analysis, in-place
  refresh of the pre-computed records, and the :class:`UpdateReport`
  returned by ``engine.apply_updates``.
"""

from repro.dynamic.maintenance import (
    DEFAULT_DAMAGE_THRESHOLD,
    UpdateReport,
    affected_centers,
    refresh_vertex_aggregates,
    reverse_influence_set,
)
from repro.dynamic.truss_maintenance import IncrementalTrussState, UpdateDelta
from repro.dynamic.updates import EdgeUpdate, UpdateBatch, random_update_batch

__all__ = [
    "DEFAULT_DAMAGE_THRESHOLD",
    "EdgeUpdate",
    "IncrementalTrussState",
    "UpdateBatch",
    "UpdateDelta",
    "UpdateReport",
    "affected_centers",
    "random_update_batch",
    "refresh_vertex_aggregates",
    "reverse_influence_set",
]
