"""Structured service errors: stable wire codes for every library exception.

Remote clients cannot catch Python exception classes, so the service maps
each :mod:`repro.exceptions` type to a *stable string code* that is part of
the versioned API contract (``docs/service.md`` carries the full table).
The mapping is most-derived-class-first: an exception is coded by the most
specific entry found along its MRO, so new subclasses inherit a sensible
code until they get their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro import exceptions as _exceptions
from repro.exceptions import (
    DatasetError,
    DynamicUpdateError,
    EdgeNotFoundError,
    GraphError,
    IndexError_,
    InvalidProbabilityError,
    MalformedRequestError,
    QueryParameterError,
    ReproError,
    ScenarioError,
    SerializationError,
    ServiceRequestError,
    ServingError,
    SessionExistsError,
    StoreFormatError,
    UnknownSessionError,
    UnsupportedSchemaVersionError,
    VertexNotFoundError,
)

#: Code reported for exceptions that are not :class:`ReproError` at all —
#: the service never leaks raw tracebacks over the wire.
ERROR_CODE_INTERNAL = "INTERNAL"

#: Stable wire code per exception class.  Append-only: codes are API.
ERROR_CODES: dict[type, str] = {
    ReproError: "REPRO_ERROR",
    GraphError: "GRAPH_ERROR",
    VertexNotFoundError: "VERTEX_NOT_FOUND",
    EdgeNotFoundError: "EDGE_NOT_FOUND",
    InvalidProbabilityError: "INVALID_PROBABILITY",
    QueryParameterError: "QUERY_PARAMETER_INVALID",
    IndexError_: "INDEX_STATE_INVALID",
    DatasetError: "DATASET_ERROR",
    SerializationError: "SERIALIZATION_ERROR",
    StoreFormatError: "STORE_FORMAT_INVALID",
    ServingError: "SERVING_ERROR",
    DynamicUpdateError: "DYNAMIC_UPDATE_INVALID",
    ScenarioError: "SCENARIO_INVALID",
    ServiceRequestError: "SERVICE_REQUEST_INVALID",
    MalformedRequestError: "MALFORMED_REQUEST",
    UnsupportedSchemaVersionError: "UNSUPPORTED_SCHEMA_VERSION",
    UnknownSessionError: "UNKNOWN_SESSION",
    SessionExistsError: "SESSION_EXISTS",
}

#: HTTP status the gateway answers with, per code.  Anything absent is 400
#: (the request was understood but rejected); INTERNAL alone is 500.
_HTTP_STATUS: dict[str, int] = {
    "VERTEX_NOT_FOUND": 404,
    "EDGE_NOT_FOUND": 404,
    "UNKNOWN_SESSION": 404,
    "DATASET_ERROR": 404,
    "SESSION_EXISTS": 409,
    "QUERY_PARAMETER_INVALID": 422,
    "DYNAMIC_UPDATE_INVALID": 422,
    ERROR_CODE_INTERNAL: 500,
}


def error_code_for(error) -> str:
    """Return the stable wire code of an exception instance *or* class.

    The most-derived class with an entry in :data:`ERROR_CODES` wins, so a
    future subclass without its own code inherits its parent's.
    """
    klass = error if isinstance(error, type) else type(error)
    for base in klass.__mro__:
        code = ERROR_CODES.get(base)
        if code is not None:
            return code
    return ERROR_CODE_INTERNAL


def http_status_for(code: str) -> int:
    """HTTP status the gateway uses for a wire error code."""
    return _HTTP_STATUS.get(code, 400)


@dataclass(frozen=True)
class ServiceError:
    """A structured wire error: stable ``code``, human ``message``, detail.

    This is a value object, not an exception — it is what travels inside an
    :class:`~repro.service.schema.ErrorResponse` envelope.
    """

    code: str
    message: str
    detail: Mapping = field(default_factory=dict)

    @property
    def http_status(self) -> int:
        """The HTTP status the gateway answers with for this error."""
        return http_status_for(self.code)

    def to_json(self) -> dict:
        """JSON-compatible representation of the error."""
        payload: dict = {"code": self.code, "message": self.message}
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ServiceError":
        """Parse an error from its :meth:`to_json` form."""
        if not isinstance(payload, dict):
            raise MalformedRequestError(
                f"error payload must be an object, got {type(payload).__name__}"
            )
        try:
            code = payload["code"]
            message = payload["message"]
        except KeyError as exc:
            raise MalformedRequestError(
                f"error payload is missing field {exc.args[0]!r}"
            ) from exc
        detail = payload.get("detail", {})
        unknown = set(payload) - {"code", "message", "detail"}
        if unknown:
            raise MalformedRequestError(
                f"error payload carries unknown fields {sorted(unknown)}"
            )
        return cls(code=str(code), message=str(message), detail=dict(detail))


def service_error_from_exception(error: BaseException) -> ServiceError:
    """Build the :class:`ServiceError` describing a caught exception.

    :class:`ReproError` subclasses surface their message; anything else is
    reported as ``INTERNAL`` with only the exception type name (the message
    could contain paths or repr noise a remote caller has no business seeing).
    """
    code = error_code_for(error)
    if isinstance(error, ReproError):
        return ServiceError(code=code, message=str(error))
    return ServiceError(
        code=ERROR_CODE_INTERNAL,
        message=f"internal error ({type(error).__name__})",
    )


def all_exception_codes() -> dict[str, str]:
    """Map every public exception name in :mod:`repro.exceptions` to its code.

    Used by the error-path test-suite and the docs table generator: if a new
    exception is added without a stable code, both fail loudly.
    """
    mapping: dict[str, str] = {}
    for name in dir(_exceptions):
        obj = getattr(_exceptions, name)
        if isinstance(obj, type) and issubclass(obj, ReproError):
            mapping[name] = error_code_for(obj)
    return mapping
