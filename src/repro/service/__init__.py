"""Versioned service API: the library's single public serving boundary.

This package consolidates every consumer-facing surface — CLI, batch
serving, workload runner, remote clients — behind one stable, serializable
API:

* :mod:`repro.service.schema` — the wire schema: frozen request/response
  dataclasses with strict ``to_json()`` / ``from_json()`` codecs and a
  ``schema_version`` field.
* :mod:`repro.service.errors` — structured :class:`ServiceError` codes
  mapping every :mod:`repro.exceptions` type to a stable wire code.
* :mod:`repro.service.facade` — :class:`CommunityService`, which owns
  engine lifecycle behind *named sessions* so one process can host many
  graphs/indexes.
* :mod:`repro.service.gateway` — a stdlib HTTP gateway exposing the
  facade as ``POST /v1/{build,topl,dtopl,update,batch}`` plus
  ``GET /v1/{sessions,health}``, with NDJSON streaming for batches.
* :mod:`repro.service.sharded` — :class:`ShardedCommunityService`, the
  same facade surface answered by a pool of replicated shard workers
  with an exact (bit-identical) merge.
* :mod:`repro.service.agateway` — :class:`AsyncServiceGateway`, an
  asyncio front door with keep-alive, request coalescing and bounded-queue
  backpressure (``429`` + ``Retry-After``).

See ``docs/service.md`` for the endpoint reference and examples.
"""

from repro.service.errors import (
    ERROR_CODE_INTERNAL,
    ERROR_CODES,
    ServiceError,
    error_code_for,
    http_status_for,
    service_error_from_exception,
)
from repro.service.agateway import AsyncServiceGateway, run_async_gateway
from repro.service.facade import CommunityService, SessionInfo
from repro.service.gateway import ServiceGateway, run_gateway
from repro.service.sharded import ShardedCommunityService
from repro.service.schema import (
    SCHEMA_VERSION,
    BatchRequest,
    BatchResponse,
    BuildRequest,
    BuildResponse,
    DToplRequest,
    DToplResponse,
    ErrorResponse,
    HealthResponse,
    SessionsResponse,
    ToplRequest,
    ToplResponse,
    UpdateRequest,
    UpdateResponse,
    decode_request,
    query_from_wire,
    query_to_wire,
)

__all__ = [
    "SCHEMA_VERSION",
    "ServiceError",
    "ERROR_CODES",
    "ERROR_CODE_INTERNAL",
    "error_code_for",
    "http_status_for",
    "service_error_from_exception",
    "CommunityService",
    "SessionInfo",
    "ShardedCommunityService",
    "ServiceGateway",
    "AsyncServiceGateway",
    "run_gateway",
    "run_async_gateway",
    "BuildRequest",
    "BuildResponse",
    "ToplRequest",
    "ToplResponse",
    "DToplRequest",
    "DToplResponse",
    "UpdateRequest",
    "UpdateResponse",
    "BatchRequest",
    "BatchResponse",
    "SessionsResponse",
    "HealthResponse",
    "ErrorResponse",
    "decode_request",
    "query_to_wire",
    "query_from_wire",
]
