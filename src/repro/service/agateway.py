"""Async front door: keep-alive, coalescing and backpressure, stdlib only.

:class:`AsyncServiceGateway` serves the same ``/v1`` surface as the threaded
:class:`~repro.service.gateway.ServiceGateway`, but from a single
``asyncio`` event loop ahead of the (sharded or plain) facade:

* **keep-alive** — HTTP/1.1 with ``Content-Length`` responses; one
  connection carries any number of requests (``Connection: close`` only on
  the NDJSON streaming path, which the closed connection delimits).
* **coalescing** — identical in-flight *read* requests (``topl``, ``dtopl``,
  buffered ``batch``) execute once; every waiter gets the same response
  document.  Mutations (``build``, ``update``) are never coalesced.
* **backpressure** — at most ``max_pending`` requests execute concurrently;
  beyond that the gateway answers ``429`` with a ``Retry-After`` header
  instead of piling up unbounded threads.
* the facade's blocking work runs on the default executor, so the loop
  itself never blocks and slow queries do not starve health probes.

The class mirrors ``ServiceGateway``'s shape — context manager for tests,
``serve_forever`` for the CLI — so callers can swap front doors freely::

    with AsyncServiceGateway(service, port=0) as gateway:
        urllib.request.urlopen(gateway.url + "/v1/health")
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional
from urllib.parse import urlparse

from repro.exceptions import MalformedRequestError, ServingError
from repro.service.errors import ServiceError, service_error_from_exception
from repro.service.facade import CommunityService
from repro.service.gateway import MAX_BODY_BYTES, _POST_ENDPOINTS
from repro.service.schema import (
    SCHEMA_VERSION,
    BatchRequest,
    ErrorResponse,
    result_to_wire,
)

#: Endpoints whose identical in-flight requests may share one execution.
#: Reads only: coalescing a mutation would acknowledge work it did once.
_COALESCABLE = ("topl", "dtopl", "batch")

#: Header block size limit (requests are JSON-over-POST; headers are small).
_MAX_HEADER_BYTES = 64 * 1024

#: Seconds a rejected client is told to back off before retrying.
RETRY_AFTER_SECONDS = 1


class AsyncServiceGateway:
    """One event loop, many connections, bounded concurrent work.

    Parameters
    ----------
    service:
        Any :class:`CommunityService` (the sharded facade included).
    max_pending:
        Concurrent-execution bound; further requests get ``429``.
        Coalesced waiters do not count — they hold no executor slot.
    coalesce:
        Disable to measure the cost of duplicate execution (benchmarks).
    """

    def __init__(
        self,
        service: Optional[CommunityService] = None,
        host: str = "127.0.0.1",
        port: int = 8345,
        max_pending: int = 64,
        coalesce: bool = True,
        verbose: bool = False,
    ) -> None:
        self.service = service if service is not None else CommunityService()
        self._host = host
        self._requested_port = port
        self.max_pending = max_pending
        self.coalesce = coalesce
        self.verbose = verbose
        self._port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_event: Optional[asyncio.Event] = None
        # Loop-confined state (the single event-loop thread touches these).
        self._pending = 0
        self._inflight: dict = {}
        self._stats = {
            "requests": 0,
            "coalesced": 0,
            "rejected": 0,
            "streamed": 0,
            "connections": 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        if self._port is None:
            raise ServingError("gateway is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def statistics(self) -> dict:
        """Front-door counters (requests, coalesced, rejected, streams)."""
        return dict(self._stats)

    def start(self) -> "AsyncServiceGateway":
        """Run the event loop on a daemon thread; returns once bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-agateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover - hang guard
            raise ServingError("async gateway failed to start within 30s")
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        return self

    def shutdown(self) -> None:
        """Stop serving and release the port."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def serve_forever(self) -> None:
        """Foreground serving (the CLI path): start, then block until ^C."""
        self.start()
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=0.5)
        finally:
            self.shutdown()

    def __enter__(self) -> "AsyncServiceGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            self._loop = None
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_client,
                self._host,
                self._requested_port,
                limit=_MAX_HEADER_BYTES,
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()
        # Cancel still-open keep-alive connection handlers so the loop
        # closes without "task was destroyed but it is pending" noise.
        pending = [
            task for task in asyncio.all_tasks() if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader, writer) -> None:
        self._stats["connections"] += 1
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # the client went away or sent garbage framing: drop quietly
        except asyncio.CancelledError:
            pass  # gateway shutdown cancelled this keep-alive connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader) -> Optional[dict]:
        """Parse one HTTP request; ``None`` on a clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean close between keep-alive requests
            raise
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(partial=head, expected=None)
        method, target, version = parts
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if 0 < length <= MAX_BODY_BYTES:
            body = await reader.readexactly(length)
        elif length > MAX_BODY_BYTES:
            # Oversized: do not read it; the dispatcher answers 413 + close.
            pass
        return {
            "method": method,
            "target": target,
            "version": version,
            "headers": headers,
            "body": body,
            "content_length": length,
        }

    def _wants_close(self, request: dict) -> bool:
        connection = request["headers"].get("connection", "").lower()
        if "close" in connection:
            return True
        return request["version"] == "HTTP/1.0" and "keep-alive" not in connection

    # ------------------------------------------------------------------ #
    # responses
    # ------------------------------------------------------------------ #
    async def _send_json(
        self, writer, status: int, document: dict, extra_headers=(), close=False
    ) -> bool:
        body = json.dumps(document).encode("utf-8")
        reason = {200: "OK", 404: "Not Found", 429: "Too Many Requests"}.get(
            status, "Error"
        )
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        head.extend(extra_headers)
        if close:
            head.append("Connection: close")
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False
        return not close

    async def _send_error(
        self, writer, status: int, code: str, message: str, extra_headers=(), close=False
    ) -> bool:
        document = ErrorResponse(error=ServiceError(code=code, message=message))
        return await self._send_json(
            writer, status, document.to_json(), extra_headers=extra_headers, close=close
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: dict, writer) -> bool:
        self._stats["requests"] += 1
        keep = not self._wants_close(request)
        method = request["method"]
        parsed = urlparse(request["target"])
        path = parsed.path.rstrip("/")

        if request["content_length"] > MAX_BODY_BYTES:
            # The oversized body was never read off the socket: must close.
            await self._send_error(
                writer,
                413,
                "MALFORMED_REQUEST",
                f"request body of {request['content_length']} bytes exceeds "
                f"the {MAX_BODY_BYTES} limit",
                close=True,
            )
            return False

        if method == "GET":
            loop = asyncio.get_running_loop()
            if path == "/v1/health":
                document = await loop.run_in_executor(
                    None, lambda: self.service.health().to_json()
                )
                return await self._send_json(writer, 200, document, close=not keep) and keep
            if path == "/v1/sessions":
                document = await loop.run_in_executor(
                    None, lambda: self.service.sessions().to_json()
                )
                return await self._send_json(writer, 200, document, close=not keep) and keep
            await self._send_error(
                writer, 404, "NOT_FOUND", f"no route for GET {path}", close=not keep
            )
            return keep

        if method != "POST":
            await self._send_error(
                writer,
                405,
                "METHOD_NOT_ALLOWED",
                f"{method} is not supported; use GET or POST",
                close=not keep,
            )
            return keep

        if not path.startswith("/v1/") or path[len("/v1/"):] not in _POST_ENDPOINTS:
            await self._send_error(
                writer, 404, "NOT_FOUND", f"no route for POST {path}", close=not keep
            )
            return keep
        endpoint = path[len("/v1/"):]

        try:
            payload = self._decode_body(request["body"])
        except MalformedRequestError as error:
            failure = ErrorResponse(error=service_error_from_exception(error))
            return (
                await self._send_json(
                    writer, failure.error.http_status, failure.to_json(), close=not keep
                )
                and keep
            )

        if endpoint == "batch" and self._wants_stream(request, parsed.query):
            await self._stream_batch(writer, payload)
            return False  # the closed connection delimits the stream

        if self._pending >= self.max_pending:
            self._stats["rejected"] += 1
            await self._send_error(
                writer,
                429,
                "OVERLOADED",
                f"{self._pending} requests already executing "
                f"(max_pending={self.max_pending}); retry shortly",
                extra_headers=(f"Retry-After: {RETRY_AFTER_SECONDS}",),
                close=not keep,
            )
            return keep

        document, failure = await self._execute(endpoint, payload)
        status = failure.error.http_status if failure is not None else 200
        return await self._send_json(writer, status, document, close=not keep) and keep

    def _decode_body(self, body: bytes) -> dict:
        if not body:
            raise MalformedRequestError("request body is required")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MalformedRequestError(
                f"request body is not valid JSON: {exc}"
            ) from exc

    def _wants_stream(self, request: dict, query_string: str) -> bool:
        if "stream=1" in (query_string or "").split("&"):
            return True
        return "application/x-ndjson" in request["headers"].get("accept", "")

    async def _execute(self, endpoint: str, payload):
        """Run one facade call off-loop, coalescing identical in-flight reads."""
        loop = asyncio.get_running_loop()
        key = None
        if self.coalesce and endpoint in _COALESCABLE:
            try:
                key = (endpoint, json.dumps(payload, sort_keys=True))
            except (TypeError, ValueError):  # unhashable/unserialisable: skip
                key = None
        if key is not None and key in self._inflight:
            self._stats["coalesced"] += 1
            return await asyncio.shield(self._inflight[key])

        future = loop.create_future()
        if key is not None:
            self._inflight[key] = future
        self._pending += 1
        try:
            outcome = await loop.run_in_executor(
                None, self.service.handle_json, endpoint, payload
            )
            future.set_result(outcome)
        except BaseException as error:  # pragma: no cover - executor failure
            future.set_exception(error)
            raise
        finally:
            self._pending -= 1
            if key is not None:
                self._inflight.pop(key, None)
        return outcome

    # ------------------------------------------------------------------ #
    # NDJSON streaming
    # ------------------------------------------------------------------ #
    async def _stream_batch(self, writer, payload) -> None:
        import time

        loop = asyncio.get_running_loop()
        try:
            request = BatchRequest.from_json(payload)
            if request.pruning is not None:
                raise MalformedRequestError(
                    "pruning overrides are not supported on the streaming batch path"
                )
            engine = self.service.engine(request.session)
        except Exception as error:
            failure = ErrorResponse(error=service_error_from_exception(error))
            await self._send_json(
                writer, failure.error.http_status, failure.to_json(), close=True
            )
            return

        self._stats["streamed"] += 1
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1"))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return

        async def write_line(document: dict) -> bool:
            try:
                writer.write(json.dumps(document).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                return False
            return True

        started = time.perf_counter()
        answered = 0
        try:
            for position, query in enumerate(request.queries):
                result = await loop.run_in_executor(
                    None, self.service.answer_one, request.session, query
                )
                line = {
                    "kind": "result",
                    "position": position,
                    "result": result_to_wire(result),
                }
                if not await write_line(line):
                    return  # client gone mid-stream: drop quietly
                answered += 1
            await write_line(
                {
                    "kind": "summary",
                    "schema_version": SCHEMA_VERSION,
                    "api_version": self.service.api_version,
                    "session": request.session,
                    "epoch": engine.epoch,
                    "total_queries": len(request.queries),
                    "answered": answered,
                    "elapsed_seconds": time.perf_counter() - started,
                    "cache_statistics": self.service.serving(
                        request.session
                    ).cache_statistics(),
                }
            )
        except Exception as error:
            failure = ErrorResponse(error=service_error_from_exception(error))
            line = failure.to_json()
            line["kind"] = "error"
            await write_line(line)


def run_async_gateway(
    service: Optional[CommunityService] = None,
    host: str = "127.0.0.1",
    port: int = 8345,
    max_pending: int = 64,
) -> None:
    """Run the async front door in the foreground (the sharded CLI path)."""
    gateway = AsyncServiceGateway(service, host=host, port=port, max_pending=max_pending)
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        gateway.shutdown()
