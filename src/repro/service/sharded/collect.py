"""Shard-local candidate collection.

A :class:`ShardTopLCollector` is a :class:`~repro.query.topl.TopLProcessor`
restricted to the candidate centres its shard owns: the index traversal,
entry pruning, extraction and scoring are all the stock algorithm — only
non-owned leaf vertices are skipped before any community-level work.

Why the shard-local run stays mergeable into an exact global answer:

* Keyword/support pruning is per-candidate and identical on every shard.
* Score pruning compares bounds against the *local* ``sigma_L``, which is
  never above what the global run would hold at the same traversal point
  (the local result set is built from a subset of the global candidate
  stream) — so everything a shard score-prunes is a provable global reject.
* The shard's final local result set keeps, for every candidate it dropped,
  ``L`` distinct communities at least as good; those survivors are what the
  merge re-ranks (:mod:`repro.service.sharded.merge`).
"""

from __future__ import annotations

from repro.query.params import TopLQuery
from repro.query.results import QueryStatistics, TopLResult
from repro.query.topl import TopLProcessor
from repro.service.sharded.plan import ShardPlan


class ShardTopLCollector(TopLProcessor):
    """A TopL processor that answers only the centres its shard owns."""

    def __init__(self, *args, plan: ShardPlan, shard: int, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.plan = plan
        self.shard = shard

    def _process_leaf_vertex(self, vertex, *args, **kwargs):
        if self.plan.owner(vertex) != self.shard:
            return None
        return super()._process_leaf_vertex(vertex, *args, **kwargs)


def collect_shard_candidates(
    collector: ShardTopLCollector, query: TopLQuery
) -> TopLResult:
    """One shard's local top-``L`` candidate set for ``query``.

    DTopL candidate collection is the same call with the expanded
    ``query.candidate_query()`` (capacity ``n * L``); the diversified greedy
    runs centrally on the exactly-merged candidates.
    """
    return collector.query(query)


def statistics_to_wire(statistics: QueryStatistics) -> dict:
    """Pipe-friendly form of one shard's work counters."""
    return statistics.as_dict()


def statistics_from_wire(payload: dict) -> QueryStatistics:
    """Rebuild shard statistics shipped over the worker pipe."""
    fields = dict(payload)
    fields.pop("total_pruned", None)  # derived property, not a field
    return QueryStatistics(**fields)
