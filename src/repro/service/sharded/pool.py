"""Replicated shard workers behind one pool object.

Topology: ``num_shards * replicas`` long-lived worker processes, each
holding a full engine rebuilt from the router's serialization payload (the
same document the spawn-mode batch workers use, so the offline phase never
re-runs).  Reads for a shard round-robin over its live replicas; updates
broadcast to every replica so graph epochs advance in lockstep with the
router's authoritative engine.

Failure semantics: a replica whose pipe breaks is marked dead and its
request retried on the next replica of the same shard — a query only fails
once *every* replica of some shard is gone.  :meth:`ShardWorkerPool.restart_dead`
respawns dead replicas from a fresh payload of the router engine (which has
every broadcast update applied), so a revived replica is consistent by
construction; a supervisor thread can call it periodically.

``mode="inline"`` swaps the processes for in-process execution against the
router engine — the identical collect/merge code path minus the transport,
which is what the equivalence suite and 1-core boxes use.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import UpdateBatch
from repro.exceptions import ServingError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.index.serialization import precomputed_from_dict, precomputed_to_dict
from repro.index.tree import build_tree_index
from repro.query.params import TopLQuery
from repro.serve.cache import maybe_cache
from repro.service.sharded.collect import (
    ShardTopLCollector,
    statistics_from_wire,
    statistics_to_wire,
)
from repro.service.sharded.plan import ShardPlan

#: Propagation-cache capacity of each worker (epoch-tagged, worker-local).
WORKER_PROPAGATION_CACHE_CAPACITY = 4096

#: Seconds a replica gets to answer a health probe before counting as dead.
HEALTH_TIMEOUT_SECONDS = 10.0


class _ReplicaLost(Exception):
    """Internal: the replica's pipe broke mid-request (triggers failover)."""


def _worker_payload(engine: InfluentialCommunityEngine, shard: int, num_shards: int) -> dict:
    """Everything a worker needs to rebuild the shard engine, pickled over the pipe.

    A store-backed router engine with no updates since its store generation
    ships only the store *path* — every replica mmaps the same packed file
    (sharing physical pages) instead of unpickling a serialized graph and
    index, so replica start-up is flat in the graph size.
    """
    payload = {
        "config": dataclasses.asdict(engine.config),
        "epoch": engine.epoch,
        "shard": shard,
        "num_shards": num_shards,
    }
    attachment = engine.store_attachment()
    if attachment is not None:
        payload["store_path"] = attachment["store_path"]
        return payload
    payload.update(
        {
            "graph": graph_to_dict(engine.graph),
            "precomputed": precomputed_to_dict(engine.index.precomputed),
            "fanout": engine.index.fanout,
            "leaf_capacity": engine.index.leaf_capacity,
        }
    )
    return payload


def _engine_from_payload(payload: dict) -> InfluentialCommunityEngine:
    """Rebuild the engine without re-running the offline phase."""
    if payload.get("store_path") is not None:
        engine = InfluentialCommunityEngine.from_store(
            payload["store_path"], config=EngineConfig(**payload["config"])
        )
        engine.epoch = payload["epoch"]
        return engine
    graph = graph_from_dict(payload["graph"])
    index = build_tree_index(
        graph,
        precomputed=precomputed_from_dict(payload["precomputed"]),
        fanout=payload["fanout"],
        leaf_capacity=payload["leaf_capacity"],
    )
    engine = InfluentialCommunityEngine(graph, index, EngineConfig(**payload["config"]))
    engine.epoch = payload["epoch"]
    return engine


def _make_collector(
    engine: InfluentialCommunityEngine, plan: ShardPlan, shard: int, cache=None
) -> ShardTopLCollector:
    return ShardTopLCollector(
        engine.graph,
        index=engine.index,
        propagation_cache=cache,
        cache_epoch=engine.epoch,
        backend=engine.config.backend,
        frozen=engine.frozen_graph(),
        kernel_tier=engine.config.kernel_tier,
        plan=plan,
        shard=shard,
    )


def _serve_op(engine: InfluentialCommunityEngine, plan: ShardPlan, shard: int,
              cache, op: str, data: dict):
    """Execute one pool op against a (worker or inline) engine."""
    if op == "collect":
        query: TopLQuery = data["query"]
        collector = _make_collector(engine, plan, shard, cache=cache)
        result = collector.query(query)
        return {
            "communities": result.communities,
            "statistics": statistics_to_wire(result.statistics),
        }
    if op == "update":
        engine.apply_updates(
            UpdateBatch.from_json(data["edits"]),
            damage_threshold=data["damage_threshold"],
            rebuild=data["rebuild"],
        )
        return {"epoch": engine.epoch}
    if op == "health":
        return {
            "shard": shard,
            "epoch": engine.epoch,
            "num_vertices": engine.graph.num_vertices(),
            "num_edges": engine.graph.num_edges(),
        }
    raise ServingError(f"unknown shard worker op {op!r}")


def _shard_worker_main(conn, payload: dict) -> None:
    """Entry point of one replica process: rebuild, then serve the pipe."""
    engine = _engine_from_payload(payload)
    plan = ShardPlan(payload["num_shards"])
    shard = payload["shard"]
    cache = maybe_cache(WORKER_PROPAGATION_CACHE_CAPACITY)
    while True:
        try:
            op, data = conn.recv()
        except (EOFError, OSError):  # router gone: exit quietly
            return
        if op == "stop":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            result = _serve_op(engine, plan, shard, cache, op, data)
            message = ("ok", result)
        except Exception as error:
            message = ("error", f"{type(error).__name__}: {error}")
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return


class _ProcessReplica:
    """Router-side handle of one worker process (pipe + liveness)."""

    def __init__(self, context, payload: dict, shard: int, number: int) -> None:
        self.shard = shard
        self.number = number
        self.alive = True
        self._lock = threading.Lock()
        parent_conn, child_conn = context.Pipe(duplex=True)
        self._conn = parent_conn
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_conn, payload),
            name=f"repro-shard-{shard}-r{number}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    def request(self, op: str, data: Optional[dict] = None, timeout: Optional[float] = None):
        with self._lock:
            if not self.alive:
                raise _ReplicaLost(f"shard {self.shard} replica {self.number} is down")
            try:
                self._conn.send((op, data or {}))
                if timeout is not None and not self._conn.poll(timeout):
                    raise OSError("replica response timed out")
                status, result = self._conn.recv()
            except (BrokenPipeError, EOFError, OSError) as error:
                self.alive = False
                raise _ReplicaLost(
                    f"shard {self.shard} replica {self.number} lost: {error}"
                ) from error
        if status == "error":
            raise ServingError(result)
        return result

    def stop(self) -> None:
        with self._lock:
            if self.alive:
                try:
                    self._conn.send(("stop", {}))
                    self._conn.poll(2.0)
                except (BrokenPipeError, OSError):
                    pass
                self.alive = False
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(timeout=5)
        self._conn.close()

    def kill(self) -> None:
        """Hard-kill the worker (the degradation tests' failure injector).

        ``alive`` is deliberately left ``True`` — a real crash is not
        announced either.  The next routed request detects the broken pipe
        and fails over; :meth:`ShardWorkerPool.restart_dead` detects the dead
        process directly.
        """
        self._process.terminate()
        self._process.join(timeout=5)

    def healthy(self) -> bool:
        return self.alive and self._process.is_alive()


class _InlineReplica:
    """In-process stand-in for a worker: same ops, no transport.

    Serves straight off the router engine, so updates are visible without a
    broadcast and ``request`` is just a function call.  ``alive`` is still
    honoured — inline degradation tests flip it to exercise failover.
    """

    def __init__(self, engine: InfluentialCommunityEngine, plan: ShardPlan,
                 shard: int, number: int) -> None:
        self.shard = shard
        self.number = number
        self.alive = True
        self._engine = engine
        self._plan = plan
        self._cache = maybe_cache(WORKER_PROPAGATION_CACHE_CAPACITY)
        self.pid = None

    def healthy(self) -> bool:
        return self.alive

    def request(self, op: str, data: Optional[dict] = None, timeout: Optional[float] = None):
        if not self.alive:
            raise _ReplicaLost(f"shard {self.shard} replica {self.number} is down")
        if op == "update":
            # The router engine already applied the update; replaying it
            # here would double-apply.  Report the (shared) epoch instead.
            return {"epoch": self._engine.epoch}
        return _serve_op(
            self._engine, self._plan, self.shard, self._cache, op, data or {}
        )

    def stop(self) -> None:
        self.alive = False

    def kill(self) -> None:
        self.alive = False


class ShardWorkerPool:
    """``num_shards`` shards x ``replicas`` workers with exact fan-out reads.

    Parameters
    ----------
    engine:
        The router's authoritative engine; workers rebuild from its payload
        and restarts re-derive it, so the router never serves ahead of what
        it can restore.
    num_shards, replicas:
        Pool shape.  Reads use one replica per shard (round-robin); updates
        broadcast to all of them.
    mode:
        ``"process"`` spawns worker processes; ``"inline"`` runs the same
        collect path in-process (equivalence tests, single-core boxes).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it.
    supervise_interval:
        When set, a daemon thread calls :meth:`restart_dead` this often
        (seconds).  Left off in tests so failover is observable.
    """

    def __init__(
        self,
        engine: InfluentialCommunityEngine,
        num_shards: int,
        replicas: int = 1,
        mode: str = "process",
        start_method: Optional[str] = None,
        supervise_interval: Optional[float] = None,
    ) -> None:
        if replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {replicas}")
        if mode not in ("process", "inline"):
            raise ServingError(f"mode must be 'process' or 'inline', got {mode!r}")
        self.plan = ShardPlan(num_shards)
        self.replicas = replicas
        self.mode = mode
        self._engine = engine
        self._closed = False
        self.restarts = 0
        self._route_lock = threading.Lock()
        self._rr = [0] * num_shards
        if mode == "process":
            available = multiprocessing.get_all_start_methods()
            if start_method is None:
                start_method = "fork" if "fork" in available else "spawn"
            self._context = multiprocessing.get_context(start_method)
        else:
            self._context = None
        self._replicas: list[list] = [
            [self._spawn(shard, number) for number in range(replicas)]
            for shard in self.plan.shards()
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="repro-shard-router"
        )
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop = threading.Event()
        if supervise_interval is not None:
            self._supervisor = threading.Thread(
                target=self._supervise,
                args=(supervise_interval,),
                name="repro-shard-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # ------------------------------------------------------------------ #
    # replica lifecycle
    # ------------------------------------------------------------------ #
    def _spawn(self, shard: int, number: int):
        if self.mode == "inline":
            return _InlineReplica(self._engine, self.plan, shard, number)
        payload = _worker_payload(self._engine, shard, self.plan.num_shards)
        return _ProcessReplica(self._context, payload, shard, number)

    def restart_dead(self) -> int:
        """Respawn every dead replica from the router engine's current state."""
        if self._closed:
            return 0
        respawned = 0
        for shard, replicas in enumerate(self._replicas):
            for number, replica in enumerate(replicas):
                if not replica.healthy():
                    replica.alive = False  # routed requests stop trying it
                    replicas[number] = self._spawn(shard, number)
                    respawned += 1
        self.restarts += respawned
        return respawned

    def _supervise(self, interval: float) -> None:  # pragma: no cover - timing
        while not self._supervisor_stop.wait(interval):
            try:
                self.restart_dead()
            except Exception:
                pass  # never let supervision kill the router

    def kill_replica(self, shard: int, number: int = 0) -> None:
        """Hard-kill one replica (failure injection for degradation tests)."""
        self._replicas[shard][number].kill()

    def stop(self) -> None:
        """Stop supervision, workers and the fan-out executor."""
        self._closed = True
        self._supervisor_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5)
        for replicas in self._replicas:
            for replica in replicas:
                replica.stop()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _next_replica(self, shard: int):
        with self._route_lock:
            replicas = self._replicas[shard]
            for _ in range(len(replicas)):
                replica = replicas[self._rr[shard] % len(replicas)]
                self._rr[shard] += 1
                if replica.alive:
                    return replica
        return None

    def _request_shard(self, shard: int, op: str, data: dict,
                       timeout: Optional[float] = None):
        for _ in range(len(self._replicas[shard])):
            replica = self._next_replica(shard)
            if replica is None:
                break
            try:
                return replica.request(op, data, timeout=timeout)
            except _ReplicaLost:
                continue  # failover to the next live replica
        raise ServingError(
            f"all {len(self._replicas[shard])} replica(s) of shard {shard} are "
            "unavailable (restart supervision will respawn them from the "
            "router engine)"
        )

    # ------------------------------------------------------------------ #
    # pool ops
    # ------------------------------------------------------------------ #
    def collect(self, query: TopLQuery) -> list[dict]:
        """Fan one candidate-collection query over every shard.

        Returns one ``{"communities": tuple, "statistics": QueryStatistics}``
        per shard, shard order.  Shard requests run concurrently (the workers
        are separate processes; the router threads only block on pipes).
        """
        futures = [
            self._executor.submit(self._request_shard, shard, "collect", {"query": query})
            for shard in self.plan.shards()
        ]
        collected = []
        for future in futures:
            result = future.result()
            collected.append(
                {
                    "communities": tuple(result["communities"]),
                    "statistics": statistics_from_wire(result["statistics"]),
                }
            )
        return collected

    def broadcast_update(self, edits_document: dict, damage_threshold, rebuild) -> dict:
        """Apply one update batch on every live replica (epochs stay lockstep).

        Dead replicas are skipped — their restart payload is generated from
        the router engine *after* it applied the update, so a respawned
        replica can never miss one.
        """
        data = {
            "edits": edits_document,
            "damage_threshold": damage_threshold,
            "rebuild": rebuild,
        }
        epochs: dict[str, int] = {}
        for shard, replicas in enumerate(self._replicas):
            for replica in replicas:
                if not replica.alive:
                    continue
                try:
                    result = replica.request("update", data)
                except _ReplicaLost:
                    continue
                epochs[f"{shard}.{replica.number}"] = result["epoch"]
        return epochs

    def health(self) -> dict:
        """Topology + per-replica liveness (what ``/v1/health`` reports)."""
        shards = []
        for shard, replicas in enumerate(self._replicas):
            entries = []
            for replica in replicas:
                entry = {"replica": replica.number, "alive": bool(replica.alive)}
                if replica.alive:
                    try:
                        probe = replica.request(
                            "health", timeout=HEALTH_TIMEOUT_SECONDS
                        )
                        entry["epoch"] = probe["epoch"]
                    except (_ReplicaLost, ServingError):
                        entry["alive"] = False
                if replica.pid is not None:
                    entry["pid"] = replica.pid
                entries.append(entry)
            shards.append({"shard": shard, "replicas": entries})
        return {
            "num_shards": self.plan.num_shards,
            "replicas": self.replicas,
            "mode": self.mode,
            "restarts": self.restarts,
            "shards": shards,
        }

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
