"""Exact merge of per-shard candidate sets.

The single-process TopL answer is exactly what you get by replaying every
keyword/support-surviving candidate centre *in index traversal order*
through a fresh :class:`~repro.query.topl._ResultSet` — score pruning only
ever drops candidates whose ``consider()`` would have been a no-op, and the
max-heap's counter tie-breaking makes the surviving visit order independent
of which entries score pruning removed.

That replay is the merge: the router computes the **canonical visit order**
(the traversal with keyword/support entry pruning only — deterministic given
the index, the query and the pruning config, and results-independent because
score bounds never enter it), each shard returns its final local result set,
and the merged answer is the shards' candidates replayed through one result
set in canonical-position order.  Vertex-set deduplication and score-tie
handling inside ``_ResultSet`` then reproduce the single-process outcome
bit-for-bit, including which centre a community is attributed to (the
canonically-first surviving extractor, exactly as in one process).

DTopL composes on top: merge the shards' ``n * L`` candidate sets at full
capacity, then run the stock lazy greedy centrally — selection order,
``increment_evaluations`` and the diversity score all reproduce exactly.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.exceptions import ServingError
from repro.index.tree import TreeIndex
from repro.keywords.bitvector import BitVector
from repro.pruning.index_rules import index_keyword_prune, index_support_prune
from repro.pruning.rules import trussness_prune
from repro.pruning.stats import PruningConfig
from repro.query.params import TopLQuery
from repro.query.results import QueryStatistics, SeedCommunity
from repro.query.topl import _ResultSet


def canonical_visit_order(
    index: TreeIndex, query: TopLQuery, pruning: PruningConfig
) -> dict:
    """Map each reachable candidate centre to its canonical visit position.

    Mirrors the :class:`~repro.query.topl.TopLProcessor` traversal — same
    heap keys, same counter tie-breaking, same keyword/support entry rules —
    but applies **no score pruning and no early termination**, so the order
    is a fixed point every shard's (score-pruned) traversal embeds into.
    Leaf-level pruning is irrelevant here: extra positions for centres no
    shard returns are harmless, while every returned centre is guaranteed a
    position (shards never prune less than this walk).
    """
    index.validate_radius(query.radius)
    positions: dict = {}
    root = index.root
    if root is None:
        return positions
    query_bv = BitVector.from_keywords(query.keywords, index.precomputed.num_bits)

    heap: list[tuple[float, int, object]] = []
    counter = 0
    heapq.heappush(heap, (-float("inf"), counter, root))
    counter += 1
    while heap:
        _, _, node = heapq.heappop(heap)
        if node.is_leaf:
            for vertex in node.vertices:
                positions.setdefault(vertex, len(positions))
            continue
        for child in node.children:
            aggregates = child.aggregates
            if pruning.keyword and index_keyword_prune(
                aggregates.bitvector(query.radius), query_bv
            ):
                continue
            if pruning.support and (
                index_support_prune(aggregates.support_bound(query.radius), query.k)
                or trussness_prune(aggregates.trussness_bound, query.k)
            ):
                continue
            child_key = child.aggregates.score_bound_for(query.radius, query.theta)
            heapq.heappush(heap, (-child_key, counter, child))
            counter += 1
    return positions


def merge_shard_candidates(
    shard_candidates: Iterable[Sequence[SeedCommunity]],
    positions: dict,
    capacity: int,
) -> tuple:
    """Replay the shards' candidates in canonical order through one result set.

    ``positions`` comes from :func:`canonical_visit_order` on the router's
    (authoritative) index; a centre without a position means a worker served
    from a different graph epoch, which the update broadcast is supposed to
    make impossible — fail loudly rather than merge inconsistently.
    """
    ranked: list[tuple[int, SeedCommunity]] = []
    for candidates in shard_candidates:
        for community in candidates:
            position = positions.get(community.center)
            if position is None:
                raise ServingError(
                    f"shard returned centre {community.center!r} that is not in "
                    "the canonical visit order; worker state is out of sync "
                    "with the router (missed update broadcast?)"
                )
            ranked.append((position, community))
    ranked.sort(key=lambda item: item[0])
    results = _ResultSet(capacity)
    for _, community in ranked:
        results.consider(community)
    return results.communities()


def aggregate_statistics(per_shard: Iterable[QueryStatistics]) -> QueryStatistics:
    """Total work across shards (counters sum; wall-clock is set by the caller).

    The aggregate intentionally differs from a single-process run — shards
    each walk the index and prune against local thresholds, so sharded
    ``visited_*``/``pruned_*`` counts are a statement about distributed work,
    not a replay of the sequential trace.  Equivalence comparisons therefore
    strip ``statistics`` (everything a client consumes as the *answer* is
    bit-identical).
    """
    total = QueryStatistics()
    for statistics in per_shard:
        total.visited_index_nodes += statistics.visited_index_nodes
        total.visited_leaf_vertices += statistics.visited_leaf_vertices
        total.candidates_examined += statistics.candidates_examined
        total.communities_scored += statistics.communities_scored
        total.pruned_by_keyword += statistics.pruned_by_keyword
        total.pruned_by_support += statistics.pruned_by_support
        total.pruned_by_radius += statistics.pruned_by_radius
        total.pruned_by_score += statistics.pruned_by_score
        total.pruned_index_entries += statistics.pruned_index_entries
        total.heap_terminated_early = (
            total.heap_terminated_early or statistics.heap_terminated_early
        )
        total.propagation_cache_hits += statistics.propagation_cache_hits
        total.propagation_cache_misses += statistics.propagation_cache_misses
    return total
