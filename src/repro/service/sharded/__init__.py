"""Sharded, replicated serving tier over the `GraphCore` seam.

One graph is partitioned across several worker processes — each shard an
engine of its own behind a :class:`~repro.service.sharded.pool.ShardWorkerPool`
replica set — and TopL/DTopL queries fan out over the shards with an **exact
merge**: per-shard candidate communities are re-ranked in the canonical index
traversal order under the same pruning rules, so the sharded answer is
bit-identical to the single-process one (gated by the equivalence suite and
the serving bench recorder).

Entry points:

* :class:`ShardedCommunityService` — drop-in
  :class:`~repro.service.facade.CommunityService` whose sessions execute on a
  shard pool (``mode="process"``) or in-process (``mode="inline"``, the exact
  same merge path without worker processes — what the equivalence tests use).
* :class:`ShardPlan` — the deterministic centre-to-shard assignment.
* :class:`ShardWorkerPool` — replicated worker processes with round-robin
  read routing, update broadcast, and health/restart supervision.

See ``docs/service.md`` ("Sharded deployment") for topology and failure
semantics.
"""

from repro.service.sharded.facade import ShardedCommunityService
from repro.service.sharded.merge import canonical_visit_order, merge_shard_candidates
from repro.service.sharded.plan import ShardPlan
from repro.service.sharded.pool import ShardWorkerPool

__all__ = [
    "ShardPlan",
    "ShardWorkerPool",
    "ShardedCommunityService",
    "canonical_visit_order",
    "merge_shard_candidates",
]
