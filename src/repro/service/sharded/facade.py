"""`ShardedCommunityService`: the facade surface, executed on a shard pool.

A drop-in :class:`~repro.service.facade.CommunityService`: same endpoints,
same wire schema, same session registry — but each session's queries fan out
over a :class:`~repro.service.sharded.pool.ShardWorkerPool` and come back
through the exact merge (:mod:`repro.service.sharded.merge`).  The router
keeps the authoritative engine per session (built by the inherited
``build``/``adopt``), which provides the canonical visit order, answers
update requests, and is the restart source for dead replicas.

Answer-relevant response fields are bit-identical to the unsharded facade;
``statistics`` counters report distributed work and legitimately differ
(see :func:`~repro.service.sharded.merge.aggregate_statistics`).

Request-level pruning overrides bypass the pool and run on the router engine
directly — the same "correctness first, fan-out where it is sound" rule the
unsharded facade applies to its caches.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.dynamic.updates import UpdateBatch
from repro.query.dtopl import _diversity_of, greedy_select_diversified
from repro.query.params import DTopLQuery
from repro.query.results import DTopLResult, TopLResult
from repro.serve.batch import BatchStatistics, ServingConfig
from repro.serve.cache import query_cache_key
from repro.service.facade import CommunityService, _Session
from repro.service.schema import BatchRequest, BatchResponse, result_to_wire
from repro.service.sharded.merge import (
    aggregate_statistics,
    canonical_visit_order,
    merge_shard_candidates,
)
from repro.service.sharded.pool import ShardWorkerPool


class ShardedCommunityService(CommunityService):
    """Sessions in, typed responses out — answered by a replicated shard pool.

    Parameters
    ----------
    num_shards, replicas:
        Pool shape applied to every session this service hosts.
    mode:
        ``"process"`` (worker processes) or ``"inline"`` (same merge path,
        no processes — equivalence tests and single-core boxes).
    start_method:
        ``multiprocessing`` start method for worker processes.
    supervise_interval:
        Seconds between automatic dead-replica restarts; ``None`` leaves
        restarts to explicit :meth:`restart_dead` calls.
    serving_config:
        Per-session serving defaults (the result cache still fronts the
        pool: merged answers are cached under the same epoch-tagged keys).
    """

    def __init__(
        self,
        num_shards: int = 2,
        replicas: int = 1,
        mode: str = "process",
        start_method: Optional[str] = None,
        supervise_interval: Optional[float] = None,
        serving_config: Optional[ServingConfig] = None,
    ) -> None:
        super().__init__(serving_config=serving_config)
        self.num_shards = num_shards
        self.replicas = replicas
        self.mode = mode
        self._start_method = start_method
        self._supervise_interval = supervise_interval
        self._pools: dict[str, ShardWorkerPool] = {}

    # ------------------------------------------------------------------ #
    # session lifecycle (pool attach/detach)
    # ------------------------------------------------------------------ #
    def adopt(self, engine, session: str = "default", replace: bool = False,
              serving_config: Optional[ServingConfig] = None) -> str:
        name = super().adopt(
            engine, session=session, replace=replace, serving_config=serving_config
        )
        with self._registry_lock:
            stale = self._pools.pop(name, None)
        if stale is not None:
            stale.stop()
        pool = ShardWorkerPool(
            engine,
            self.num_shards,
            replicas=self.replicas,
            mode=self.mode,
            start_method=self._start_method,
            supervise_interval=self._supervise_interval,
        )
        with self._registry_lock:
            self._pools[name] = pool
        return name

    def drop_session(self, session: str) -> None:
        super().drop_session(session)
        with self._registry_lock:
            pool = self._pools.pop(session, None)
        if pool is not None:
            pool.stop()

    def pool(self, session: str = "default") -> ShardWorkerPool:
        """The shard pool behind ``session`` (diagnostics, failure injection)."""
        self._session(session)  # raises UnknownSessionError for bad names
        with self._registry_lock:
            return self._pools[session]

    def close(self) -> None:
        """Stop every session's pool (the gateway calls this on shutdown)."""
        with self._registry_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.stop()

    def __enter__(self) -> "ShardedCommunityService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the sharded answer path
    # ------------------------------------------------------------------ #
    def _answer(self, session: _Session, query, pruning: Optional[dict]):
        if pruning is not None:
            # Override path: router engine, exactly like the base facade.
            return super()._answer(session, query, pruning)
        result, _ = self._sharded_answer(session, query)
        return result

    def answer_one(self, session: str, query):
        state = self._session(session)
        with state.lock:
            result, _ = self._sharded_answer(state, query)
            state.requests_served += 1
            return result

    def _sharded_answer(self, session: _Session, query):
        """Answer one query on the pool; returns ``(result, was_cached)``.

        The session's epoch-tagged result cache fronts the fan-out: merged
        answers are exact, so caching them is as sound as on the unsharded
        path, and an update broadcast bumps the epoch out from under every
        stale entry.
        """
        serving = session.serving
        epoch = session.engine.epoch
        key = query_cache_key(query, serving.pruning, epoch)
        if serving.result_cache is not None:
            cached = serving.result_cache.get(key)
            if cached is not None:
                return cached, True
        started = time.perf_counter()
        if isinstance(query, DTopLQuery):
            result = self._execute_dtopl(session, query)
        else:
            result = self._execute_topl(session, query)
        result.statistics.elapsed_seconds = time.perf_counter() - started
        if serving.result_cache is not None:
            serving.result_cache.put(key, result)
        return result, False

    def _collect_and_merge(self, session: _Session, collect_query):
        pool = self._pools[session.name]
        positions = canonical_visit_order(
            session.engine.index, collect_query, session.serving.pruning
        )
        collected = pool.collect(collect_query)
        merged = merge_shard_candidates(
            (entry["communities"] for entry in collected),
            positions,
            collect_query.top_l,
        )
        statistics = aggregate_statistics(entry["statistics"] for entry in collected)
        return merged, statistics

    def _execute_topl(self, session: _Session, query) -> TopLResult:
        merged, statistics = self._collect_and_merge(session, query)
        return TopLResult(communities=merged, statistics=statistics)

    def _execute_dtopl(self, session: _Session, query: DTopLQuery) -> DTopLResult:
        # Exactly the single-process decomposition: collect the top n*L
        # candidates (here: merged exactly across shards), then run the
        # stock lazy greedy centrally.
        candidates, statistics = self._collect_and_merge(
            session, query.candidate_query()
        )
        selection, increments = greedy_select_diversified(
            list(candidates), query.top_l
        )
        return DTopLResult(
            communities=tuple(selection),
            diversity_score=_diversity_of(selection),
            statistics=statistics,
            increment_evaluations=increments,
            candidates_considered=len(candidates),
        )

    # ------------------------------------------------------------------ #
    # endpoints that need pool awareness
    # ------------------------------------------------------------------ #
    def update(self, request):
        """Apply the edit script on the router, then broadcast to the pool.

        Both happen under the session lock, so no query can fan out between
        the router's epoch bump and the replicas': workers always serve the
        epoch the canonical order was computed on.
        """
        session = self._session(request.session)
        with session.lock:
            response = super().update(request)
            self._pools[session.name].broadcast_update(
                UpdateBatch(request.edits).to_json(),
                request.damage_threshold,
                request.rebuild,
            )
        return response

    def batch(self, request: BatchRequest) -> BatchResponse:
        """A mixed batch, each query fanned over the shards.

        ``request.workers`` is ignored on this path — parallelism comes from
        the pool shape, not a per-request pool (the response's ``statistics``
        say ``mode: "sharded"`` and carry the shard count as ``workers``).
        """
        if request.pruning is not None:
            return super().batch(request)
        session = self._session(request.session)
        started = time.perf_counter()
        with session.lock:
            statistics = BatchStatistics(
                total_queries=len(request.queries),
                workers=self.num_shards,
                mode="sharded",
            )
            results = []
            for query in request.queries:
                result, was_cached = self._sharded_answer(session, query)
                results.append(result)
                if was_cached:
                    statistics.result_cache_hits += 1
                else:
                    statistics.executed += 1
                    statistics.result_cache_misses += 1
                    self._absorb(statistics, result)
            statistics.elapsed_seconds = time.perf_counter() - started
            session.requests_served += 1
            return BatchResponse(
                session=session.name,
                epoch=session.engine.epoch,
                elapsed_seconds=statistics.elapsed_seconds,
                results=tuple(result_to_wire(result) for result in results),
                statistics=statistics.as_dict(),
                cache_statistics=session.serving.cache_statistics(),
            )

    @staticmethod
    def _absorb(statistics: BatchStatistics, result) -> None:
        statistics.propagation_cache_hits += result.statistics.propagation_cache_hits
        statistics.propagation_cache_misses += (
            result.statistics.propagation_cache_misses
        )

    def health(self):
        """Base health document, each session annotated with its pool topology."""
        response = super().health()
        with self._registry_lock:
            pools = dict(self._pools)
        sessions = tuple(
            {**entry, "shards": pools[entry["name"]].health()}
            if entry["name"] in pools
            else entry
            for entry in response.sessions
        )
        return type(response)(status=response.status, sessions=sessions)
