"""Deterministic centre-to-shard assignment.

A :class:`ShardPlan` decides which shard *owns* each candidate centre.  The
assignment hashes the vertex id itself (``crc32`` of its ``repr``), so it is

* stable across processes and Python runs (no ``PYTHONHASHSEED`` dependence,
  which rules out the built-in ``hash``),
* independent of graph mutations — dynamic updates never migrate centres
  between shards, and
* computable by the router and every worker without coordination.

Shards own **centres**, not subgraphs: every worker holds the full graph and
index, and a shard answers exactly the candidate centres it owns.  Seed
communities routinely span ownership boundaries (an ``r``-hop ball around a
centre does not respect any partition), so partitioning the *candidate
enumeration* is the decomposition that keeps the merged answer exact; see
``docs/service.md`` for the full argument.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.exceptions import ServingError

#: Upper bound on the shard count — far above any sensible deployment, this
#: only guards against typos like ``--shards 1000``.
MAX_SHARDS = 64


@dataclass(frozen=True)
class ShardPlan:
    """Ownership function mapping candidate centres onto ``num_shards`` shards."""

    num_shards: int

    def __post_init__(self) -> None:
        if not 1 <= self.num_shards <= MAX_SHARDS:
            raise ServingError(
                f"num_shards must be in [1, {MAX_SHARDS}], got {self.num_shards}"
            )

    def owner(self, vertex) -> int:
        """The shard that owns candidate centre ``vertex``."""
        return zlib.crc32(repr(vertex).encode("utf-8")) % self.num_shards

    def shards(self) -> range:
        """All shard ids, in order."""
        return range(self.num_shards)

    def partition_sizes(self, vertices) -> list[int]:
        """Owned-centre counts per shard (diagnostics and balance tests)."""
        sizes = [0] * self.num_shards
        for vertex in vertices:
            sizes[self.owner(vertex)] += 1
        return sizes
