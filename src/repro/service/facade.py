"""`CommunityService`: engine lifecycle behind named sessions.

The facade is the single in-process entry point of the service API.  It
owns a registry of *sessions* — each one a built
:class:`~repro.core.engine.InfluentialCommunityEngine` plus a persistent
:class:`~repro.serve.batch.BatchQueryEngine` whose epoch-tagged result and
propagation caches live as long as the session — and executes the typed
requests of :mod:`repro.service.schema` against them.  Serving workers and
remote clients bind to a session *name*, never to a pickled engine.

Single queries route through the session's serving engine (`answer`), so
they share the same caches as batches and absorb dynamic updates through
the same epoch mechanism; results are bit-identical to calling the engine
directly (the caches are exact).

Thread-safety: one lock per session serialises execution against it (the
engine's processors share scratch state), while different sessions run
concurrently — which is what the threading HTTP gateway needs.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro._version import __version__ as _API_VERSION
from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import UpdateBatch
from repro.exceptions import (
    MalformedRequestError,
    ReproError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.graph.io import graph_from_dict, load_graph_json
from repro.pruning.stats import PruningConfig
from repro.serve.batch import BatchQueryEngine, ServingConfig
from repro.service.errors import service_error_from_exception
from repro.service.schema import (
    BatchRequest,
    BatchResponse,
    BuildRequest,
    BuildResponse,
    DToplRequest,
    DToplResponse,
    ErrorResponse,
    HealthResponse,
    SessionsResponse,
    ToplRequest,
    ToplResponse,
    UpdateRequest,
    UpdateResponse,
    result_to_wire,
)

Request = Union[BuildRequest, ToplRequest, DToplRequest, UpdateRequest, BatchRequest]


@dataclass(frozen=True)
class SessionInfo:
    """Summary of one hosted session (what ``GET /v1/sessions`` reports)."""

    name: str
    engine: dict
    created_unix: float
    requests_served: int

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "engine": self.engine,
            "created_unix": self.created_unix,
            "requests_served": self.requests_served,
        }


class _Session:
    """One hosted engine + its persistent serving state."""

    def __init__(
        self,
        name: str,
        engine: InfluentialCommunityEngine,
        serving_config: Optional[ServingConfig] = None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.serving = BatchQueryEngine(engine, config=serving_config)
        self.created_unix = time.time()
        self.requests_served = 0
        self.lock = threading.RLock()

    def info(self) -> SessionInfo:
        return SessionInfo(
            name=self.name,
            engine=self.engine.describe(),
            created_unix=self.created_unix,
            requests_served=self.requests_served,
        )


def _pruning_from_wire(pruning: Optional[dict]) -> Optional[PruningConfig]:
    if pruning is None:
        return None
    return PruningConfig(
        keyword=pruning.get("keyword", True),
        support=pruning.get("support", True),
        score=pruning.get("score", True),
    )


class CommunityService:
    """The versioned service facade: sessions in, typed responses out.

    Parameters
    ----------
    serving_config:
        Default :class:`~repro.serve.batch.ServingConfig` for the serving
        engine each session keeps (cache capacities, worker default).
    """

    def __init__(self, serving_config: Optional[ServingConfig] = None) -> None:
        self._serving_config = serving_config
        self._sessions: dict[str, _Session] = {}
        self._registry_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # session registry
    # ------------------------------------------------------------------ #
    def session_names(self) -> list[str]:
        """Names of the hosted sessions, sorted."""
        with self._registry_lock:
            return sorted(self._sessions)

    def has_session(self, name: str) -> bool:
        """Whether a session of this name is hosted."""
        with self._registry_lock:
            return name in self._sessions

    def engine(self, session: str = "default") -> InfluentialCommunityEngine:
        """The engine behind ``session`` (for in-process callers)."""
        return self._session(session).engine

    def serving(self, session: str = "default") -> BatchQueryEngine:
        """The persistent serving engine of ``session`` (caches included)."""
        return self._session(session).serving

    def adopt(
        self,
        engine: InfluentialCommunityEngine,
        session: str = "default",
        replace: bool = False,
        serving_config: Optional[ServingConfig] = None,
    ) -> str:
        """Register an already-built engine as a named session.

        The programmatic fast path for callers that hold an engine object —
        the workload runner, deprecation shims, tests — so they share the
        facade's serving machinery without a wire round trip.
        ``serving_config`` overrides the service-wide default for this
        session (cache capacities, worker default, start method).
        """
        if not session:
            raise MalformedRequestError("session name must be non-empty")
        with self._registry_lock:
            if session in self._sessions and not replace:
                raise SessionExistsError(session)
            self._sessions[session] = _Session(
                session,
                engine,
                serving_config=(
                    self._serving_config if serving_config is None else serving_config
                ),
            )
        return session

    def drop_session(self, session: str) -> None:
        """Forget a session (its engine is garbage once callers release it)."""
        with self._registry_lock:
            if session not in self._sessions:
                raise UnknownSessionError(session)
            del self._sessions[session]

    def _session(self, name: str) -> _Session:
        with self._registry_lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise UnknownSessionError(name) from None

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def build(self, request: BuildRequest) -> BuildResponse:
        """``POST /v1/build``: offline phase (or index load) into a session."""
        started = time.perf_counter()
        # Fail fast: the offline phase is the expensive step, so a doomed
        # session name must be rejected before it runs (a concurrent build
        # racing for the same name is still caught by `adopt` below).
        if not request.replace and self.has_session(request.session):
            raise SessionExistsError(request.session)
        if request.graph is not None:
            graph = graph_from_dict(request.graph)
        elif request.graph_path is not None:
            graph = load_graph_json(request.graph_path)
        else:
            graph = None  # store-backed: the store carries the graph
        config_kwargs = dict(request.config or {})
        known = {f.name for f in dataclasses.fields(EngineConfig)}
        unknown = set(config_kwargs) - known
        if unknown:
            raise MalformedRequestError(
                f"BuildRequest.config carries unknown settings {sorted(unknown)}"
            )
        if "thresholds" in config_kwargs:
            try:
                config_kwargs["thresholds"] = tuple(config_kwargs["thresholds"])
            except TypeError:
                raise MalformedRequestError(
                    "BuildRequest.config.thresholds must be a list of numbers, "
                    f"got {config_kwargs['thresholds']!r}"
                ) from None
        if request.store_path is not None:
            # Opening a packed store: no offline phase at all.  The store's
            # own shape parameters are authoritative (`from_store` rejects
            # overrides that would invalidate the packed records); backend
            # and serving knobs remain overridable.
            try:
                engine = InfluentialCommunityEngine.from_store(
                    request.store_path, config_overrides=config_kwargs or None
                )
            except TypeError as exc:
                raise MalformedRequestError(
                    f"BuildRequest.config is invalid: {exc}"
                ) from exc
        elif request.index_path is not None:
            # Loading a saved index: the index's own shape parameters win,
            # and the request's config entries act as overrides (the common
            # case being backend selection for the online phase).
            engine = InfluentialCommunityEngine.from_saved_index(
                graph, request.index_path
            )
            if config_kwargs:
                try:
                    engine.config = dataclasses.replace(engine.config, **config_kwargs)
                except TypeError as exc:
                    raise MalformedRequestError(
                        f"BuildRequest.config is invalid: {exc}"
                    ) from exc
        else:
            try:
                config = EngineConfig(**config_kwargs)
            except TypeError as exc:
                # e.g. a string where EngineConfig's validators compare ints.
                raise MalformedRequestError(
                    f"BuildRequest.config is invalid: {exc}"
                ) from exc
            engine = InfluentialCommunityEngine.build(
                graph, config=config, validate=request.validate
            )
        if request.save_index_path is not None:
            engine.save_index(request.save_index_path)
        self.adopt(engine, session=request.session, replace=request.replace)
        return BuildResponse(
            session=request.session,
            epoch=engine.epoch,
            elapsed_seconds=time.perf_counter() - started,
            engine=engine.describe(),
            loaded_index=request.index_path is not None,
            saved_index_path=request.save_index_path,
        )

    def topl(self, request: ToplRequest) -> ToplResponse:
        """``POST /v1/topl``: one TopL-ICDE query through the session caches."""
        session = self._session(request.session)
        started = time.perf_counter()
        with session.lock:
            result = self._answer(session, request.query, request.pruning)
            session.requests_served += 1
            return ToplResponse(
                session=session.name,
                epoch=session.engine.epoch,
                elapsed_seconds=time.perf_counter() - started,
                communities=result.communities,
                statistics=result.statistics.as_dict(),
            )

    def dtopl(self, request: DToplRequest) -> DToplResponse:
        """``POST /v1/dtopl``: one DTopL-ICDE query through the session caches."""
        session = self._session(request.session)
        started = time.perf_counter()
        with session.lock:
            result = self._answer(session, request.query, request.pruning)
            session.requests_served += 1
            return DToplResponse(
                session=session.name,
                epoch=session.engine.epoch,
                elapsed_seconds=time.perf_counter() - started,
                communities=result.communities,
                diversity_score=result.diversity_score,
                increment_evaluations=result.increment_evaluations,
                candidates_considered=result.candidates_considered,
                statistics=result.statistics.as_dict(),
            )

    def _answer(self, session: _Session, query, pruning: Optional[dict]):
        """Route one query through the session's serving engine.

        A request-level pruning override bypasses the serving caches (their
        keys assume the serving engine's own pruning config) and queries the
        engine directly — correctness first, caching where it is sound.
        """
        override = _pruning_from_wire(pruning)
        if override is not None:
            from repro.query.params import DTopLQuery

            if isinstance(query, DTopLQuery):
                return session.engine.dtopl(query, pruning=override)
            return session.engine.topl(query, pruning=override)
        return session.serving.answer(query)

    def answer_one(self, session: str, query):
        """Answer one typed query through a session's caches (streaming path).

        The gateway's NDJSON batch streaming uses this per query so it takes
        the session lock around each answer instead of the whole batch —
        other requests interleave between streamed results.
        """
        state = self._session(session)
        with state.lock:
            result = state.serving.answer(query)
            state.requests_served += 1
            return result

    def update(self, request: UpdateRequest) -> UpdateResponse:
        """``POST /v1/update``: apply an edit script, keep the index in sync."""
        session = self._session(request.session)
        started = time.perf_counter()
        with session.lock:
            report = session.engine.apply_updates(
                UpdateBatch(request.edits),
                damage_threshold=request.damage_threshold,
                rebuild=request.rebuild,
            )
            session.requests_served += 1
            graph = session.engine.graph
            return UpdateResponse(
                session=session.name,
                epoch=session.engine.epoch,
                elapsed_seconds=time.perf_counter() - started,
                report=report.as_dict(),
                graph={
                    "name": graph.name,
                    "num_vertices": graph.num_vertices(),
                    "num_edges": graph.num_edges(),
                },
            )

    def batch(self, request: BatchRequest) -> BatchResponse:
        """``POST /v1/batch``: a mixed batch through the session's serving engine."""
        session = self._session(request.session)
        started = time.perf_counter()
        with session.lock:
            serving = session.serving
            override = _pruning_from_wire(request.pruning)
            if override is not None:
                # A pruning override gets its own serving engine (cache keys
                # include the pruning config at construction time), but it
                # keeps the session's serving knobs — cache capacities and
                # worker defaults must not silently change per request.
                serving = BatchQueryEngine(
                    session.engine, config=session.serving.config, pruning=override
                )
            batch = serving.run(request.queries, workers=request.workers)
            session.requests_served += 1
            return BatchResponse(
                session=session.name,
                epoch=session.engine.epoch,
                elapsed_seconds=time.perf_counter() - started,
                results=tuple(result_to_wire(result) for result in batch),
                statistics=batch.statistics.as_dict(),
                cache_statistics=serving.cache_statistics(),
            )

    def sessions(self) -> SessionsResponse:
        """``GET /v1/sessions``: summaries of every hosted session."""
        with self._registry_lock:
            infos = [self._sessions[name].info() for name in sorted(self._sessions)]
        return SessionsResponse(sessions=tuple(info.to_json() for info in infos))

    def health(self) -> HealthResponse:
        """``GET /v1/health``: liveness + per-session engine diagnostics.

        Re-uses :meth:`InfluentialCommunityEngine.describe` per session, so
        backend, epoch and index schema version surface here without a
        second diagnostic path to keep in sync.
        """
        with self._registry_lock:
            sessions = tuple(
                {
                    "name": name,
                    "epoch": state.engine.epoch,
                    "engine": state.engine.describe(),
                }
                for name, state in sorted(self._sessions.items())
            )
        return HealthResponse(status="ok", sessions=sessions)

    # ------------------------------------------------------------------ #
    # generic dispatch (shared by the gateway and `handle_json`)
    # ------------------------------------------------------------------ #
    _DISPATCH = {
        BuildRequest: "build",
        ToplRequest: "topl",
        DToplRequest: "dtopl",
        UpdateRequest: "update",
        BatchRequest: "batch",
    }

    def dispatch(self, request: Request):
        """Execute any typed request; returns the matching typed response."""
        try:
            handler = self._DISPATCH[type(request)]
        except KeyError:
            raise MalformedRequestError(
                f"unsupported request type {type(request).__name__}"
            ) from None
        return getattr(self, handler)(request)

    def handle_json(self, endpoint: str, payload) -> tuple[dict, Optional[ErrorResponse]]:
        """Decode + dispatch one wire document; never raises for API errors.

        Returns ``(response_document, None)`` on success and
        ``(error_document, ErrorResponse)`` when the request was rejected —
        the second element lets the gateway pick the HTTP status without
        re-parsing the document it is about to send.
        """
        from repro.service.schema import decode_request

        session = payload.get("session") if isinstance(payload, dict) else None
        try:
            request = decode_request(endpoint, payload)
            response = self.dispatch(request)
            return response.to_json(), None
        except Exception as error:
            # ReproError carries its message onto the wire; anything else
            # becomes an opaque INTERNAL document — either way the client
            # gets a structured response, never a dropped connection.
            failure = ErrorResponse(
                error=service_error_from_exception(error),
                session=session if isinstance(session, str) else None,
            )
            return failure.to_json(), failure

    @property
    def api_version(self) -> str:
        """The version reported in every response envelope."""
        return _API_VERSION
