"""The wire schema: typed, versioned request/response documents.

Every request and response of the service API is a frozen dataclass with a
strict ``to_json()`` / ``from_json()`` codec pair:

* **versioned** — every document carries ``schema_version``; a request with
  a version this build does not speak is rejected with
  ``UNSUPPORTED_SCHEMA_VERSION`` before any field is interpreted.
* **strict** — unknown fields, missing fields and wrong types raise
  :class:`~repro.exceptions.MalformedRequestError` (wire code
  ``MALFORMED_REQUEST``); domain validation (e.g. ``theta`` out of range)
  re-uses the library's own validators, so the wire layer can never accept
  a query the engine would reject.
* **lossless** — queries and results round-trip exactly.  Floats survive
  JSON bit-identically (Python serialises them via ``repr`` round-trip),
  and per-vertex ``cpp`` maps travel as sorted ``[vertex, value]`` pairs so
  int and str vertex ids stay distinguishable (JSON object keys would
  force both to strings).

Responses are *envelopes*: besides their payload they carry the schema
version, the serving build's ``api_version``, the session name, the
engine's :attr:`~repro.core.engine.InfluentialCommunityEngine.epoch` and
wall-clock timing, so a remote client can reason about cache freshness the
same way the in-process serving layer does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro._version import __version__ as _API_VERSION
from repro.exceptions import (
    MalformedRequestError,
    UnsupportedSchemaVersionError,
)
from repro.query.params import DTopLQuery, TopLQuery
from repro.query.results import DTopLResult, SeedCommunity, TopLResult
from repro.influence.propagation import InfluencedCommunity
from repro.service.errors import ServiceError

#: The wire schema version this build speaks.  Bump on any breaking change
#: to a request or response document; additive optional fields do not bump.
SCHEMA_VERSION = 1

_MISSING = object()


# --------------------------------------------------------------------------- #
# strict decoding helpers
# --------------------------------------------------------------------------- #
def _require_object(payload, what: str) -> dict:
    if not isinstance(payload, dict):
        raise MalformedRequestError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_schema_version(payload: dict, what: str) -> None:
    version = payload.get("schema_version", _MISSING)
    if version is _MISSING:
        raise MalformedRequestError(f"{what} is missing 'schema_version'")
    # isinstance check first: bool == 1 in Python, and `true` must not
    # silently pass as version 1 (the codec rejects bool-as-int everywhere).
    if isinstance(version, bool) or not isinstance(version, int):
        raise MalformedRequestError(
            f"{what}.schema_version must be an integer, got {version!r}"
        )
    if version != SCHEMA_VERSION:
        raise UnsupportedSchemaVersionError(version, SCHEMA_VERSION)


def _reject_unknown(payload: dict, allowed: Sequence[str], what: str) -> None:
    unknown = set(payload) - set(allowed)
    if unknown:
        raise MalformedRequestError(
            f"{what} carries unknown fields {sorted(unknown)}"
        )


def _field(payload: dict, name: str, types, what: str, default=_MISSING):
    value = payload.get(name, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise MalformedRequestError(f"{what} is missing field {name!r}")
        return default
    if types is None:
        return value
    expected = types if isinstance(types, tuple) else (types,)
    # bool is an int subclass; never accept it where a number is expected.
    if bool not in expected and isinstance(value, bool):
        raise MalformedRequestError(
            f"{what}.{name} must not be a boolean, got {value!r}"
        )
    if not isinstance(value, types):
        raise MalformedRequestError(
            f"{what}.{name} has the wrong type: "
            f"expected {'/'.join(t.__name__ for t in expected)}, "
            f"got {type(value).__name__}"
        )
    return value


def _vertex_ok(value, what: str):
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise MalformedRequestError(
            f"{what}: vertex ids must be ints or strings, got {value!r}"
        )
    return value


def _sorted_vertices(vertices) -> list:
    """Deterministic vertex ordering for wire documents (mixed int/str safe)."""
    return sorted(vertices, key=repr)


# --------------------------------------------------------------------------- #
# queries on the wire
# --------------------------------------------------------------------------- #
def query_to_wire(query: Union[TopLQuery, DTopLQuery]) -> dict:
    """Serialise a TopL/DTopL query into its wire form (lossless)."""
    if isinstance(query, DTopLQuery):
        wire = query_to_wire(query.base)
        wire["type"] = "dtopl"
        wire["candidate_factor"] = query.candidate_factor
        return wire
    if not isinstance(query, TopLQuery):
        raise MalformedRequestError(
            f"expected a TopLQuery or DTopLQuery, got {type(query).__name__}"
        )
    return {
        "type": "topl",
        "keywords": sorted(query.keywords),
        "k": query.k,
        "radius": query.radius,
        "theta": query.theta,
        "top_l": query.top_l,
    }


def query_from_wire(payload) -> Union[TopLQuery, DTopLQuery]:
    """Parse a query wire document; domain validation runs in the dataclass.

    Out-of-range parameters therefore raise
    :class:`~repro.exceptions.QueryParameterError` exactly as a direct
    constructor call would — the wire layer adds no second validator that
    could drift.
    """
    payload = _require_object(payload, "query")
    kind = _field(payload, "type", str, "query")
    if kind not in ("topl", "dtopl"):
        raise MalformedRequestError(f"query.type must be 'topl' or 'dtopl', got {kind!r}")
    allowed = ["type", "keywords", "k", "radius", "theta", "top_l"]
    if kind == "dtopl":
        allowed.append("candidate_factor")
    _reject_unknown(payload, allowed, "query")
    keywords = _field(payload, "keywords", list, "query")
    for keyword in keywords:
        if not isinstance(keyword, str):
            raise MalformedRequestError(
                f"query.keywords must be strings, got {keyword!r}"
            )
    base = TopLQuery(
        keywords=frozenset(keywords),
        k=_field(payload, "k", int, "query"),
        radius=_field(payload, "radius", int, "query"),
        theta=float(_field(payload, "theta", (int, float), "query")),
        top_l=_field(payload, "top_l", int, "query"),
    )
    if kind == "topl":
        return base
    return DTopLQuery(
        base=base,
        candidate_factor=_field(payload, "candidate_factor", int, "query", default=3),
    )


# --------------------------------------------------------------------------- #
# results on the wire
# --------------------------------------------------------------------------- #
def community_to_wire(community: SeedCommunity) -> dict:
    """Serialise one seed community, including its full ``cpp`` map.

    Carrying the per-vertex propagation probabilities (not just the score)
    makes the wire form *complete*: two results are equal iff their wire
    forms are equal, which is what the service-vs-direct equivalence suite
    asserts.  The ``cpp`` pairs are emitted in canonical order — probability
    descending, then vertex — rather than the engine's heap pop order: the
    backends may pop *equal* probabilities in different orders (dict vs CSR
    neighbour iteration), and the wire form must not let a client tell the
    backends apart.  The canonical order preserves the non-increasing value
    sequence exactly (ties are equal values), so the influential score — a
    float sum over the pairs — survives a decode/encode round trip
    bit-identically.
    """
    return {
        "center": community.center,
        "vertices": _sorted_vertices(community.vertices),
        "k": community.k,
        "radius": community.radius,
        "score": community.score,
        "threshold": community.influenced.threshold,
        "cpp": [
            [vertex, value]
            for vertex, value in sorted(
                community.influenced.cpp.items(), key=lambda kv: (-kv[1], repr(kv[0]))
            )
        ],
    }


def community_from_wire(payload) -> SeedCommunity:
    """Rebuild a :class:`SeedCommunity` from its wire form."""
    payload = _require_object(payload, "community")
    _reject_unknown(
        payload,
        ["center", "vertices", "k", "radius", "score", "threshold", "cpp"],
        "community",
    )
    vertices = frozenset(
        _vertex_ok(v, "community.vertices")
        for v in _field(payload, "vertices", list, "community")
    )
    cpp = {}
    for pair in _field(payload, "cpp", list, "community"):
        if not isinstance(pair, list) or len(pair) != 2:
            raise MalformedRequestError(
                f"community.cpp entries must be [vertex, value] pairs, got {pair!r}"
            )
        vertex, value = pair
        cpp[_vertex_ok(vertex, "community.cpp")] = float(value)
    influenced = InfluencedCommunity(
        seed_vertices=vertices,
        cpp=cpp,
        threshold=float(_field(payload, "threshold", (int, float), "community")),
    )
    return SeedCommunity(
        center=_vertex_ok(_field(payload, "center", (int, str), "community"), "community"),
        vertices=vertices,
        influenced=influenced,
        k=_field(payload, "k", int, "community"),
        radius=_field(payload, "radius", int, "community"),
    )


def result_to_wire(result: Union[TopLResult, DTopLResult]) -> dict:
    """Serialise a query result (communities + execution statistics)."""
    wire = {
        "type": "dtopl" if isinstance(result, DTopLResult) else "topl",
        "communities": [community_to_wire(c) for c in result.communities],
        "statistics": result.statistics.as_dict(),
    }
    if isinstance(result, DTopLResult):
        wire["diversity_score"] = result.diversity_score
        wire["increment_evaluations"] = result.increment_evaluations
        wire["candidates_considered"] = result.candidates_considered
    return wire


# --------------------------------------------------------------------------- #
# envelope plumbing shared by every request / response
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _WireDocument:
    """Shared ``to_json``/``from_json`` machinery for schema dataclasses.

    Subclasses declare their payload in ``_WIRE_FIELDS``: a tuple of
    ``(field_name, json_types_or_None, default_or_MISSING)`` rows consumed
    by the generic strict decoder.  ``json_types_or_None`` of ``None``
    skips the isinstance check (for fields with bespoke validation in
    ``__post_init__`` / ``_decode_extra``).
    """

    def to_json(self) -> dict:
        payload = {"schema_version": SCHEMA_VERSION}
        for spec in self._WIRE_FIELDS:
            name = spec[0]
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload

    @classmethod
    def from_json(cls, payload) -> "_WireDocument":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        allowed = ["schema_version"] + [spec[0] for spec in cls._WIRE_FIELDS]
        _reject_unknown(payload, allowed, what)
        kwargs = {}
        for name, types, default in cls._WIRE_FIELDS:
            kwargs[name] = _field(payload, name, types, what, default=default)
        return cls(**kwargs)


def _session_field(payload: dict, what: str) -> str:
    # Every request dataclass declares session="default"; the wire decoders
    # honour the same default so the contract is uniform across endpoints.
    session = _field(payload, "session", str, what, default="default")
    if not session:
        raise MalformedRequestError(f"{what}.session must be a non-empty string")
    return session


# --------------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BuildRequest(_WireDocument):
    """Run the offline phase (or load a saved index) into a named session.

    Exactly one of ``graph`` (an inline graph document, the
    :func:`repro.graph.io.graph_to_dict` format), ``graph_path`` (a graph
    JSON on the server's filesystem) or ``store_path`` (a packed
    ``repro.store`` container, opened mmap-backed with no offline phase) is
    required.  ``index_path`` loads a previously saved index instead of
    re-running the offline phase (not combinable with ``store_path``, which
    carries its own records); ``save_index_path`` persists the built index.
    ``config`` carries :class:`~repro.core.config.EngineConfig` keyword
    arguments (overrides of the packed configuration when opening a store).
    """

    session: str = "default"
    graph: Optional[dict] = None
    graph_path: Optional[str] = None
    store_path: Optional[str] = None
    index_path: Optional[str] = None
    save_index_path: Optional[str] = None
    config: Optional[dict] = None
    validate: bool = True
    replace: bool = False

    _WIRE_FIELDS = (
        ("session", str, "default"),
        ("graph", dict, None),
        ("graph_path", str, None),
        ("store_path", str, None),
        ("index_path", str, None),
        ("save_index_path", str, None),
        ("config", dict, None),
        ("validate", bool, True),
        ("replace", bool, False),
    )

    def __post_init__(self) -> None:
        if not self.session:
            raise MalformedRequestError("BuildRequest.session must be non-empty")
        sources = sum(
            source is not None for source in (self.graph, self.graph_path, self.store_path)
        )
        if sources != 1:
            raise MalformedRequestError(
                "BuildRequest requires exactly one of 'graph', 'graph_path' or "
                "'store_path'"
            )
        if self.store_path is not None and self.index_path is not None:
            raise MalformedRequestError(
                "BuildRequest.index_path cannot be combined with store_path "
                "(a store carries its own index records)"
            )


@dataclass(frozen=True)
class ToplRequest(_WireDocument):
    """Answer one TopL-ICDE query against a session."""

    query: TopLQuery = None
    session: str = "default"
    pruning: Optional[dict] = None

    _WIRE_FIELDS = (
        ("session", str, "default"),
        ("query", None, _MISSING),
        ("pruning", dict, None),
    )

    def __post_init__(self) -> None:
        if not isinstance(self.query, TopLQuery) or isinstance(self.query, DTopLQuery):
            raise MalformedRequestError("ToplRequest.query must be a TopLQuery")
        _validate_pruning(self.pruning, "ToplRequest")

    def to_json(self) -> dict:
        payload = super().to_json()
        payload["query"] = query_to_wire(self.query)
        return payload

    @classmethod
    def from_json(cls, payload) -> "ToplRequest":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(payload, ["schema_version", "session", "query", "pruning"], what)
        query = query_from_wire(_field(payload, "query", dict, what))
        if not isinstance(query, TopLQuery) or isinstance(query, DTopLQuery):
            raise MalformedRequestError(f"{what}.query must have type 'topl'")
        return cls(
            session=_session_field(payload, what),
            query=query,
            pruning=_field(payload, "pruning", dict, what, default=None),
        )


@dataclass(frozen=True)
class DToplRequest(_WireDocument):
    """Answer one DTopL-ICDE query against a session."""

    query: DTopLQuery = None
    session: str = "default"
    pruning: Optional[dict] = None

    _WIRE_FIELDS = (
        ("session", str, "default"),
        ("query", None, _MISSING),
        ("pruning", dict, None),
    )

    def __post_init__(self) -> None:
        if not isinstance(self.query, DTopLQuery):
            raise MalformedRequestError("DToplRequest.query must be a DTopLQuery")
        _validate_pruning(self.pruning, "DToplRequest")

    def to_json(self) -> dict:
        payload = super().to_json()
        payload["query"] = query_to_wire(self.query)
        return payload

    @classmethod
    def from_json(cls, payload) -> "DToplRequest":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(payload, ["schema_version", "session", "query", "pruning"], what)
        query = query_from_wire(_field(payload, "query", dict, what))
        if not isinstance(query, DTopLQuery):
            raise MalformedRequestError(f"{what}.query must have type 'dtopl'")
        return cls(
            session=_session_field(payload, what),
            query=query,
            pruning=_field(payload, "pruning", dict, what, default=None),
        )


@dataclass(frozen=True)
class UpdateRequest(_WireDocument):
    """Apply an edge edit script to a session's graph and index.

    ``edits`` is the edit-script document of ``docs/dynamic.md`` (or a bare
    edit list); validation and sequential semantics are exactly those of
    :class:`~repro.dynamic.updates.UpdateBatch`.
    """

    edits: tuple = ()
    session: str = "default"
    damage_threshold: Optional[float] = None
    rebuild: bool = False

    _WIRE_FIELDS = (
        ("session", str, "default"),
        ("edits", None, _MISSING),
        ("damage_threshold", (int, float), None),
        ("rebuild", bool, False),
    )

    def __post_init__(self) -> None:
        from repro.dynamic.updates import EdgeUpdate

        for edit in self.edits:
            if not isinstance(edit, EdgeUpdate):
                raise MalformedRequestError(
                    f"UpdateRequest.edits must be EdgeUpdate objects, got {edit!r}"
                )

    def to_json(self) -> dict:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "session": self.session,
            "edits": [edit.as_dict() for edit in self.edits],
            "rebuild": self.rebuild,
        }
        if self.damage_threshold is not None:
            payload["damage_threshold"] = self.damage_threshold
        return payload

    @classmethod
    def from_json(cls, payload) -> "UpdateRequest":
        from repro.dynamic.updates import UpdateBatch

        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(
            payload,
            ["schema_version", "session", "edits", "damage_threshold", "rebuild"],
            what,
        )
        edits = _field(payload, "edits", list, what)
        batch = UpdateBatch.from_json(edits)
        threshold = _field(payload, "damage_threshold", (int, float), what, default=None)
        return cls(
            session=_session_field(payload, what),
            edits=tuple(batch),
            damage_threshold=None if threshold is None else float(threshold),
            rebuild=_field(payload, "rebuild", bool, what, default=False),
        )


@dataclass(frozen=True)
class BatchRequest(_WireDocument):
    """Answer a mixed TopL/DTopL batch against a session (order-stable)."""

    queries: tuple = ()
    session: str = "default"
    workers: Optional[int] = None
    pruning: Optional[dict] = None

    _WIRE_FIELDS = (
        ("session", str, "default"),
        ("queries", None, _MISSING),
        ("workers", int, None),
        ("pruning", dict, None),
    )

    def __post_init__(self) -> None:
        for query in self.queries:
            if not isinstance(query, (TopLQuery, DTopLQuery)):
                raise MalformedRequestError(
                    "BatchRequest.queries must be TopLQuery/DTopLQuery objects, "
                    f"got {type(query).__name__}"
                )
        if self.workers is not None and self.workers < 1:
            raise MalformedRequestError(
                f"BatchRequest.workers must be >= 1, got {self.workers}"
            )
        _validate_pruning(self.pruning, "BatchRequest")

    def to_json(self) -> dict:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "session": self.session,
            "queries": [query_to_wire(query) for query in self.queries],
        }
        if self.workers is not None:
            payload["workers"] = self.workers
        if self.pruning is not None:
            payload["pruning"] = self.pruning
        return payload

    @classmethod
    def from_json(cls, payload) -> "BatchRequest":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(
            payload, ["schema_version", "session", "queries", "workers", "pruning"], what
        )
        queries = _field(payload, "queries", list, what)
        return cls(
            session=_session_field(payload, what),
            queries=tuple(query_from_wire(query) for query in queries),
            workers=_field(payload, "workers", int, what, default=None),
            pruning=_field(payload, "pruning", dict, what, default=None),
        )


def _validate_pruning(pruning: Optional[dict], what: str) -> None:
    if pruning is None:
        return
    allowed = {"keyword", "support", "score"}
    unknown = set(pruning) - allowed
    if unknown:
        raise MalformedRequestError(
            f"{what}.pruning carries unknown rules {sorted(unknown)}"
        )
    for rule, value in pruning.items():
        if not isinstance(value, bool):
            raise MalformedRequestError(
                f"{what}.pruning.{rule} must be a boolean, got {value!r}"
            )


#: Request type per endpoint name; the gateway and `decode_request` share it.
REQUEST_TYPES = {
    "build": BuildRequest,
    "topl": ToplRequest,
    "dtopl": DToplRequest,
    "update": UpdateRequest,
    "batch": BatchRequest,
}


def decode_request(endpoint: str, payload):
    """Decode the request document of ``endpoint`` ('build', 'topl', ...)."""
    try:
        request_type = REQUEST_TYPES[endpoint]
    except KeyError:
        raise MalformedRequestError(
            f"unknown endpoint {endpoint!r}; expected one of {sorted(REQUEST_TYPES)}"
        ) from None
    return request_type.from_json(payload)


# --------------------------------------------------------------------------- #
# responses
# --------------------------------------------------------------------------- #
def _envelope(session: str, epoch: int, elapsed_seconds: float) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "api_version": _API_VERSION,
        "session": session,
        "epoch": epoch,
        "elapsed_seconds": elapsed_seconds,
    }


_ENVELOPE_FIELDS = ("schema_version", "api_version", "session", "epoch", "elapsed_seconds")


def _decode_envelope(payload, what: str) -> dict:
    payload = _require_object(payload, what)
    _check_schema_version(payload, what)
    return {
        "session": _field(payload, "session", str, what),
        "epoch": _field(payload, "epoch", int, what),
        "elapsed_seconds": float(
            _field(payload, "elapsed_seconds", (int, float), what)
        ),
        "api_version": _field(payload, "api_version", str, what),
    }


@dataclass(frozen=True)
class _ResponseEnvelope:
    """Fields every successful response carries."""

    session: str
    epoch: int
    elapsed_seconds: float
    api_version: str = _API_VERSION


@dataclass(frozen=True)
class BuildResponse(_ResponseEnvelope):
    """What a build produced: the engine summary of the new session."""

    engine: dict = field(default_factory=dict)
    loaded_index: bool = False
    saved_index_path: Optional[str] = None

    def to_json(self) -> dict:
        payload = _envelope(self.session, self.epoch, self.elapsed_seconds)
        payload["engine"] = self.engine
        payload["loaded_index"] = self.loaded_index
        if self.saved_index_path is not None:
            payload["saved_index_path"] = self.saved_index_path
        return payload

    @classmethod
    def from_json(cls, payload) -> "BuildResponse":
        what = cls.__name__
        envelope = _decode_envelope(payload, what)
        _reject_unknown(
            payload,
            _ENVELOPE_FIELDS + ("engine", "loaded_index", "saved_index_path"),
            what,
        )
        return cls(
            engine=_field(payload, "engine", dict, what),
            loaded_index=_field(payload, "loaded_index", bool, what, default=False),
            saved_index_path=_field(payload, "saved_index_path", str, what, default=None),
            **envelope,
        )


@dataclass(frozen=True)
class ToplResponse(_ResponseEnvelope):
    """A TopL-ICDE answer: communities (best first) + execution statistics."""

    communities: tuple = ()
    statistics: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = _envelope(self.session, self.epoch, self.elapsed_seconds)
        payload["communities"] = [community_to_wire(c) for c in self.communities]
        payload["statistics"] = self.statistics
        return payload

    @classmethod
    def from_json(cls, payload) -> "ToplResponse":
        what = cls.__name__
        envelope = _decode_envelope(payload, what)
        _reject_unknown(payload, _ENVELOPE_FIELDS + ("communities", "statistics"), what)
        return cls(
            communities=tuple(
                community_from_wire(c)
                for c in _field(payload, "communities", list, what)
            ),
            statistics=_field(payload, "statistics", dict, what),
            **envelope,
        )


@dataclass(frozen=True)
class DToplResponse(_ResponseEnvelope):
    """A DTopL-ICDE answer: diversified communities + diversity metrics."""

    communities: tuple = ()
    diversity_score: float = 0.0
    increment_evaluations: int = 0
    candidates_considered: int = 0
    statistics: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = _envelope(self.session, self.epoch, self.elapsed_seconds)
        payload["communities"] = [community_to_wire(c) for c in self.communities]
        payload["diversity_score"] = self.diversity_score
        payload["increment_evaluations"] = self.increment_evaluations
        payload["candidates_considered"] = self.candidates_considered
        payload["statistics"] = self.statistics
        return payload

    @classmethod
    def from_json(cls, payload) -> "DToplResponse":
        what = cls.__name__
        envelope = _decode_envelope(payload, what)
        _reject_unknown(
            payload,
            _ENVELOPE_FIELDS
            + (
                "communities",
                "diversity_score",
                "increment_evaluations",
                "candidates_considered",
                "statistics",
            ),
            what,
        )
        return cls(
            communities=tuple(
                community_from_wire(c)
                for c in _field(payload, "communities", list, what)
            ),
            diversity_score=float(
                _field(payload, "diversity_score", (int, float), what)
            ),
            increment_evaluations=_field(payload, "increment_evaluations", int, what),
            candidates_considered=_field(payload, "candidates_considered", int, what),
            statistics=_field(payload, "statistics", dict, what),
            **envelope,
        )


@dataclass(frozen=True)
class UpdateResponse(_ResponseEnvelope):
    """What an edit-script application did (mode, damage, timings)."""

    report: dict = field(default_factory=dict)
    graph: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = _envelope(self.session, self.epoch, self.elapsed_seconds)
        payload["report"] = self.report
        payload["graph"] = self.graph
        return payload

    @classmethod
    def from_json(cls, payload) -> "UpdateResponse":
        what = cls.__name__
        envelope = _decode_envelope(payload, what)
        _reject_unknown(payload, _ENVELOPE_FIELDS + ("report", "graph"), what)
        return cls(
            report=_field(payload, "report", dict, what),
            graph=_field(payload, "graph", dict, what),
            **envelope,
        )


@dataclass(frozen=True)
class BatchResponse(_ResponseEnvelope):
    """A batch answer: per-query results in input order + batch statistics."""

    results: tuple = ()
    statistics: dict = field(default_factory=dict)
    cache_statistics: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = _envelope(self.session, self.epoch, self.elapsed_seconds)
        payload["results"] = list(self.results)
        payload["statistics"] = self.statistics
        payload["cache_statistics"] = self.cache_statistics
        return payload

    @classmethod
    def from_json(cls, payload) -> "BatchResponse":
        what = cls.__name__
        envelope = _decode_envelope(payload, what)
        _reject_unknown(
            payload,
            _ENVELOPE_FIELDS + ("results", "statistics", "cache_statistics"),
            what,
        )
        return cls(
            results=tuple(_field(payload, "results", list, what)),
            statistics=_field(payload, "statistics", dict, what),
            cache_statistics=_field(payload, "cache_statistics", dict, what),
            **envelope,
        )


@dataclass(frozen=True)
class SessionsResponse:
    """The sessions a service hosts (``GET /v1/sessions``)."""

    sessions: tuple = ()
    api_version: str = _API_VERSION

    def to_json(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "api_version": self.api_version,
            "sessions": list(self.sessions),
        }

    @classmethod
    def from_json(cls, payload) -> "SessionsResponse":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(payload, ("schema_version", "api_version", "sessions"), what)
        return cls(
            sessions=tuple(_field(payload, "sessions", list, what)),
            api_version=_field(payload, "api_version", str, what),
        )


@dataclass(frozen=True)
class HealthResponse:
    """Service liveness + per-session diagnostics (``GET /v1/health``)."""

    status: str = "ok"
    sessions: tuple = ()
    api_version: str = _API_VERSION

    def to_json(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "api_version": self.api_version,
            "status": self.status,
            "sessions": list(self.sessions),
        }

    @classmethod
    def from_json(cls, payload) -> "HealthResponse":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(
            payload, ("schema_version", "api_version", "status", "sessions"), what
        )
        return cls(
            status=_field(payload, "status", str, what),
            sessions=tuple(_field(payload, "sessions", list, what)),
            api_version=_field(payload, "api_version", str, what),
        )


@dataclass(frozen=True)
class ErrorResponse:
    """The error envelope: a structured :class:`ServiceError`, never a traceback."""

    error: ServiceError
    session: Optional[str] = None
    api_version: str = _API_VERSION

    def to_json(self) -> dict:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "api_version": self.api_version,
            "error": self.error.to_json(),
        }
        if self.session is not None:
            payload["session"] = self.session
        return payload

    @classmethod
    def from_json(cls, payload) -> "ErrorResponse":
        what = cls.__name__
        payload = _require_object(payload, what)
        _check_schema_version(payload, what)
        _reject_unknown(
            payload, ("schema_version", "api_version", "error", "session"), what
        )
        return cls(
            error=ServiceError.from_json(_field(payload, "error", dict, what)),
            session=_field(payload, "session", str, what, default=None),
            api_version=_field(payload, "api_version", str, what),
        )
