"""HTTP gateway: the service API over the wire, stdlib only.

A :class:`ServiceGateway` exposes a :class:`~repro.service.facade.CommunityService`
through ``http.server.ThreadingHTTPServer``:

================================  =============================================
endpoint                          request / response document
================================  =============================================
``POST /v1/build``                :class:`~repro.service.schema.BuildRequest`
``POST /v1/topl``                 :class:`~repro.service.schema.ToplRequest`
``POST /v1/dtopl``                :class:`~repro.service.schema.DToplRequest`
``POST /v1/update``               :class:`~repro.service.schema.UpdateRequest`
``POST /v1/batch``                :class:`~repro.service.schema.BatchRequest`
``GET  /v1/sessions``             :class:`~repro.service.schema.SessionsResponse`
``GET  /v1/health``               :class:`~repro.service.schema.HealthResponse`
================================  =============================================

Success responses are ``application/json``.  Errors are
:class:`~repro.service.schema.ErrorResponse` documents whose HTTP status
comes from the structured error code (404 for ``UNKNOWN_SESSION``, 422 for
``QUERY_PARAMETER_INVALID``, ...), so remote clients can branch on either.

``POST /v1/batch?stream=1`` (or ``Accept: application/x-ndjson``) switches
the batch endpoint to **NDJSON streaming**: one ``{"kind": "result"}`` line
per query — written and flushed as each query completes, so a slow batch
yields results incrementally — followed by one ``{"kind": "summary"}``
envelope line.  Streamed queries route through the session's serving engine
one at a time and therefore share the same epoch-tagged caches as the
buffered path.

See ``docs/service.md`` for a curl walkthrough.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlparse

from repro.exceptions import MalformedRequestError
from repro.service.errors import ServiceError, service_error_from_exception
from repro.service.facade import CommunityService
from repro.service.schema import (
    SCHEMA_VERSION,
    BatchRequest,
    ErrorResponse,
    result_to_wire,
)

#: Largest request body the gateway will read, in bytes (64 MiB).  Inline
#: graph documents are the only legitimately large payloads.
MAX_BODY_BYTES = 64 * 1024 * 1024

_POST_ENDPOINTS = ("build", "topl", "dtopl", "update", "batch")


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the facade; one instance per request."""

    server_version = "repro-gateway"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass carries the facade.
    @property
    def service(self) -> CommunityService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # GET
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlparse(self.path).path.rstrip("/")
        if path == "/v1/health":
            self._send_json(200, self.service.health().to_json())
        elif path == "/v1/sessions":
            self._send_json(200, self.service.sessions().to_json())
        else:
            self._send_error_document(
                404, ServiceError(code="NOT_FOUND", message=f"no route for GET {path}")
            )

    # ------------------------------------------------------------------ #
    # POST
    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/")
        if not path.startswith("/v1/"):
            self._send_error_document(
                404, ServiceError(code="NOT_FOUND", message=f"no route for POST {path}")
            )
            return
        endpoint = path[len("/v1/"):]
        if endpoint not in _POST_ENDPOINTS:
            self._send_error_document(
                404,
                ServiceError(
                    code="NOT_FOUND",
                    message=f"unknown endpoint {endpoint!r}; "
                    f"expected one of {list(_POST_ENDPOINTS)}",
                ),
            )
            return
        try:
            payload = self._read_json_body()
        except MalformedRequestError as error:
            failure = ErrorResponse(error=service_error_from_exception(error))
            self._send_json(failure.error.http_status, failure.to_json())
            return

        if endpoint == "batch" and self._wants_stream(parsed.query):
            self._stream_batch(payload)
            return

        document, failure = self.service.handle_json(endpoint, payload)
        status = failure.error.http_status if failure is not None else 200
        self._send_json(status, document)

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._method_not_allowed()

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._method_not_allowed()

    def _method_not_allowed(self) -> None:
        self._send_error_document(
            405,
            ServiceError(
                code="METHOD_NOT_ALLOWED",
                message=f"{self.command} is not supported; use GET or POST",
            ),
        )

    # ------------------------------------------------------------------ #
    # NDJSON streaming for batches
    # ------------------------------------------------------------------ #
    def _wants_stream(self, query_string: str) -> bool:
        if "stream=1" in (query_string or "").split("&"):
            return True
        return "application/x-ndjson" in self.headers.get("Accept", "")

    def _stream_batch(self, payload) -> None:
        """Answer a batch as NDJSON: results stream as they are computed."""
        import time

        try:
            request = BatchRequest.from_json(payload)
            if request.pruning is not None:
                raise MalformedRequestError(
                    "pruning overrides are not supported on the streaming batch path"
                )
            engine = self.service.engine(request.session)
        except Exception as error:  # rejected before the stream started
            failure = ErrorResponse(error=service_error_from_exception(error))
            self._send_json(failure.error.http_status, failure.to_json())
            return

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Chunked framing would need hand-rolled encoding under HTTP/1.1;
        # closing the connection delimits the stream instead.
        self.send_header("Connection", "close")
        self.end_headers()
        started = time.perf_counter()
        answered = 0
        try:
            for position, query in enumerate(request.queries):
                result = self.service.answer_one(request.session, query)
                line = {
                    "kind": "result",
                    "position": position,
                    "result": result_to_wire(result),
                }
                if not self._write_ndjson_line(line):
                    # The client went away mid-stream; there is nobody left
                    # to answer for, and nobody to report an error to.
                    return
                answered += 1
            summary = {
                "kind": "summary",
                "schema_version": SCHEMA_VERSION,
                "api_version": self.service.api_version,
                "session": request.session,
                "epoch": engine.epoch,
                "total_queries": len(request.queries),
                "answered": answered,
                "elapsed_seconds": time.perf_counter() - started,
                "cache_statistics": self.service.serving(
                    request.session
                ).cache_statistics(),
            }
            self._write_ndjson_line(summary)
        except Exception as error:
            # Mid-stream failure: the HTTP status is already 200, so the
            # error travels as a terminal NDJSON line.  Writing it is itself
            # best-effort — the failure may *be* the client disconnecting.
            failure = ErrorResponse(error=service_error_from_exception(error))
            line = failure.to_json()
            line["kind"] = "error"
            self._write_ndjson_line(line)

    def _write_ndjson_line(self, document: dict) -> bool:
        """Write one NDJSON line; ``False`` (quietly) when the client is gone."""
        try:
            self.wfile.write(json.dumps(document).encode("utf-8") + b"\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return False
        return True

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _read_json_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # The body was never consumed, so the next bytes on a kept-alive
            # connection would be misparsed as a request line: force a close.
            self.close_connection = True
            raise MalformedRequestError("invalid Content-Length header") from None
        if length <= 0:
            self.close_connection = True
            raise MalformedRequestError("request body is required")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise MalformedRequestError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise MalformedRequestError(f"request body is not valid JSON: {exc}") from exc

    def _send_json(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                # Set when an unconsumed body poisoned the keep-alive byte
                # stream: advertise the close instead of silently dropping.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up before (or while) we answered; there is
            # nothing useful to do with the response — drop it quietly
            # instead of crashing the handler thread with a traceback.
            self.close_connection = True

    def _send_error_document(self, status: int, error: ServiceError) -> None:
        self._send_json(status, ErrorResponse(error=error).to_json())


class ServiceGateway:
    """A running HTTP gateway over one :class:`CommunityService`.

    Usable as a context manager (the test-suite's shape) or via
    :meth:`serve_forever` (the CLI's shape)::

        with ServiceGateway(service, port=0) as gateway:
            urllib.request.urlopen(gateway.url + "/v1/health")
    """

    def __init__(
        self,
        service: Optional[CommunityService] = None,
        host: str = "127.0.0.1",
        port: int = 8344,
        verbose: bool = False,
    ) -> None:
        self.service = service if service is not None else CommunityService()
        self._server = ThreadingHTTPServer((host, port), _GatewayHandler)
        self._server.service = self.service
        self._server.verbose = verbose
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an OS-assigned one)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the gateway, e.g. ``http://127.0.0.1:8344``."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceGateway":
        """Serve from a daemon thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="repro-gateway", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the port."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()

    def close(self) -> None:
        """Release the port after :meth:`serve_forever` has returned.

        Foreground callers cannot use :meth:`shutdown` (it must be called
        from another thread while ``serve_forever`` blocks); once
        ``serve_forever`` exits — typically via ``KeyboardInterrupt`` — this
        closes the listening socket.
        """
        self._server.server_close()

    def __enter__(self) -> "ServiceGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def run_gateway(
    service: Optional[CommunityService] = None,
    host: str = "127.0.0.1",
    port: int = 8344,
    verbose: bool = False,
) -> None:
    """Run a gateway in the foreground (what ``repro gateway`` calls)."""
    gateway = ServiceGateway(service, host=host, port=port, verbose=verbose)
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        gateway.close()
