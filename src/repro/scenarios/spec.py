"""Declarative scenario specifications.

A *scenario* is one reproducible end-to-end workload: a graph recipe, a
probability model layered on top of it, a traffic trace (mixed reads +
updates) replayed through :class:`~repro.service.facade.CommunityService`,
and the gates its report must clear.  Scenarios are declared as plain
dictionaries — loadable from TOML (Python ≥ 3.11) or JSON documents — and
validated strictly: unknown sections or keys are rejected, so a typo in a
spec file fails loudly instead of silently running the defaults.

The spec is *purely declarative*: everything downstream (graph construction,
trace synthesis, query sampling) is a deterministic function of the spec and
its ``seed``, which is what makes a scenario a reproducible benchmark unit.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from repro.exceptions import ScenarioError

PathLike = Union[str, Path]

#: Graph recipes the catalog of generators understands (see generators.py).
GRAPH_RECIPES = (
    "planted",
    "power_law",
    "small_world",
    "bipartite",
    "erdos_renyi",
    "dblp_like",
    "amazon_like",
)

#: Edge-probability models (see generators.apply_probability_model).
PROBABILITY_MODELS = ("as_generated", "weighted_cascade", "trivalency")

#: Traffic-trace kinds (see traces.py).
TRACE_KINDS = ("bursty", "hot_key_skew", "adversarial_churn")


def _require_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise ScenarioError(f"{what} must be a table/object, got {type(value).__name__}")
    return dict(value)


def _reject_unknown(payload: dict, allowed, what: str) -> None:
    unknown = set(payload) - set(allowed)
    if unknown:
        raise ScenarioError(
            f"{what} carries unknown keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def _typed(payload: dict, key: str, types, what: str, default):
    value = payload.get(key, default)
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise ScenarioError(f"{what}.{key} must not be a boolean, got {value!r}")
    if not isinstance(value, types):
        names = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise ScenarioError(
            f"{what}.{key} must be {names}, got {type(value).__name__} ({value!r})"
        )
    return value


def _positive(value, key: str, what: str):
    if value <= 0:
        raise ScenarioError(f"{what}.{key} must be positive, got {value}")
    return value


def _fraction(value, key: str, what: str):
    if not 0.0 <= float(value) <= 1.0:
        raise ScenarioError(f"{what}.{key} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class GraphSpec:
    """The ``[graph]`` section: which generator builds the network and how big.

    ``recipe`` picks one of :data:`GRAPH_RECIPES`; ``params`` carries
    recipe-specific knobs (validated by the generator catalog when the graph
    is actually built).  Keyword assignment mirrors the dataset loaders so
    every scenario exercises the same query machinery.
    """

    recipe: str = "small_world"
    num_vertices: int = 200
    keywords_per_vertex: int = 3
    keyword_domain: int = 40
    keyword_distribution: str = "uniform"
    params: dict = field(default_factory=dict)

    _KEYS = (
        "recipe",
        "num_vertices",
        "keywords_per_vertex",
        "keyword_domain",
        "keyword_distribution",
        "params",
    )

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphSpec":
        payload = _require_mapping(payload, "[graph]")
        _reject_unknown(payload, cls._KEYS, "[graph]")
        spec = cls(
            recipe=_typed(payload, "recipe", str, "graph", cls.recipe),
            num_vertices=_positive(
                _typed(payload, "num_vertices", int, "graph", cls.num_vertices),
                "num_vertices",
                "graph",
            ),
            keywords_per_vertex=_positive(
                _typed(
                    payload, "keywords_per_vertex", int, "graph", cls.keywords_per_vertex
                ),
                "keywords_per_vertex",
                "graph",
            ),
            keyword_domain=_positive(
                _typed(payload, "keyword_domain", int, "graph", cls.keyword_domain),
                "keyword_domain",
                "graph",
            ),
            keyword_distribution=_typed(
                payload, "keyword_distribution", str, "graph", cls.keyword_distribution
            ),
            params=_require_mapping(payload.get("params", {}), "graph.params"),
        )
        if spec.recipe not in GRAPH_RECIPES:
            raise ScenarioError(
                f"graph.recipe must be one of {GRAPH_RECIPES}, got {spec.recipe!r}"
            )
        if spec.keyword_distribution not in ("uniform", "gaussian", "zipf"):
            raise ScenarioError(
                "graph.keyword_distribution must be uniform/gaussian/zipf, "
                f"got {spec.keyword_distribution!r}"
            )
        return spec

    def to_dict(self) -> dict:
        return {
            "recipe": self.recipe,
            "num_vertices": self.num_vertices,
            "keywords_per_vertex": self.keywords_per_vertex,
            "keyword_domain": self.keyword_domain,
            "keyword_distribution": self.keyword_distribution,
            "params": dict(self.params),
        }


@dataclass(frozen=True)
class ProbabilitySpec:
    """The ``[probabilities]`` section: how edge activation probabilities arise.

    ``as_generated`` keeps whatever the recipe drew; ``weighted_cascade``
    sets ``p(u -> v) = scale / deg(v)`` (the classic IC weighted-cascade
    model); ``trivalency`` draws each direction uniformly from ``values``.
    """

    model: str = "as_generated"
    scale: float = 1.0
    values: tuple = (0.1, 0.01, 0.001)

    _KEYS = ("model", "scale", "values")

    @classmethod
    def from_dict(cls, payload: dict) -> "ProbabilitySpec":
        payload = _require_mapping(payload, "[probabilities]")
        _reject_unknown(payload, cls._KEYS, "[probabilities]")
        model = _typed(payload, "model", str, "probabilities", cls.model)
        if model not in PROBABILITY_MODELS:
            raise ScenarioError(
                f"probabilities.model must be one of {PROBABILITY_MODELS}, got {model!r}"
            )
        scale = float(
            _typed(payload, "scale", (int, float), "probabilities", cls.scale)
        )
        if scale <= 0:
            raise ScenarioError(f"probabilities.scale must be positive, got {scale}")
        raw_values = payload.get("values", list(cls.values))
        if not isinstance(raw_values, (list, tuple)) or not raw_values:
            raise ScenarioError(
                f"probabilities.values must be a non-empty list, got {raw_values!r}"
            )
        values = []
        for value in raw_values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ScenarioError(
                    f"probabilities.values entries must be numbers, got {value!r}"
                )
            if not 0.0 <= float(value) <= 1.0:
                raise ScenarioError(
                    f"probabilities.values entries must be in [0, 1], got {value}"
                )
            values.append(float(value))
        return cls(model=model, scale=scale, values=tuple(values))

    def to_dict(self) -> dict:
        return {"model": self.model, "scale": self.scale, "values": list(self.values)}


@dataclass(frozen=True)
class TraceSpec:
    """The ``[trace]`` section: the mixed read/update traffic to replay.

    ``operations`` counts trace steps; ``update_share`` of them are edit
    batches of ``edits_per_update`` edges each, the rest are queries
    (``dtopl_share`` of those diversified).  ``kind`` shapes *how* the
    queries and edits are distributed:

    * ``bursty`` — queries arrive in bursts of ``burst_length`` repeats of
      one query shape (warm-cache traffic), updates punctuate the bursts.
    * ``hot_key_skew`` — query keyword sets are drawn from a small pool of
      ``hot_keys`` shapes with a heavy skew towards the hottest ones.
    * ``adversarial_churn`` — every update batch churns the same focus
      neighbourhood while queries keep targeting it, maximising cache
      invalidation and incremental-maintenance pressure.
    """

    kind: str = "bursty"
    operations: int = 24
    update_share: float = 0.15
    edits_per_update: int = 6
    dtopl_share: float = 0.25
    burst_length: int = 4
    hot_keys: int = 4
    focus_radius: int = 2

    _KEYS = (
        "kind",
        "operations",
        "update_share",
        "edits_per_update",
        "dtopl_share",
        "burst_length",
        "hot_keys",
        "focus_radius",
    )

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpec":
        payload = _require_mapping(payload, "[trace]")
        _reject_unknown(payload, cls._KEYS, "[trace]")
        kind = _typed(payload, "kind", str, "trace", cls.kind)
        if kind not in TRACE_KINDS:
            raise ScenarioError(
                f"trace.kind must be one of {TRACE_KINDS}, got {kind!r}"
            )
        return cls(
            kind=kind,
            operations=_positive(
                _typed(payload, "operations", int, "trace", cls.operations),
                "operations",
                "trace",
            ),
            update_share=_fraction(
                _typed(
                    payload, "update_share", (int, float), "trace", cls.update_share
                ),
                "update_share",
                "trace",
            ),
            edits_per_update=_positive(
                _typed(payload, "edits_per_update", int, "trace", cls.edits_per_update),
                "edits_per_update",
                "trace",
            ),
            dtopl_share=_fraction(
                _typed(payload, "dtopl_share", (int, float), "trace", cls.dtopl_share),
                "dtopl_share",
                "trace",
            ),
            burst_length=_positive(
                _typed(payload, "burst_length", int, "trace", cls.burst_length),
                "burst_length",
                "trace",
            ),
            hot_keys=_positive(
                _typed(payload, "hot_keys", int, "trace", cls.hot_keys),
                "hot_keys",
                "trace",
            ),
            focus_radius=_positive(
                _typed(payload, "focus_radius", int, "trace", cls.focus_radius),
                "focus_radius",
                "trace",
            ),
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "operations": self.operations,
            "update_share": self.update_share,
            "edits_per_update": self.edits_per_update,
            "dtopl_share": self.dtopl_share,
            "burst_length": self.burst_length,
            "hot_keys": self.hot_keys,
            "focus_radius": self.focus_radius,
        }


@dataclass(frozen=True)
class QuerySpec:
    """The ``[queries]`` section: parameter shape of the trace's queries."""

    num_keywords: int = 4
    k: int = 3
    radius: int = 2
    theta: float = 0.1
    top_l: int = 3
    candidate_factor: int = 3

    _KEYS = ("num_keywords", "k", "radius", "theta", "top_l", "candidate_factor")

    @classmethod
    def from_dict(cls, payload: dict) -> "QuerySpec":
        payload = _require_mapping(payload, "[queries]")
        _reject_unknown(payload, cls._KEYS, "[queries]")
        spec = cls(
            num_keywords=_typed(payload, "num_keywords", int, "queries", cls.num_keywords),
            k=_typed(payload, "k", int, "queries", cls.k),
            radius=_typed(payload, "radius", int, "queries", cls.radius),
            theta=float(_typed(payload, "theta", (int, float), "queries", cls.theta)),
            top_l=_typed(payload, "top_l", int, "queries", cls.top_l),
            candidate_factor=_typed(
                payload, "candidate_factor", int, "queries", cls.candidate_factor
            ),
        )
        # Domain checks mirror TopLQuery/DTopLQuery so a bad spec fails at
        # parse time, before any graph is built.
        if spec.num_keywords < 1:
            raise ScenarioError(f"queries.num_keywords must be >= 1, got {spec.num_keywords}")
        if spec.k < 2:
            raise ScenarioError(f"queries.k must be >= 2, got {spec.k}")
        if spec.radius < 1:
            raise ScenarioError(f"queries.radius must be >= 1, got {spec.radius}")
        if not 0.0 <= spec.theta < 1.0:
            raise ScenarioError(f"queries.theta must be in [0, 1), got {spec.theta}")
        if spec.top_l < 1:
            raise ScenarioError(f"queries.top_l must be >= 1, got {spec.top_l}")
        if spec.candidate_factor < 1:
            raise ScenarioError(
                f"queries.candidate_factor must be >= 1, got {spec.candidate_factor}"
            )
        return spec

    def to_dict(self) -> dict:
        return {
            "num_keywords": self.num_keywords,
            "k": self.k,
            "radius": self.radius,
            "theta": self.theta,
            "top_l": self.top_l,
            "candidate_factor": self.candidate_factor,
        }


@dataclass(frozen=True)
class EngineSpec:
    """The ``[engine]`` section: offline-phase knobs shared by both backends.

    ``store = true`` packs the offline phase into a :mod:`repro.store` file
    once and cold-starts each backend's session from it (mmap attach instead
    of an in-process offline phase) — the replay itself is unchanged.
    """

    max_radius: int = 2
    thresholds: tuple = (0.1, 0.2, 0.3)
    damage_threshold: float = 1.0
    store: bool = False

    _KEYS = ("max_radius", "thresholds", "damage_threshold", "store")

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineSpec":
        payload = _require_mapping(payload, "[engine]")
        _reject_unknown(payload, cls._KEYS, "[engine]")
        max_radius = _typed(payload, "max_radius", int, "engine", cls.max_radius)
        if max_radius < 1:
            raise ScenarioError(f"engine.max_radius must be >= 1, got {max_radius}")
        raw = payload.get("thresholds", list(cls.thresholds))
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ScenarioError(f"engine.thresholds must be a non-empty list, got {raw!r}")
        thresholds = []
        for value in raw:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ScenarioError(
                    f"engine.thresholds entries must be numbers, got {value!r}"
                )
            thresholds.append(float(value))
        damage = _fraction(
            _typed(
                payload, "damage_threshold", (int, float), "engine", cls.damage_threshold
            ),
            "damage_threshold",
            "engine",
        )
        if damage == 0.0:
            raise ScenarioError("engine.damage_threshold must be in (0, 1], got 0")
        store = payload.get("store", cls.store)
        if not isinstance(store, bool):
            raise ScenarioError(f"engine.store must be a boolean, got {store!r}")
        return cls(
            max_radius=max_radius,
            thresholds=tuple(thresholds),
            damage_threshold=damage,
            store=store,
        )

    def to_dict(self) -> dict:
        return {
            "max_radius": self.max_radius,
            "thresholds": list(self.thresholds),
            "damage_threshold": self.damage_threshold,
            "store": self.store,
        }


@dataclass(frozen=True)
class GateSpec:
    """The ``[gates]`` section: what the scenario report must prove.

    ``require_equivalence`` demands bit-identical answers across backends
    for every trace operation (always on in the built-in catalog).
    ``min_nonempty_results`` guards against degenerate specs whose every
    query returns nothing — a scenario that measures an empty workload.
    """

    require_equivalence: bool = True
    min_nonempty_results: int = 1

    _KEYS = ("require_equivalence", "min_nonempty_results")

    @classmethod
    def from_dict(cls, payload: dict) -> "GateSpec":
        payload = _require_mapping(payload, "[gates]")
        _reject_unknown(payload, cls._KEYS, "[gates]")
        require = payload.get("require_equivalence", cls.require_equivalence)
        if not isinstance(require, bool):
            raise ScenarioError(
                f"gates.require_equivalence must be a boolean, got {require!r}"
            )
        minimum = _typed(
            payload, "min_nonempty_results", int, "gates", cls.min_nonempty_results
        )
        if minimum < 0:
            raise ScenarioError(
                f"gates.min_nonempty_results must be >= 0, got {minimum}"
            )
        return cls(require_equivalence=require, min_nonempty_results=minimum)

    def to_dict(self) -> dict:
        return {
            "require_equivalence": self.require_equivalence,
            "min_nonempty_results": self.min_nonempty_results,
        }


_SECTIONS = ("scenario", "graph", "probabilities", "trace", "queries", "engine", "gates")
_SCENARIO_KEYS = ("name", "description", "seed", "smoke")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-validated scenario: graph × probabilities × trace × gates."""

    name: str
    description: str = ""
    seed: int = 2024
    smoke: bool = False
    graph: GraphSpec = field(default_factory=GraphSpec)
    probabilities: ProbabilitySpec = field(default_factory=ProbabilitySpec)
    trace: TraceSpec = field(default_factory=TraceSpec)
    queries: QuerySpec = field(default_factory=QuerySpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    gates: GateSpec = field(default_factory=GateSpec)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Parse and validate a scenario document; unknown keys are rejected."""
        payload = _require_mapping(payload, "scenario document")
        _reject_unknown(payload, _SECTIONS, "scenario document")
        header = _require_mapping(payload.get("scenario", {}), "[scenario]")
        _reject_unknown(header, _SCENARIO_KEYS, "[scenario]")
        name = header.get("name")
        if not isinstance(name, str) or not name:
            raise ScenarioError("scenario.name must be a non-empty string")
        smoke = header.get("smoke", False)
        if not isinstance(smoke, bool):
            raise ScenarioError(f"scenario.smoke must be a boolean, got {smoke!r}")
        spec = cls(
            name=name,
            description=_typed(header, "description", str, "scenario", ""),
            seed=_typed(header, "seed", int, "scenario", 2024),
            smoke=smoke,
            graph=GraphSpec.from_dict(payload.get("graph", {})),
            probabilities=ProbabilitySpec.from_dict(payload.get("probabilities", {})),
            trace=TraceSpec.from_dict(payload.get("trace", {})),
            queries=QuerySpec.from_dict(payload.get("queries", {})),
            engine=EngineSpec.from_dict(payload.get("engine", {})),
            gates=GateSpec.from_dict(payload.get("gates", {})),
        )
        # Cross-section consistency: the engine only indexes communities up
        # to max_radius hops, so a wider query radius would fail at run time.
        if spec.queries.radius > spec.engine.max_radius:
            raise ScenarioError(
                f"queries.radius ({spec.queries.radius}) exceeds engine.max_radius "
                f"({spec.engine.max_radius}) in scenario {name!r}"
            )
        return spec

    def to_dict(self) -> dict:
        """The document form of the spec (``from_dict`` round-trips it)."""
        return {
            "scenario": {
                "name": self.name,
                "description": self.description,
                "seed": self.seed,
                "smoke": self.smoke,
            },
            "graph": self.graph.to_dict(),
            "probabilities": self.probabilities.to_dict(),
            "trace": self.trace.to_dict(),
            "queries": self.queries.to_dict(),
            "engine": self.engine.to_dict(),
            "gates": self.gates.to_dict(),
        }

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """Return a copy with top-level fields replaced (sections included)."""
        return dataclasses.replace(self, **changes)


def load_scenario_file(path: PathLike) -> ScenarioSpec:
    """Load one scenario spec from a ``.toml`` or ``.json`` file.

    TOML requires :mod:`tomllib` (Python >= 3.11); on 3.10 use the JSON
    form — the two documents carry identical structure.
    """
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"scenario file not found: {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - Python 3.10 only
            raise ScenarioError(
                "TOML scenario files need Python >= 3.11 (tomllib); "
                f"convert {path.name} to JSON for this interpreter"
            ) from exc
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid TOML in {path}: {exc}") from exc
    elif path.suffix.lower() == ".json":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON in {path}: {exc}") from exc
    else:
        raise ScenarioError(
            f"scenario files must end in .toml or .json, got {path.name!r}"
        )
    return ScenarioSpec.from_dict(document)


def scenario_from_json(payload: Union[str, dict]) -> ScenarioSpec:
    """Parse a scenario spec from a JSON string or an already-decoded dict."""
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
    return ScenarioSpec.from_dict(payload)


__all__ = [
    "GRAPH_RECIPES",
    "PROBABILITY_MODELS",
    "TRACE_KINDS",
    "GraphSpec",
    "ProbabilitySpec",
    "TraceSpec",
    "QuerySpec",
    "EngineSpec",
    "GateSpec",
    "ScenarioSpec",
    "load_scenario_file",
    "scenario_from_json",
]
