"""Validation of ``BENCH_*.json`` documents against the checked-in schema.

The repo pins a JSON-schema file next to this module
(``bench_record.schema.json``) describing the envelope every benchmark
document must carry: ``bench``, ``recorded_unix``, ``cpu_count``, ``seed``,
``speedup`` and ``equivalence`` at the top level, plus per-scenario sections
for ``BENCH_scenarios.json``.  CI's ``bench-schema`` step runs every
``BENCH_*.json`` in the repo through :func:`validate_bench_document` (via
``repro scenario validate``) so a recorder that drifts from the contract
fails the pull request, not a reader six months later.

The container may not ship the ``jsonschema`` package, so
:func:`validate_instance` implements the small, self-contained subset of
JSON Schema the pinned file actually uses: ``type``, ``required``,
``properties``, ``additionalProperties`` (boolean or schema), ``items``,
``enum``, ``minimum`` and ``maximum``.  Keys outside that subset (``title``,
``description``, ``$schema``…) are ignored, exactly as an annotating
validator would.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import ScenarioError

#: The pinned schema shipped with the package.
SCHEMA_PATH = Path(__file__).with_name("bench_record.schema.json")

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def load_bench_schema() -> dict:
    """Load the packaged BENCH-record schema."""
    try:
        return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:  # pragma: no cover - packaging error
        raise ScenarioError(f"bench schema missing: {SCHEMA_PATH}") from exc


def _type_ok(value, type_name: str) -> bool:
    expected = _TYPES.get(type_name)
    if expected is None:
        raise ScenarioError(f"schema uses unsupported type {type_name!r}")
    if isinstance(value, bool) and type_name in ("integer", "number"):
        return False  # bool is an int in Python but not in JSON Schema
    return isinstance(value, expected)


def validate_instance(instance, schema: dict, path: str = "$") -> list:
    """Validate ``instance`` against the supported JSON-schema subset.

    Returns a list of human-readable error strings (empty = valid); it never
    raises on invalid *data*, only on schema constructs outside the subset.
    """
    errors: list = []
    type_name = schema.get("type")
    if type_name is not None and not _type_ok(instance, type_name):
        errors.append(
            f"{path}: expected {type_name}, got {type(instance).__name__}"
        )
        return errors  # structure is wrong; deeper checks would be noise

    enum = schema.get("enum")
    if enum is not None and instance not in enum:
        errors.append(f"{path}: {instance!r} is not one of {enum}")

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:
            errors.append(f"{path}: {instance} is below minimum {minimum}")
        maximum = schema.get("maximum")
        if maximum is not None and instance > maximum:
            errors.append(f"{path}: {instance} is above maximum {maximum}")

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required field {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            key_path = f"{path}.{key}"
            if key in properties:
                errors.extend(validate_instance(value, properties[key], key_path))
            elif additional is False:
                errors.append(f"{path}: unexpected field {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate_instance(value, additional, key_path))

    if isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                errors.extend(validate_instance(value, items, f"{path}[{index}]"))

    return errors


def validate_bench_document(document, schema: Optional[dict] = None) -> list:
    """Errors for one parsed BENCH document (empty list = conforming)."""
    return validate_instance(document, schema or load_bench_schema())


def validate_bench_file(path: Union[str, Path], schema: Optional[dict] = None) -> list:
    """Errors for one ``BENCH_*.json`` file on disk (empty list = conforming)."""
    path = Path(path)
    if not path.exists():
        return [f"{path}: file not found"]
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc})"]
    return [
        f"{path.name} {error}"
        for error in validate_bench_document(document, schema)
    ]


__all__ = [
    "SCHEMA_PATH",
    "load_bench_schema",
    "validate_bench_document",
    "validate_bench_file",
    "validate_instance",
]
