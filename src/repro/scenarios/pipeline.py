"""End-to-end scenario execution: build → trace replay → gates, per backend.

:func:`run_scenario` is the harness core.  For one
:class:`~repro.scenarios.spec.ScenarioSpec` it materialises the graph and
trace once, then replays the *identical* operation sequence through
:class:`~repro.service.facade.CommunityService` twice — one session on the
``reference`` backend, one on ``fast`` — and compares every response on the
wire (timing-free canonical JSON, the same idiom as the cross-backend
lifecycle suite).  The scenario's gates then judge the outcome:

* ``require_equivalence`` — every operation's wire document bit-identical
  across backends (update reports compared modulo the backend-specific
  overlay fields, which the reference backend does not have);
* ``min_nonempty_results`` — at least this many queries returned a
  non-empty community list, guarding against degenerate specs that would
  "pass" by measuring nothing.

The result is a :class:`ScenarioReport` — a plain JSON-able value carrying
the spec, graph/trace shape, per-backend timings, the speedup, and the gate
verdicts.  ``BENCH_scenarios.json`` is a collection of these
(:mod:`repro.scenarios.report`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ScenarioError
from repro.graph.io import graph_to_dict
from repro.scenarios.generators import build_scenario_graph
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.traces import OP_DTOPL, OP_TOPL, OP_UPDATE, synthesize_trace
from repro.service.facade import CommunityService
from repro.service.schema import BuildRequest, DToplRequest, ToplRequest, UpdateRequest

#: Backends every scenario runs on, in run order (reference first: it is
#: the ground truth the fast backend is compared against).
BACKENDS = ("reference", "fast")

#: Update-report fields that legitimately differ across backends (the
#: reference backend has no CSR overlay to dirty or compact).
_BACKEND_SPECIFIC_REPORT_FIELDS = ("overlay_dirt_ratio", "compacted", "applied_mode")

_TIMING_FIELDS = ("elapsed_seconds", "elapsed_ms", "queries_per_second")


def _strip_timings(node) -> None:
    if isinstance(node, dict):
        for key in _TIMING_FIELDS:
            node.pop(key, None)
        for value in node.values():
            _strip_timings(value)
    elif isinstance(node, list):
        for value in node:
            _strip_timings(value)


def _wire(response) -> dict:
    """Timing- and session-free canonical wire form, through real JSON text."""
    document = json.loads(json.dumps(response.to_json()))
    document.pop("session", None)
    _strip_timings(document)
    return document


def _comparable(kind: str, document: dict) -> dict:
    if kind == OP_UPDATE:
        report = document.get("report", {})
        for key in _BACKEND_SPECIFIC_REPORT_FIELDS:
            report.pop(key, None)
    elif kind == "build":
        # The engine summary names its backend (that is the one thing the
        # two sessions are *supposed* to disagree on).
        engine = document.get("engine", {})
        engine.pop("backend", None)
        engine.pop("kernels", None)
        engine.get("config", {}).pop("backend", None)
        engine.get("config", {}).pop("kernel_tier", None)
    return document


@dataclass(frozen=True)
class BackendRun:
    """One backend's replay measurements (all timings wall-clock seconds)."""

    backend: str
    build_seconds: float
    trace_seconds: float
    final_epoch: int
    final_num_edges: int
    nonempty_results: int

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.trace_seconds

    def to_json(self) -> dict:
        return {
            "backend": self.backend,
            "build_seconds": round(self.build_seconds, 6),
            "trace_seconds": round(self.trace_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "final_epoch": self.final_epoch,
            "final_num_edges": self.final_num_edges,
            "nonempty_results": self.nonempty_results,
        }


@dataclass(frozen=True)
class ScenarioReport:
    """The machine-readable outcome of one scenario run.

    ``to_json`` / ``from_json`` round-trip exactly; the JSON form is what
    lands in ``BENCH_scenarios.json`` (one section per scenario) and what
    the ``bench-schema`` CI step validates.
    """

    scenario: str
    seed: int
    smoke: bool
    recorded_unix: int
    cpu_count: int
    speedup: float
    equivalence: bool
    spec: dict
    graph: dict
    trace: dict
    backends: dict
    gates: dict
    first_mismatch: Optional[int] = None

    _FIELDS = (
        "scenario",
        "seed",
        "smoke",
        "recorded_unix",
        "cpu_count",
        "speedup",
        "equivalence",
        "spec",
        "graph",
        "trace",
        "backends",
        "gates",
        "first_mismatch",
    )

    @property
    def passed(self) -> bool:
        """Whether every declared gate held."""
        return bool(self.gates.get("passed", False))

    def to_json(self) -> dict:
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "smoke": self.smoke,
            "recorded_unix": self.recorded_unix,
            "cpu_count": self.cpu_count,
            "speedup": self.speedup,
            "equivalence": self.equivalence,
            "spec": self.spec,
            "graph": self.graph,
            "trace": self.trace,
            "backends": self.backends,
            "gates": self.gates,
        }
        if self.first_mismatch is not None:
            payload["first_mismatch"] = self.first_mismatch
        return payload

    @classmethod
    def from_json(cls, payload) -> "ScenarioReport":
        if not isinstance(payload, dict):
            raise ScenarioError(
                f"scenario report must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise ScenarioError(
                f"scenario report carries unknown fields {sorted(unknown)}"
            )
        missing = {name for name in cls._FIELDS if name != "first_mismatch"} - set(
            payload
        )
        if missing:
            raise ScenarioError(
                f"scenario report is missing fields {sorted(missing)}"
            )
        return cls(
            scenario=str(payload["scenario"]),
            seed=int(payload["seed"]),
            smoke=bool(payload["smoke"]),
            recorded_unix=int(payload["recorded_unix"]),
            cpu_count=int(payload["cpu_count"]),
            speedup=float(payload["speedup"]),
            equivalence=bool(payload["equivalence"]),
            spec=dict(payload["spec"]),
            graph=dict(payload["graph"]),
            trace=dict(payload["trace"]),
            backends=dict(payload["backends"]),
            gates=dict(payload["gates"]),
            first_mismatch=payload.get("first_mismatch"),
        )


@dataclass
class _Replay:
    """Accumulator for one backend's pass over the trace."""

    run: BackendRun
    wire_documents: list = field(default_factory=list)


def _replay_backend(
    service: CommunityService,
    backend: str,
    spec: ScenarioSpec,
    graph_doc: dict,
    trace,
    store_path: Optional[str] = None,
) -> _Replay:
    session = f"scenario:{spec.name}:{backend}"
    started = time.perf_counter()
    if store_path is not None:
        # engine.store = true: cold-start from the shared packed store
        # (the backend stays a per-session override; the trace is unchanged).
        build_request = BuildRequest(
            session=session,
            store_path=store_path,
            config={"backend": backend},
            replace=True,
        )
    else:
        build_request = BuildRequest(
            session=session,
            graph=graph_doc,
            config={
                "backend": backend,
                "max_radius": spec.engine.max_radius,
                "thresholds": list(spec.engine.thresholds),
            },
            validate=False,
            replace=True,
        )
    build = service.build(build_request)
    build_seconds = time.perf_counter() - started

    wire_documents = [("build", _comparable("build", _wire(build)))]
    nonempty = 0
    final_epoch = build.epoch
    final_edges = int(build.engine.get("graph", {}).get("num_edges", 0))

    started = time.perf_counter()
    for op in trace:
        if op.kind == OP_TOPL:
            response = service.topl(ToplRequest(session=session, query=op.query))
            nonempty += 1 if response.communities else 0
        elif op.kind == OP_DTOPL:
            response = service.dtopl(DToplRequest(session=session, query=op.query))
            nonempty += 1 if response.communities else 0
        elif op.kind == OP_UPDATE:
            response = service.update(
                UpdateRequest(
                    session=session,
                    edits=tuple(op.edits),
                    damage_threshold=spec.engine.damage_threshold,
                )
            )
            final_edges = int(response.graph.get("num_edges", final_edges))
        else:  # pragma: no cover - trace synthesis only emits the three kinds
            raise ScenarioError(f"unknown trace op kind {op.kind!r}")
        final_epoch = response.epoch
        wire_documents.append((op.kind, _comparable(op.kind, _wire(response))))
    trace_seconds = time.perf_counter() - started

    service.drop_session(session)
    return _Replay(
        run=BackendRun(
            backend=backend,
            build_seconds=build_seconds,
            trace_seconds=trace_seconds,
            final_epoch=final_epoch,
            final_num_edges=final_edges,
            nonempty_results=nonempty,
        ),
        wire_documents=wire_documents,
    )


def run_scenario(
    spec: ScenarioSpec,
    service: Optional[CommunityService] = None,
    enforce_gates: bool = False,
) -> ScenarioReport:
    """Execute one scenario end-to-end on both backends and gate the result.

    Parameters
    ----------
    spec:
        The validated scenario.
    service:
        Optional shared :class:`CommunityService` (sessions are namespaced
        per scenario and backend, and dropped on completion).
    enforce_gates:
        When true, a failed gate raises :class:`ScenarioError` instead of
        only being recorded in the report — this is what the CI smoke job
        and the pytest gates use.
    """
    service = service if service is not None else CommunityService()
    graph = build_scenario_graph(spec)
    trace = synthesize_trace(graph, spec)
    graph_doc = graph_to_dict(graph)

    store_dir = None
    store_path: Optional[str] = None
    if spec.engine.store:
        # Pack the offline phase once; both backend sessions cold-start from
        # the same store file (mmap attach instead of re-running it).
        import tempfile

        from repro.core.config import EngineConfig
        from repro.core.engine import InfluentialCommunityEngine
        from repro.store import pack_store

        store_dir = tempfile.TemporaryDirectory(prefix="repro-scenario-store-")
        store_path = os.path.join(store_dir.name, "scenario.repro-store")
        packed = InfluentialCommunityEngine.build(
            graph,
            config=EngineConfig(
                max_radius=spec.engine.max_radius,
                thresholds=tuple(spec.engine.thresholds),
            ),
            validate=False,
        )
        pack_store(packed, store_path)

    try:
        replays = {
            backend: _replay_backend(
                service, backend, spec, graph_doc, trace, store_path=store_path
            )
            for backend in BACKENDS
        }
    finally:
        if store_dir is not None:
            store_dir.cleanup()

    reference, fast = (replays[b] for b in BACKENDS)
    first_mismatch: Optional[int] = None
    for index, ((_, ours), (_, theirs)) in enumerate(
        zip(reference.wire_documents, fast.wire_documents)
    ):
        if ours != theirs:
            first_mismatch = index
            break
    equivalence = first_mismatch is None

    nonempty = reference.run.nonempty_results
    equivalence_ok = equivalence or not spec.gates.require_equivalence
    nonempty_ok = nonempty >= spec.gates.min_nonempty_results
    gates = {
        "require_equivalence": spec.gates.require_equivalence,
        "equivalence_ok": equivalence_ok,
        "min_nonempty_results": spec.gates.min_nonempty_results,
        "nonempty_results": nonempty,
        "nonempty_ok": nonempty_ok,
        "passed": equivalence_ok and nonempty_ok,
    }

    fast_total = fast.run.total_seconds
    speedup = reference.run.total_seconds / fast_total if fast_total > 0 else 0.0

    report = ScenarioReport(
        scenario=spec.name,
        seed=spec.seed,
        smoke=spec.smoke,
        recorded_unix=int(time.time()),
        cpu_count=os.cpu_count() or 1,
        speedup=round(speedup, 3),
        equivalence=equivalence,
        spec=spec.to_dict(),
        graph={
            "name": graph.name,
            "recipe": spec.graph.recipe,
            "num_vertices": graph.num_vertices(),
            "num_edges": graph.num_edges(),
            "keyword_domain": len(graph.keyword_domain()),
        },
        trace=trace.summary(),
        backends={backend: replays[backend].run.to_json() for backend in BACKENDS},
        gates=gates,
        first_mismatch=first_mismatch,
    )
    if enforce_gates and not report.passed:
        failures = []
        if not equivalence_ok:
            failures.append(
                f"backends diverged at trace operation {first_mismatch}"
            )
        if not nonempty_ok:
            failures.append(
                f"only {nonempty} non-empty results "
                f"(gate requires >= {spec.gates.min_nonempty_results})"
            )
        raise ScenarioError(
            f"scenario {spec.name!r} failed its gates: " + "; ".join(failures)
        )
    return report


__all__ = ["BACKENDS", "BackendRun", "ScenarioReport", "run_scenario"]
