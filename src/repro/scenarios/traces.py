"""Deterministic traffic-trace synthesis for scenarios.

A :class:`TrafficTrace` is the concrete operation sequence a scenario
replays against both backends: TopL / DTopL queries interleaved with edge
edit batches.  Synthesis is a pure function of ``(graph, spec)`` — the same
scenario spec always produces the same trace, operation for operation, which
is what makes the cross-backend equivalence gate meaningful and the
determinism test (:mod:`tests.scenarios.test_spec`) possible.

Three traffic shapes are supported (``trace.kind``):

``bursty``
    Queries arrive in runs of ``burst_length`` repeats of one shape —
    warm-cache, production-dashboard traffic.
``hot_key_skew``
    Keyword sets come from a pool of ``hot_keys`` shapes under a harmonic
    (1/rank) skew — a few queries dominate, the tail stays cold.
``adversarial_churn``
    Every edit batch churns the same high-degree focus neighbourhood while
    the queries keep hitting the whole graph — worst case for incremental
    index maintenance and caches.

Edit batches are generated against an *evolving copy* of the graph (each
batch is applied before the next is drawn), so the whole trace is
sequentially valid: replaying it through
:class:`~repro.service.facade.CommunityService` never trips
``DYNAMIC_UPDATE_INVALID``.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.dynamic.updates import UpdateBatch, random_update_batch
from repro.exceptions import ScenarioError
from repro.graph.social_network import SocialNetwork
from repro.query.params import DTopLQuery, TopLQuery, make_dtopl_query, make_topl_query
from repro.scenarios.spec import ScenarioSpec
from repro.service.schema import query_to_wire

#: Operation kinds a trace step can carry.
OP_TOPL = "topl"
OP_DTOPL = "dtopl"
OP_UPDATE = "update"


@dataclass(frozen=True)
class TraceOp:
    """One trace step: a query (``topl`` / ``dtopl``) or an edit batch."""

    kind: str
    query: Optional[Union[TopLQuery, DTopLQuery]] = None
    edits: Optional[UpdateBatch] = None

    def to_json(self) -> dict:
        """Canonical JSON form (used for fingerprinting and reports)."""
        if self.kind == OP_UPDATE:
            return {"op": self.kind, "edits": self.edits.to_json()}
        return {"op": self.kind, "query": query_to_wire(self.query)}


@dataclass(frozen=True)
class TrafficTrace:
    """The full synthesized operation sequence of one scenario."""

    kind: str
    seed: int
    ops: tuple

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @property
    def num_updates(self) -> int:
        return sum(1 for op in self.ops if op.kind == OP_UPDATE)

    @property
    def num_topl(self) -> int:
        return sum(1 for op in self.ops if op.kind == OP_TOPL)

    @property
    def num_dtopl(self) -> int:
        return sum(1 for op in self.ops if op.kind == OP_DTOPL)

    @property
    def num_queries(self) -> int:
        return self.num_topl + self.num_dtopl

    @property
    def num_edits(self) -> int:
        return sum(len(op.edits) for op in self.ops if op.kind == OP_UPDATE)

    def to_json(self) -> dict:
        """Canonical JSON form of the whole trace."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "ops": [op.to_json() for op in self.ops],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON — equal iff the traces are equal."""
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> dict:
        """Operation counts for reports."""
        return {
            "kind": self.kind,
            "operations": len(self.ops),
            "queries": self.num_queries,
            "topl": self.num_topl,
            "dtopl": self.num_dtopl,
            "updates": self.num_updates,
            "edits": self.num_edits,
        }


def _spread(total: int, picks: int):
    """Yield ``picks`` evenly-spread positions in ``range(total)`` (Bresenham)."""
    for index in range(total):
        if (index * picks) // total != ((index + 1) * picks) // total:
            yield index


def _harmonic_choice(rng: random.Random, count: int) -> int:
    """Pick an index in ``range(count)`` with probability ∝ 1 / (index + 1)."""
    weights = [1.0 / (rank + 1) for rank in range(count)]
    threshold = rng.random() * sum(weights)
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if threshold < cumulative:
            return index
    return count - 1


def _focus_vertex(graph: SocialNetwork):
    """The deterministic churn target: the highest-degree vertex."""
    return max(graph.vertices(), key=lambda v: (graph.degree(v), str(v)))


def synthesize_trace(graph: SocialNetwork, spec: ScenarioSpec) -> TrafficTrace:
    """Build the scenario's operation sequence from its spec (deterministic).

    ``graph`` is the already-materialised scenario network
    (:func:`~repro.scenarios.generators.build_scenario_graph`); it is not
    mutated — edit batches are drawn against an internal evolving copy.
    """
    trace_spec, query_spec = spec.trace, spec.queries
    operations = trace_spec.operations
    num_updates = min(operations, round(operations * trace_spec.update_share))
    num_queries = operations - num_updates
    num_dtopl = min(num_queries, round(num_queries * trace_spec.dtopl_share))

    domain = sorted(graph.keyword_domain())
    if not domain:
        raise ScenarioError(
            f"scenario {spec.name!r} produced a graph with no keywords"
        )
    sample_size = min(query_spec.num_keywords, len(domain))

    query_rng = random.Random(f"{spec.seed}:queries")
    update_rng = random.Random(f"{spec.seed}:updates")

    def sample_keywords() -> frozenset:
        return frozenset(query_rng.sample(domain, sample_size))

    # Pre-draw the hot pool for hot_key_skew so pool membership does not
    # depend on how many queries precede the first draw.
    hot_pool = [sample_keywords() for _ in range(trace_spec.hot_keys)]

    update_slots = set(_spread(operations, num_updates))
    dtopl_slots = set(_spread(num_queries, num_dtopl))

    focus = _focus_vertex(graph) if trace_spec.kind == "adversarial_churn" else None
    evolving = graph.copy()

    def next_batch() -> UpdateBatch:
        if focus is not None and evolving.has_vertex(focus):
            batch = random_update_batch(
                evolving,
                trace_spec.edits_per_update,
                rng=update_rng,
                insert_ratio=0.5,
                focus=focus,
                focus_radius=trace_spec.focus_radius,
            )
        else:
            batch = random_update_batch(
                evolving,
                trace_spec.edits_per_update,
                rng=update_rng,
                insert_ratio=0.6,
                grow_probability=0.1,
                keyword_pool=domain,
            )
        batch.apply_to(evolving)
        return batch

    def make_query(keywords: frozenset, diversified: bool):
        if diversified:
            return make_dtopl_query(
                keywords,
                k=query_spec.k,
                radius=query_spec.radius,
                theta=query_spec.theta,
                top_l=query_spec.top_l,
                candidate_factor=query_spec.candidate_factor,
            )
        return make_topl_query(
            keywords,
            k=query_spec.k,
            radius=query_spec.radius,
            theta=query_spec.theta,
            top_l=query_spec.top_l,
        )

    ops = []
    query_index = 0
    burst_keywords: Optional[frozenset] = None
    for position in range(operations):
        if position in update_slots:
            ops.append(TraceOp(kind=OP_UPDATE, edits=next_batch()))
            continue
        if trace_spec.kind == "bursty":
            if query_index % trace_spec.burst_length == 0:
                burst_keywords = sample_keywords()
            keywords = burst_keywords
        elif trace_spec.kind == "hot_key_skew":
            keywords = hot_pool[_harmonic_choice(query_rng, len(hot_pool))]
        else:  # adversarial_churn: uniform fresh queries over the churned graph
            keywords = sample_keywords()
        diversified = query_index in dtopl_slots
        ops.append(
            TraceOp(
                kind=OP_DTOPL if diversified else OP_TOPL,
                query=make_query(keywords, diversified),
            )
        )
        query_index += 1

    return TrafficTrace(kind=trace_spec.kind, seed=spec.seed, ops=tuple(ops))


__all__ = [
    "OP_DTOPL",
    "OP_TOPL",
    "OP_UPDATE",
    "TraceOp",
    "TrafficTrace",
    "synthesize_trace",
]
