"""Declarative multi-dataset scenario screening.

A *scenario* is a declarative document — graph recipe × probability model ×
traffic trace × gates — that the harness executes end-to-end on both
engine backends and reduces to a machine-readable report.  The package is
the screening layer of the repo: the built-in catalog crosses the paper's
dataset families with influence-probability models and production traffic
shapes, every run re-proves cross-backend equivalence, and the results land
in ``BENCH_scenarios.json`` where CI's schema gate keeps them honest.

Layout
------
:mod:`~repro.scenarios.spec`
    The validated spec types and the ``.toml`` / ``.json`` loader.
:mod:`~repro.scenarios.generators`
    Graph recipes and probability models.
:mod:`~repro.scenarios.traces`
    Deterministic mixed read/update trace synthesis.
:mod:`~repro.scenarios.pipeline`
    End-to-end execution (build → replay → gates) and the report value.
:mod:`~repro.scenarios.catalog`
    The built-in scenario catalog (smoke + nightly tiers).
:mod:`~repro.scenarios.sharded`
    Sharded replay mode: the same trace on a sharded facade, gated
    bit-identical to the unsharded replay.
:mod:`~repro.scenarios.report`
    ``BENCH_scenarios.json`` emission and ASCII summaries.
:mod:`~repro.scenarios.bench_schema`
    The checked-in BENCH schema and its dependency-free validator.
"""

from repro.scenarios.bench_schema import (
    SCHEMA_PATH,
    load_bench_schema,
    validate_bench_document,
    validate_bench_file,
    validate_instance,
)
from repro.scenarios.catalog import catalog, get_scenario, scenario_names, smoke_catalog
from repro.scenarios.generators import apply_probability_model, build_scenario_graph
from repro.scenarios.pipeline import BACKENDS, BackendRun, ScenarioReport, run_scenario
from repro.scenarios.sharded import ShardedReplayReport, run_scenario_sharded
from repro.scenarios.report import (
    BENCH_NAME,
    format_scenario_table,
    load_scenarios_document,
    scenarios_document,
    write_scenarios_document,
)
from repro.scenarios.spec import (
    GRAPH_RECIPES,
    PROBABILITY_MODELS,
    TRACE_KINDS,
    EngineSpec,
    GateSpec,
    GraphSpec,
    ProbabilitySpec,
    QuerySpec,
    ScenarioSpec,
    TraceSpec,
    load_scenario_file,
    scenario_from_json,
)
from repro.scenarios.traces import TraceOp, TrafficTrace, synthesize_trace

__all__ = [
    "BACKENDS",
    "BENCH_NAME",
    "GRAPH_RECIPES",
    "PROBABILITY_MODELS",
    "SCHEMA_PATH",
    "TRACE_KINDS",
    "BackendRun",
    "EngineSpec",
    "GateSpec",
    "GraphSpec",
    "ProbabilitySpec",
    "QuerySpec",
    "ScenarioReport",
    "ScenarioSpec",
    "TraceOp",
    "TraceSpec",
    "TrafficTrace",
    "apply_probability_model",
    "build_scenario_graph",
    "catalog",
    "format_scenario_table",
    "get_scenario",
    "load_bench_schema",
    "load_scenario_file",
    "load_scenarios_document",
    "run_scenario",
    "run_scenario_sharded",
    "ShardedReplayReport",
    "scenario_from_json",
    "scenario_names",
    "scenarios_document",
    "smoke_catalog",
    "synthesize_trace",
    "validate_bench_document",
    "validate_bench_file",
    "validate_instance",
    "write_scenarios_document",
]
