"""Scenario run reporting: ``BENCH_scenarios.json`` + ASCII summaries.

:func:`scenarios_document` folds a list of
:class:`~repro.scenarios.pipeline.ScenarioReport` values into one BENCH
document: the uniform envelope
(:func:`repro.workloads.reporting.bench_envelope` — headline ``speedup`` is
the median across scenarios, ``equivalence`` the conjunction) plus a
``scenarios`` object with one section per scenario.  The document validates
against ``bench_record.schema.json``; :func:`load_scenarios_document` is the
strict reader the round-trip test and the report CLI use.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Union

from repro.exceptions import ScenarioError
from repro.scenarios.bench_schema import validate_bench_document
from repro.scenarios.pipeline import ScenarioReport
from repro.workloads.reporting import bench_envelope, format_table

#: ``bench`` field of the scenarios document.
BENCH_NAME = "scenarios"


def scenarios_document(reports) -> dict:
    """Fold scenario reports into one BENCH_scenarios.json document."""
    reports = list(reports)
    if not reports:
        raise ScenarioError("cannot build a scenarios document from zero reports")
    document = bench_envelope(
        BENCH_NAME,
        seed=reports[0].seed,
        speedup_factor=statistics.median(report.speedup for report in reports),
        equivalence=all(report.equivalence for report in reports),
    )
    document["gates_passed"] = all(report.passed for report in reports)
    document["scenarios"] = {
        report.scenario: report.to_json() for report in reports
    }
    return document


def write_scenarios_document(reports, path: Union[str, Path]) -> dict:
    """Write the document to ``path`` (pretty-printed, trailing newline)."""
    document = scenarios_document(reports)
    errors = validate_bench_document(document)
    if errors:  # pragma: no cover - the writer emitting bad documents is a bug
        raise ScenarioError(
            "refusing to write a non-conforming scenarios document: "
            + "; ".join(errors)
        )
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document


def load_scenarios_document(path: Union[str, Path]) -> list:
    """Read a BENCH_scenarios.json back into :class:`ScenarioReport` values."""
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"scenarios document not found: {path}")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"invalid JSON in {path}: {exc}") from exc
    errors = validate_bench_document(document)
    if errors:
        raise ScenarioError(
            f"{path} does not conform to the BENCH schema: " + "; ".join(errors)
        )
    if document.get("bench") != BENCH_NAME:
        raise ScenarioError(
            f"{path} is a {document.get('bench')!r} document, expected {BENCH_NAME!r}"
        )
    sections = document.get("scenarios", {})
    return [ScenarioReport.from_json(section) for section in sections.values()]


def format_scenario_table(reports, title: str = "scenario screening") -> str:
    """ASCII summary of scenario runs (one row per scenario)."""
    rows = []
    for report in sorted(reports, key=lambda r: r.scenario):
        reference = report.backends.get("reference", {})
        fast = report.backends.get("fast", {})
        rows.append(
            {
                "scenario": report.scenario,
                "recipe": report.graph.get("recipe", "?"),
                "model": report.spec.get("probabilities", {}).get("model", "?"),
                "trace": report.trace.get("kind", "?"),
                "|V|": report.graph.get("num_vertices", 0),
                "|E|": report.graph.get("num_edges", 0),
                "ops": report.trace.get("operations", 0),
                "ref_s": round(float(reference.get("total_seconds", 0.0)), 3),
                "fast_s": round(float(fast.get("total_seconds", 0.0)), 3),
                "speedup": report.speedup,
                "equiv": "yes" if report.equivalence else "NO",
                "gates": "pass" if report.passed else "FAIL",
            }
        )
    return format_table(rows, title=title)


__all__ = [
    "BENCH_NAME",
    "format_scenario_table",
    "load_scenarios_document",
    "scenarios_document",
    "write_scenarios_document",
]
