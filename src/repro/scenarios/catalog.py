"""The built-in scenario catalog.

Seven screening scenarios crossing the generator recipes with the
probability models and traffic shapes — the declarative analogue of the
paper's Table II/III grid, sized for CI.  Four are marked ``smoke`` and run
on every pull request (the ``scenario-smoke`` job); the remaining three
join them in the nightly full-catalog run.

Every entry is a plain document validated through
:meth:`~repro.scenarios.spec.ScenarioSpec.from_dict`, so the catalog
exercises exactly the same parsing path as user-supplied ``.toml`` /
``.json`` scenario files — there is no privileged internal constructor.

Adding a scenario is an append here (plus a row in ``docs/scenarios.md``);
keep smoke entries small — the PR gate budget is a few seconds per
scenario, not minutes.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ScenarioError
from repro.scenarios.spec import ScenarioSpec

#: The catalog source documents (see module docstring before editing).
_CATALOG_DOCUMENTS = (
    {
        "scenario": {
            "name": "planted-wc-bursty",
            "description": (
                "Planted communities under weighted-cascade probabilities, "
                "bursty dashboard traffic"
            ),
            "seed": 101,
            "smoke": True,
        },
        "graph": {
            "recipe": "planted",
            "num_vertices": 220,
            "keyword_domain": 12,
            "params": {"communities": 5, "intra_probability": 0.3},
        },
        "probabilities": {"model": "weighted_cascade", "scale": 1.0},
        "trace": {"kind": "bursty", "operations": 18, "burst_length": 3},
        "queries": {"num_keywords": 4, "k": 3, "radius": 2, "theta": 0.01, "top_l": 3},
        "gates": {"require_equivalence": True, "min_nonempty_results": 3},
    },
    {
        "scenario": {
            "name": "powerlaw-tri-hotkey",
            "description": (
                "Barabási–Albert heavy tail under trivalency probabilities, "
                "hot-key-skewed query stream"
            ),
            "seed": 102,
            "smoke": True,
        },
        "graph": {
            "recipe": "power_law",
            "num_vertices": 240,
            "keyword_domain": 12,
            "params": {"edges_per_vertex": 4},
        },
        "probabilities": {"model": "trivalency"},
        "trace": {"kind": "hot_key_skew", "operations": 18, "hot_keys": 4},
        "queries": {"num_keywords": 4, "k": 3, "radius": 2, "theta": 0.005, "top_l": 3},
        "gates": {"require_equivalence": True, "min_nonempty_results": 3},
    },
    {
        "scenario": {
            "name": "smallworld-asgen-bursty",
            "description": (
                "Newman–Watts–Strogatz ring with generated probabilities, "
                "bursty traffic with a diversified tail"
            ),
            "seed": 103,
            "smoke": True,
        },
        "graph": {
            "recipe": "small_world",
            "num_vertices": 200,
            "keyword_domain": 10,
            "params": {"ring_neighbors": 6, "shortcut_probability": 0.2},
        },
        "probabilities": {"model": "as_generated"},
        "trace": {"kind": "bursty", "operations": 18, "dtopl_share": 0.35},
        "queries": {"num_keywords": 3, "k": 3, "radius": 2, "theta": 0.1, "top_l": 3},
        "gates": {"require_equivalence": True, "min_nonempty_results": 3},
    },
    {
        "scenario": {
            "name": "bipartite-wc-churn",
            "description": (
                "Two-mode graph with sparse triangle closure, weighted "
                "cascade, adversarial churn around the hottest vertex"
            ),
            "seed": 104,
            "smoke": True,
        },
        "graph": {
            "recipe": "bipartite",
            "num_vertices": 200,
            "keyword_domain": 10,
            "params": {"edges_per_right": 3, "closure_probability": 0.35},
        },
        "probabilities": {"model": "weighted_cascade", "scale": 1.0},
        "trace": {
            "kind": "adversarial_churn",
            "operations": 18,
            "update_share": 0.25,
            "edits_per_update": 5,
        },
        "queries": {"num_keywords": 4, "k": 3, "radius": 2, "theta": 0.01, "top_l": 3},
        "gates": {"require_equivalence": True, "min_nonempty_results": 1},
    },
    {
        "scenario": {
            "name": "dblp-tri-churn",
            "description": (
                "DBLP-style co-authorship cliques under trivalency, "
                "adversarial churn (nightly)"
            ),
            "seed": 105,
        },
        "graph": {"recipe": "dblp_like", "num_vertices": 300, "keyword_domain": 14},
        "probabilities": {"model": "trivalency"},
        "trace": {
            "kind": "adversarial_churn",
            "operations": 24,
            "update_share": 0.2,
            "edits_per_update": 8,
        },
        "queries": {"num_keywords": 4, "k": 3, "radius": 2, "theta": 0.005, "top_l": 5},
        "gates": {"require_equivalence": True, "min_nonempty_results": 5},
    },
    {
        "scenario": {
            "name": "amazon-wc-hotkey",
            "description": (
                "Amazon-style co-purchase backbone under weighted cascade, "
                "hot-key-skewed reads (nightly)"
            ),
            "seed": 106,
        },
        "graph": {"recipe": "amazon_like", "num_vertices": 400, "keyword_domain": 14},
        "probabilities": {"model": "weighted_cascade", "scale": 1.0},
        "trace": {"kind": "hot_key_skew", "operations": 30, "hot_keys": 6},
        "queries": {"num_keywords": 4, "k": 3, "radius": 2, "theta": 0.01, "top_l": 5},
        "gates": {"require_equivalence": True, "min_nonempty_results": 5},
    },
    {
        "scenario": {
            "name": "erdosrenyi-asgen-bursty",
            "description": (
                "G(n, p) no-structure control with generated probabilities, "
                "bursty traffic (nightly)"
            ),
            "seed": 107,
        },
        "graph": {
            "recipe": "erdos_renyi",
            "num_vertices": 320,
            "keyword_domain": 12,
            "params": {"mean_degree": 10.0},
        },
        "probabilities": {"model": "as_generated"},
        "trace": {"kind": "bursty", "operations": 24, "burst_length": 4},
        "queries": {"num_keywords": 3, "k": 3, "radius": 2, "theta": 0.1, "top_l": 3},
        "gates": {"require_equivalence": True, "min_nonempty_results": 3},
    },
)

_cached: Optional[tuple] = None


def catalog() -> tuple:
    """All built-in scenarios, validated, in declaration order."""
    global _cached
    if _cached is None:
        specs = tuple(ScenarioSpec.from_dict(doc) for doc in _CATALOG_DOCUMENTS)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):  # pragma: no cover - author error guard
            raise ScenarioError(f"duplicate scenario names in catalog: {names}")
        _cached = specs
    return _cached


def smoke_catalog() -> tuple:
    """The PR-gate subset: scenarios marked ``smoke``."""
    return tuple(spec for spec in catalog() if spec.smoke)


def scenario_names(smoke_only: bool = False) -> tuple:
    """Catalog names, optionally restricted to the smoke subset."""
    specs = smoke_catalog() if smoke_only else catalog()
    return tuple(spec.name for spec in specs)


def get_scenario(name: str) -> ScenarioSpec:
    """Look one scenario up by name; unknown names list the catalog."""
    for spec in catalog():
        if spec.name == name:
            return spec
    raise ScenarioError(
        f"unknown scenario {name!r}; catalog: {', '.join(scenario_names())}"
    )


__all__ = ["catalog", "get_scenario", "scenario_names", "smoke_catalog"]
