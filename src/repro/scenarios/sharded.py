"""Sharded replay mode: a scenario's trace, unsharded vs sharded, gated.

Replays one scenario trace twice through the wire layer — once on a plain
:class:`~repro.service.facade.CommunityService`, once on a
:class:`~repro.service.sharded.ShardedCommunityService` — and demands the
response streams be **bit-identical** after stripping work-accounting
fields (``statistics``/``cache_statistics``: a fan-out legitimately visits
and prunes differently than one process; see
:func:`repro.service.sharded.merge.aggregate_statistics`) alongside the
timing fields every equivalence comparison already strips.

This is the scenario-harness face of the shard-merge exactness guarantee:
every answer a client can read off the wire — communities, centres, scores,
diversity metrics, epochs, update reports — survives sharding unchanged,
across the mixed read/update traffic the traces synthesize.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ScenarioError
from repro.scenarios.generators import build_scenario_graph
from repro.scenarios.pipeline import _comparable, _replay_backend
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.traces import synthesize_trace
from repro.graph.io import graph_to_dict
from repro.service.facade import CommunityService
from repro.service.sharded import ShardedCommunityService

#: Response fields that report *work done*, not *answers given*; a sharded
#: execution distributes the work, so these may differ while every
#: answer-bearing field must not.
_WORK_FIELDS = ("statistics", "cache_statistics")


def _strip_work_fields(node) -> None:
    if isinstance(node, dict):
        for key in _WORK_FIELDS:
            node.pop(key, None)
        for value in node.values():
            _strip_work_fields(value)
    elif isinstance(node, list):
        for value in node:
            _strip_work_fields(value)


def _answers_only(kind: str, document: dict) -> dict:
    document = _comparable(kind, dict(document))
    _strip_work_fields(document)
    return document


@dataclass(frozen=True)
class ShardedReplayReport:
    """Outcome of one unsharded-vs-sharded trace replay."""

    scenario: str
    backend: str
    num_shards: int
    replicas: int
    mode: str
    operations: int
    equivalence: bool
    first_mismatch: Optional[int]
    unsharded_seconds: float
    sharded_seconds: float

    @property
    def passed(self) -> bool:
        return self.equivalence

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "num_shards": self.num_shards,
            "replicas": self.replicas,
            "mode": self.mode,
            "operations": self.operations,
            "equivalence": self.equivalence,
            "first_mismatch": self.first_mismatch,
            "unsharded_seconds": round(self.unsharded_seconds, 6),
            "sharded_seconds": round(self.sharded_seconds, 6),
        }


def run_scenario_sharded(
    spec: ScenarioSpec,
    num_shards: int = 2,
    replicas: int = 1,
    mode: str = "inline",
    backend: str = "reference",
    enforce: bool = False,
) -> ShardedReplayReport:
    """Replay ``spec``'s trace unsharded and sharded; compare every response.

    Parameters
    ----------
    spec:
        The scenario whose graph and trace to replay.
    num_shards, replicas, mode:
        Pool shape of the sharded side (``"inline"`` keeps the replay
        single-process — the default for CI and single-core boxes;
        ``"process"`` exercises the real worker transport).
    backend:
        Engine backend both sides run on.
    enforce:
        Raise :class:`~repro.exceptions.ScenarioError` on any mismatch
        instead of only recording it.
    """
    graph = build_scenario_graph(spec)
    trace = synthesize_trace(graph, spec)
    graph_doc = graph_to_dict(graph)

    plain_service = CommunityService()
    started = time.perf_counter()
    plain = _replay_backend(plain_service, backend, spec, graph_doc, trace)
    unsharded_seconds = time.perf_counter() - started

    with ShardedCommunityService(
        num_shards=num_shards, replicas=replicas, mode=mode
    ) as sharded_service:
        started = time.perf_counter()
        sharded = _replay_backend(sharded_service, backend, spec, graph_doc, trace)
        sharded_seconds = time.perf_counter() - started

    first_mismatch: Optional[int] = None
    for index, ((kind_a, ours), (kind_b, theirs)) in enumerate(
        zip(plain.wire_documents, sharded.wire_documents)
    ):
        if _answers_only(kind_a, ours) != _answers_only(kind_b, theirs):
            first_mismatch = index
            break

    report = ShardedReplayReport(
        scenario=spec.name,
        backend=backend,
        num_shards=num_shards,
        replicas=replicas,
        mode=mode,
        operations=len(plain.wire_documents),
        equivalence=first_mismatch is None,
        first_mismatch=first_mismatch,
        unsharded_seconds=unsharded_seconds,
        sharded_seconds=sharded_seconds,
    )
    if enforce and not report.passed:
        raise ScenarioError(
            f"scenario {spec.name!r}: sharded replay diverged from the "
            f"unsharded replay at operation {report.first_mismatch} "
            f"(shards={num_shards}, replicas={replicas}, mode={mode})"
        )
    return report
