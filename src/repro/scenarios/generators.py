"""Scenario graph construction: recipes × probability models.

A :class:`~repro.scenarios.spec.GraphSpec` names a *recipe* — one entry of
the generator catalog below — and a :class:`~repro.scenarios.spec.ProbabilitySpec`
names the edge-probability model layered on top of the generated structure.
Everything is a deterministic function of the scenario seed: the same spec
always yields the same graph, byte for byte, which is what lets two backends
replay the same trace against provably identical inputs.

Recipes
-------
``planted``
    Stochastic block model with dense planted communities (the repo's
    canonical truss-rich benchmark graph).
``power_law``
    Barabási–Albert preferential attachment (heavy-tailed degrees).
``small_world``
    Newman–Watts–Strogatz ring + shortcuts (the paper's synthetic family).
``bipartite``
    Mostly-bipartite two-mode graph with sparse triangle closure
    (:func:`repro.graph.generators.bipartite_ish_graph`).
``erdos_renyi``
    G(n, p) — the no-structure control.
``dblp_like`` / ``amazon_like``
    The Table-II real-dataset stand-ins from :mod:`repro.graph.datasets`.

Probability models
------------------
``as_generated``
    Keep the probabilities the recipe drew (uniform in ``[0.5, 0.6)``).
``weighted_cascade``
    ``p(u -> v) = min(1, scale / deg(v))`` — the classic IC weighted-cascade
    assignment; influence concentrates on low-degree targets.
``trivalency``
    Each direction drawn uniformly from the spec's ``values``
    (default ``{0.1, 0.01, 0.001}``, the TRIVALENCY model of the IM
    literature).
"""

from __future__ import annotations

import random

from repro.exceptions import ScenarioError
from repro.graph.datasets import amazon_like, dblp_like
from repro.graph.generators import (
    barabasi_albert_graph,
    bipartite_ish_graph,
    erdos_renyi_graph,
    newman_watts_strogatz_graph,
    planted_community_graph,
)
from repro.graph.keyword_assignment import assign_keywords
from repro.graph.social_network import SocialNetwork
from repro.graph.validation import largest_connected_component
from repro.scenarios.spec import GraphSpec, ProbabilitySpec, ScenarioSpec


def _check_params(params: dict, allowed, recipe: str) -> None:
    unknown = set(params) - set(allowed)
    if unknown:
        raise ScenarioError(
            f"graph recipe {recipe!r} does not accept params {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _build_planted(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(
        spec.params, ("communities", "intra_probability", "inter_probability"), "planted"
    )
    communities = int(spec.params.get("communities", max(2, spec.num_vertices // 50)))
    if communities < 1:
        raise ScenarioError(f"planted.communities must be >= 1, got {communities}")
    base, extra = divmod(spec.num_vertices, communities)
    if base == 0:
        raise ScenarioError(
            f"planted recipe needs num_vertices >= communities "
            f"({spec.num_vertices} < {communities})"
        )
    sizes = [base + (1 if i < extra else 0) for i in range(communities)]
    return planted_community_graph(
        sizes,
        intra_probability=float(spec.params.get("intra_probability", 0.3)),
        inter_probability=float(spec.params.get("inter_probability", 0.01)),
        rng=rng,
        name=f"planted-{communities}x{base}",
    )


def _build_power_law(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(spec.params, ("edges_per_vertex",), "power_law")
    return barabasi_albert_graph(
        spec.num_vertices,
        edges_per_vertex=int(spec.params.get("edges_per_vertex", 3)),
        rng=rng,
        name="power-law",
    )


def _build_small_world(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(spec.params, ("ring_neighbors", "shortcut_probability"), "small_world")
    return newman_watts_strogatz_graph(
        spec.num_vertices,
        ring_neighbors=int(spec.params.get("ring_neighbors", 6)),
        shortcut_probability=float(spec.params.get("shortcut_probability", 0.167)),
        rng=rng,
        name="small-world",
    )


def _build_bipartite(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(
        spec.params,
        ("right_fraction", "edges_per_right", "closure_probability"),
        "bipartite",
    )
    right_fraction = float(spec.params.get("right_fraction", 0.5))
    if not 0.0 < right_fraction < 1.0:
        raise ScenarioError(
            f"bipartite.right_fraction must be in (0, 1), got {right_fraction}"
        )
    num_right = max(1, int(spec.num_vertices * right_fraction))
    num_left = max(2, spec.num_vertices - num_right)
    return bipartite_ish_graph(
        num_left,
        num_right,
        edges_per_right=int(spec.params.get("edges_per_right", 3)),
        closure_probability=float(spec.params.get("closure_probability", 0.25)),
        rng=rng,
        name="bipartite-ish",
    )


def _build_erdos_renyi(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(spec.params, ("edge_probability", "mean_degree"), "erdos_renyi")
    if "edge_probability" in spec.params:
        probability = float(spec.params["edge_probability"])
    else:
        # Hold the mean degree (default 8) instead of p, so the recipe stays
        # sparse when scaled up rather than densifying quadratically.
        mean_degree = float(spec.params.get("mean_degree", 8.0))
        probability = min(1.0, mean_degree / max(spec.num_vertices - 1, 1))
    return erdos_renyi_graph(
        spec.num_vertices, probability, rng=rng, name="erdos-renyi"
    )


def _build_dblp_like(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(spec.params, (), "dblp_like")
    return dblp_like(
        num_vertices=spec.num_vertices,
        keywords_per_vertex=spec.keywords_per_vertex,
        domain_size=spec.keyword_domain,
        rng=rng,
    )


def _build_amazon_like(spec: GraphSpec, rng: random.Random) -> SocialNetwork:
    _check_params(spec.params, (), "amazon_like")
    return amazon_like(
        num_vertices=spec.num_vertices,
        keywords_per_vertex=spec.keywords_per_vertex,
        domain_size=spec.keyword_domain,
        rng=rng,
    )


#: recipe name -> builder; the keys mirror spec.GRAPH_RECIPES.
_RECIPES = {
    "planted": _build_planted,
    "power_law": _build_power_law,
    "small_world": _build_small_world,
    "bipartite": _build_bipartite,
    "erdos_renyi": _build_erdos_renyi,
    "dblp_like": _build_dblp_like,
    "amazon_like": _build_amazon_like,
}


def apply_probability_model(
    graph: SocialNetwork, spec: ProbabilitySpec, rng: random.Random
) -> SocialNetwork:
    """Re-draw every directional edge probability under the spec's model.

    Mutates and returns ``graph``.  ``weighted_cascade`` is rng-free (pure
    function of the degree sequence); ``trivalency`` consumes ``rng`` in
    edge-iteration order, which is deterministic for a seeded build.
    """
    if spec.model == "as_generated":
        return graph
    if spec.model == "weighted_cascade":
        for u, v in graph.edges():
            graph.set_probability(u, v, min(1.0, spec.scale / graph.degree(v)))
            graph.set_probability(v, u, min(1.0, spec.scale / graph.degree(u)))
        return graph
    if spec.model == "trivalency":
        values = list(spec.values)
        for u, v in graph.edges():
            graph.set_probability(u, v, rng.choice(values))
            graph.set_probability(v, u, rng.choice(values))
        return graph
    raise ScenarioError(f"unknown probability model {spec.model!r}")  # pragma: no cover


def build_scenario_graph(spec: ScenarioSpec) -> SocialNetwork:
    """Materialise the scenario's network: recipe → LCC → keywords → probabilities.

    The tail mirrors the dataset loaders (largest connected component +
    keyword assignment) so every scenario exercises the exact code paths of
    the paper's evaluation graphs; the probability model is applied last so
    it sees the final edge set.
    """
    builder = _RECIPES.get(spec.graph.recipe)
    if builder is None:  # pragma: no cover - spec validation rejects this first
        raise ScenarioError(f"unknown graph recipe {spec.graph.recipe!r}")
    graph = builder(spec.graph, random.Random(f"{spec.seed}:graph"))
    name = graph.name
    graph = largest_connected_component(graph)
    graph.name = name
    assign_keywords(
        graph,
        keywords_per_vertex=spec.graph.keywords_per_vertex,
        distribution=spec.graph.keyword_distribution,
        domain_size=spec.graph.keyword_domain,
        rng=random.Random(f"{spec.seed}:keywords"),
    )
    apply_probability_model(
        graph, spec.probabilities, random.Random(f"{spec.seed}:probabilities")
    )
    return graph


__all__ = ["apply_probability_model", "build_scenario_graph"]
