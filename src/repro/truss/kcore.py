"""k-core decomposition.

The paper's case study (Figure 5, RQ3) compares the Top1-ICDE seed community
against the *k-core* community containing the same centre vertex: the maximal
subgraph in which every vertex has degree at least ``k``.  This module
provides the classic peeling-based core decomposition plus helpers to extract
the k-core component of a centre vertex, mirroring the helpers in
:mod:`repro.truss.ktruss`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView

GraphLike = Union[SocialNetwork, SubgraphView]


@dataclass(frozen=True)
class CoreDecomposition:
    """Core number of every vertex."""

    core_numbers: dict

    def core_of(self, vertex: VertexId) -> int:
        """Return the core number of ``vertex`` (0 when absent)."""
        return self.core_numbers.get(vertex, 0)

    def max_core(self) -> int:
        """Return the largest core number (degeneracy)."""
        return max(self.core_numbers.values(), default=0)

    def vertices_with_core_at_least(self, k: int) -> frozenset:
        """Return the vertices with core number >= ``k``."""
        return frozenset(v for v, c in self.core_numbers.items() if c >= k)


def _adjacency_of(graph: GraphLike) -> dict[VertexId, set]:
    if isinstance(graph, SubgraphView):
        return {v: set(graph.neighbors(v)) for v in graph}
    return {v: graph.neighbor_set(v) for v in graph.vertices()}


def core_decomposition(graph: GraphLike) -> CoreDecomposition:
    """Compute core numbers with the standard bucket-based peeling algorithm."""
    adjacency = _adjacency_of(graph)
    degrees = {v: len(neighbors) for v, neighbors in adjacency.items()}
    if not degrees:
        return CoreDecomposition(core_numbers={})
    max_degree = max(degrees.values())
    buckets: list[set[VertexId]] = [set() for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].add(vertex)

    core_numbers: dict[VertexId, int] = {}
    current_core = 0
    pointer = 0
    processed: set[VertexId] = set()
    remaining = len(degrees)
    while remaining:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        if pointer > max_degree:
            break
        vertex = buckets[pointer].pop()
        if vertex in processed:
            continue
        current_core = max(current_core, degrees[vertex])
        core_numbers[vertex] = current_core
        processed.add(vertex)
        remaining -= 1
        for neighbour in adjacency[vertex]:
            if neighbour in processed:
                continue
            old = degrees[neighbour]
            if old > degrees[vertex]:
                buckets[old].discard(neighbour)
                degrees[neighbour] = old - 1
                buckets[old - 1].add(neighbour)
                if old - 1 < pointer:
                    pointer = old - 1
        adjacency[vertex] = set()
    return CoreDecomposition(core_numbers=core_numbers)


def maximal_kcore(graph: GraphLike, k: int) -> frozenset:
    """Return the vertices of the maximal k-core (possibly disconnected)."""
    if k < 0:
        raise GraphError(f"core parameter k must be non-negative, got {k}")
    decomposition = core_decomposition(graph)
    return decomposition.vertices_with_core_at_least(k)


def kcore_component_of(graph: GraphLike, k: int, center: VertexId) -> frozenset:
    """Return the k-core connected component containing ``center``.

    Returns the empty frozenset when ``center`` is not part of the k-core.
    This is the community the Figure 5 case study compares against.
    """
    core_vertices = maximal_kcore(graph, k)
    if center not in core_vertices:
        return frozenset()
    if isinstance(graph, SubgraphView):
        neighbors = {v: set(graph.neighbors(v)) & core_vertices for v in core_vertices}
    else:
        neighbors = {v: graph.neighbor_set(v) & core_vertices for v in core_vertices}
    component = {center}
    frontier = [center]
    while frontier:
        current = frontier.pop()
        for neighbour in neighbors[current]:
            if neighbour not in component:
                component.add(neighbour)
                frontier.append(neighbour)
    return frozenset(component)


def degeneracy(graph: GraphLike) -> int:
    """Return the degeneracy of ``graph`` (its maximum core number)."""
    return core_decomposition(graph).max_core()
