"""Truss decomposition: the trussness of every edge and vertex.

The *trussness* of an edge is the largest ``k`` such that the edge belongs to
the maximal k-truss; the trussness of a vertex is the maximum trussness over
its incident edges.  The ATindex baseline (Section VIII-A) pre-computes and
indexes exactly these numbers, then filters query vertices whose trussness is
below the requested ``k``.

The decomposition below is the standard bottom-up peeling: process edges in
increasing support order, fixing the trussness of an edge at the moment it
would be peeled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView
from repro.truss.support import edge_key

GraphLike = Union[SocialNetwork, SubgraphView]


@dataclass(frozen=True)
class TrussDecomposition:
    """Trussness of every edge and vertex of a graph."""

    edge_trussness: dict
    vertex_trussness: dict

    def trussness_of_edge(self, u: VertexId, v: VertexId) -> int:
        """Return the trussness of edge ``{u, v}`` (2 when absent)."""
        return self.edge_trussness.get(edge_key(u, v), 2)

    def trussness_of_vertex(self, vertex: VertexId) -> int:
        """Return the trussness of ``vertex`` (2 when isolated or absent)."""
        return self.vertex_trussness.get(vertex, 2)

    def max_trussness(self) -> int:
        """Return the maximum edge trussness (2 for edgeless graphs)."""
        return max(self.edge_trussness.values(), default=2)

    def vertices_with_trussness_at_least(self, k: int) -> frozenset:
        """Return the vertices whose trussness is at least ``k``."""
        return frozenset(v for v, t in self.vertex_trussness.items() if t >= k)


def _adjacency_of(graph: GraphLike) -> dict[VertexId, set]:
    if isinstance(graph, SubgraphView):
        return {v: set(graph.neighbors(v)) for v in graph}
    return {v: graph.neighbor_set(v) for v in graph.vertices()}


def truss_decomposition(graph: GraphLike, backend: str = "reference") -> TrussDecomposition:
    """Compute the full truss decomposition of ``graph``.

    Runs the standard peeling algorithm: repeatedly pick the edge with the
    lowest remaining support ``s``; its trussness is ``s + 2`` (monotonically
    clamped so trussness never decreases along the peeling order); remove it
    and decrement the supports of the edges it shared triangles with.

    ``backend="fast"`` routes a full :class:`SocialNetwork` through the
    array-backed bucket peel (:func:`repro.fastgraph.kernels.truss_decomposition_csr`)
    over a frozen snapshot; trussness is a graph invariant, so the result is
    identical.  Subgraph views always use the reference peel.
    """
    if backend not in ("reference", "fast"):
        from repro.exceptions import GraphError

        raise GraphError(f"backend must be 'reference' or 'fast', got {backend!r}")
    if backend == "fast" and isinstance(graph, SocialNetwork):
        from repro.fastgraph.kernels import truss_decomposition_csr

        return truss_decomposition_csr(graph.freeze())
    adjacency = _adjacency_of(graph)
    supports: dict[frozenset, int] = {}
    for u, neighbors in adjacency.items():
        for v in neighbors:
            key = edge_key(u, v)
            if key not in supports:
                supports[key] = len(adjacency[u] & adjacency[v])

    # Bucket queue over support values keeps the peeling near-linear.
    max_support = max(supports.values(), default=0)
    buckets: list[set[frozenset]] = [set() for _ in range(max_support + 1)]
    for key, support in supports.items():
        buckets[support].add(key)

    edge_trussness: dict[frozenset, int] = {}
    current = dict(supports)
    removed: set[frozenset] = set()
    k_floor = 2
    pointer = 0
    remaining = len(supports)
    while remaining:
        # Find the lowest non-empty bucket at or after `pointer`.
        while pointer <= max_support and not buckets[pointer]:
            pointer += 1
        if pointer > max_support:
            break
        key = buckets[pointer].pop()
        if key in removed:
            continue
        support = current[key]
        k_floor = max(k_floor, support + 2)
        edge_trussness[key] = k_floor
        removed.add(key)
        remaining -= 1

        u, v = tuple(key)
        common = adjacency[u] & adjacency[v]
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        for w in common:
            for a, b in ((u, w), (v, w)):
                other = edge_key(a, b)
                if other in removed or other not in current:
                    continue
                old = current[other]
                if old > support:
                    buckets[old].discard(other)
                    current[other] = old - 1
                    buckets[old - 1].add(other)
                    if old - 1 < pointer:
                        pointer = old - 1

    vertex_trussness: dict[VertexId, int] = {}
    for key, trussness in edge_trussness.items():
        for vertex in key:
            vertex_trussness[vertex] = max(vertex_trussness.get(vertex, 2), trussness)
    # Isolated vertices (no incident edges) get the minimum trussness of 2.
    for vertex in _vertices_of(graph):
        vertex_trussness.setdefault(vertex, 2)
    return TrussDecomposition(edge_trussness=edge_trussness, vertex_trussness=vertex_trussness)


def _vertices_of(graph: GraphLike):
    if isinstance(graph, SubgraphView):
        return iter(graph)
    return graph.vertices()
