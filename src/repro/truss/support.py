"""Edge support (triangle counting) utilities.

Definition 2 requires seed communities to be *k-trusses*: every edge must be
contained in at least ``k - 2`` triangles of the community.  The number of
triangles containing an edge is its *support* ``sup(e_{u,v})``.

The support pruning rule (Lemma 2) uses an upper bound of the support: since a
seed community is a subgraph of ``G`` (or of an r-hop subgraph), the support
of an edge measured in the larger graph bounds its support in any candidate
community from above.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Union

from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView

GraphLike = Union[SocialNetwork, SubgraphView]
Edge = tuple[VertexId, VertexId]


def edge_key(u: VertexId, v: VertexId) -> frozenset:
    """Return the canonical (orientation-free) key of an undirected edge."""
    return frozenset((u, v))


def _neighbor_sets(graph: GraphLike) -> dict[VertexId, set]:
    """Materialise neighbour sets once; triangle counting is intersection-heavy."""
    if isinstance(graph, SubgraphView):
        return {v: set(graph.neighbors(v)) for v in graph}
    return {v: graph.neighbor_set(v) for v in graph.vertices()}


def edge_support(graph: GraphLike) -> dict[frozenset, int]:
    """Return ``sup(e)`` for every edge of ``graph``.

    The support of an edge ``{u, v}`` is ``|N(u) ∩ N(v)|`` restricted to the
    given graph (or view).
    """
    neighbors = _neighbor_sets(graph)
    supports: dict[frozenset, int] = {}
    for u, v in graph.edges():
        supports[edge_key(u, v)] = len(neighbors[u] & neighbors[v])
    return supports


def support_of_edge(graph: GraphLike, u: VertexId, v: VertexId) -> int:
    """Return the support of a single edge ``{u, v}`` within ``graph``."""
    if isinstance(graph, SubgraphView):
        nu = set(graph.neighbors(u))
        nv = set(graph.neighbors(v))
    else:
        nu = graph.neighbor_set(u)
        nv = graph.neighbor_set(v)
    return len(nu & nv)


def max_support(graph: GraphLike) -> int:
    """Return the maximum edge support of ``graph`` (0 for edgeless graphs)."""
    supports = edge_support(graph)
    return max(supports.values(), default=0)


def support_upper_bounds(
    graph: SocialNetwork, restricted_to: Iterable[VertexId] | None = None
) -> dict[frozenset, int]:
    """Return per-edge support upper bounds ``ub_sup(e)``.

    When ``restricted_to`` is given the bound is computed inside the induced
    view on those vertices (typically ``hop(v_i, r_max)``, per Algorithm 2
    lines 4-5); otherwise in the full graph.  Either way the value upper
    bounds the support of the edge inside any *smaller* candidate community.
    """
    if restricted_to is None:
        return edge_support(graph)
    view = SubgraphView(graph, restricted_to)
    return edge_support(view)


def satisfies_truss_support(graph: GraphLike, k: int) -> bool:
    """Return ``True`` if every edge of ``graph`` has support >= ``k - 2``.

    Note this checks the *support condition only*; it does not check
    connectivity, which :func:`repro.truss.ktruss.is_ktruss` handles.
    """
    required = max(k - 2, 0)
    supports = edge_support(graph)
    return all(value >= required for value in supports.values())


def triangles_per_edge_histogram(graph: GraphLike) -> dict[int, int]:
    """Return a histogram ``support -> number of edges`` (used in reports)."""
    histogram: dict[int, int] = {}
    for value in edge_support(graph).values():
        histogram[value] = histogram.get(value, 0) + 1
    return histogram
