"""Structural cohesiveness substrate: edge support, k-truss, trussness, k-core."""

from repro.truss.support import (
    edge_key,
    edge_support,
    max_support,
    satisfies_truss_support,
    support_of_edge,
    support_upper_bounds,
    triangles_per_edge_histogram,
)
from repro.truss.ktruss import (
    TrussResult,
    is_ktruss,
    ktruss_component_of,
    max_truss_parameter,
    maximal_ktruss,
)
from repro.truss.decomposition import TrussDecomposition, truss_decomposition
from repro.truss.kcore import (
    CoreDecomposition,
    core_decomposition,
    degeneracy,
    kcore_component_of,
    maximal_kcore,
)

__all__ = [
    "edge_key",
    "edge_support",
    "max_support",
    "satisfies_truss_support",
    "support_of_edge",
    "support_upper_bounds",
    "triangles_per_edge_histogram",
    "TrussResult",
    "is_ktruss",
    "ktruss_component_of",
    "max_truss_parameter",
    "maximal_ktruss",
    "TrussDecomposition",
    "truss_decomposition",
    "CoreDecomposition",
    "core_decomposition",
    "degeneracy",
    "kcore_component_of",
    "maximal_kcore",
]
