"""Maximal k-truss extraction.

A *k-truss* of a graph is a maximal subgraph in which every edge is contained
in at least ``k - 2`` triangles *of the subgraph* (Cohen 2008, as used by
Definition 2 of the paper).  The standard peeling algorithm repeatedly removes
edges whose support falls below ``k - 2``, recomputing the supports of the
triangles they destroyed, until a fixed point is reached.

The functions here operate on either a full :class:`SocialNetwork` or a
:class:`SubgraphView`; the result is expressed as a set of surviving edges
plus the set of vertices incident to them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Union

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView
from repro.truss.support import edge_key

GraphLike = Union[SocialNetwork, SubgraphView]


@dataclass(frozen=True)
class TrussResult:
    """Outcome of a maximal k-truss computation.

    Attributes
    ----------
    k:
        The truss parameter the result was computed for.
    vertices:
        Vertices incident to at least one surviving edge.
    edges:
        Surviving edges as canonical frozensets ``{u, v}``.
    """

    k: int
    vertices: frozenset
    edges: frozenset

    @property
    def is_empty(self) -> bool:
        """``True`` when no edge survives the peeling."""
        return not self.edges

    def contains_vertex(self, vertex: VertexId) -> bool:
        """Return ``True`` if ``vertex`` survives in the truss."""
        return vertex in self.vertices


def _adjacency_of(graph: GraphLike) -> dict[VertexId, set]:
    if isinstance(graph, SubgraphView):
        return {v: set(graph.neighbors(v)) for v in graph}
    return {v: graph.neighbor_set(v) for v in graph.vertices()}


def maximal_ktruss(graph: GraphLike, k: int) -> TrussResult:
    """Compute the maximal k-truss of ``graph`` by support peeling.

    Parameters
    ----------
    graph:
        A social network or subgraph view.
    k:
        Truss parameter (``k >= 2``); ``k = 2`` keeps every edge.

    Returns
    -------
    TrussResult
        The surviving vertices and edges.  The result may be disconnected; the
        seed-community extractor narrows it to the component of the centre.
    """
    if k < 2:
        raise GraphError(f"truss parameter k must be >= 2, got {k}")
    adjacency = _adjacency_of(graph)
    required = k - 2

    # Current supports.
    supports: dict[frozenset, int] = {}
    for u, neighbors in adjacency.items():
        for v in neighbors:
            key = edge_key(u, v)
            if key not in supports:
                supports[key] = len(adjacency[u] & adjacency[v])

    # Peel: repeatedly remove edges with support below the requirement.
    queue = deque(key for key, support in supports.items() if support < required)
    removed: set[frozenset] = set()
    while queue:
        key = queue.popleft()
        if key in removed or key not in supports:
            continue
        removed.add(key)
        u, v = tuple(key)
        # Removing (u, v) breaks every triangle (u, v, w); decrement the other
        # two edges of each such triangle.
        common = adjacency[u] & adjacency[v]
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        del supports[key]
        for w in common:
            for a, b in ((u, w), (v, w)):
                other = edge_key(a, b)
                if other in supports and other not in removed:
                    supports[other] -= 1
                    if supports[other] < required:
                        queue.append(other)

    surviving_edges = frozenset(key for key in supports if key not in removed)
    surviving_vertices = frozenset(v for edge in surviving_edges for v in edge)
    return TrussResult(k=k, vertices=surviving_vertices, edges=surviving_edges)


def ktruss_component_of(graph: GraphLike, k: int, center: VertexId) -> frozenset:
    """Return the vertices of the maximal k-truss component containing ``center``.

    Connectivity is measured over the surviving truss edges only.  Returns the
    empty frozenset when ``center`` does not survive the peeling.
    """
    result = maximal_ktruss(graph, k)
    if center not in result.vertices:
        return frozenset()
    truss_adjacency: dict[VertexId, set] = {}
    for edge in result.edges:
        u, v = tuple(edge)
        truss_adjacency.setdefault(u, set()).add(v)
        truss_adjacency.setdefault(v, set()).add(u)
    component = {center}
    frontier = [center]
    while frontier:
        current = frontier.pop()
        for neighbour in truss_adjacency.get(current, ()):
            if neighbour not in component:
                component.add(neighbour)
                frontier.append(neighbour)
    return frozenset(component)


def is_ktruss(graph: GraphLike, k: int, require_connected: bool = True) -> bool:
    """Return ``True`` if ``graph`` (as given) is itself a k-truss.

    Every edge must have support >= ``k - 2`` measured inside ``graph``; when
    ``require_connected`` is set the graph must also be connected (single
    isolated vertices and the empty graph are rejected only if they have no
    edges *and* more than one vertex).
    """
    if k < 2:
        raise GraphError(f"truss parameter k must be >= 2, got {k}")
    adjacency = _adjacency_of(graph)
    if not adjacency:
        return True
    required = k - 2
    has_edges = False
    for u, neighbors in adjacency.items():
        for v in neighbors:
            has_edges = True
            if len(adjacency[u] & adjacency[v]) < required:
                return False
    if require_connected:
        if len(adjacency) > 1 and not has_edges:
            return False
        start = next(iter(adjacency))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if len(seen) != len(adjacency):
            return False
    return True


def max_truss_parameter(graph: GraphLike) -> int:
    """Return the largest ``k`` for which ``graph`` contains a non-empty k-truss."""
    k = 2
    while True:
        result = maximal_ktruss(graph, k + 1)
        if result.is_empty:
            return k
        k += 1
