"""Command-line interface for the TopL-ICDE / DTopL-ICDE library.

The CLI wires the library's pieces together for shell usage::

    repro generate --dataset uni --vertices 500 --out graph.json
    repro stats graph.json [--index graph.index.json]
    repro build-index graph.json --out graph.index.json
    repro topl graph.json --keywords movies,books --k 3 --radius 2 --theta 0.2 --top-l 3
    repro dtopl graph.json --keywords movies,books --top-l 3 --candidate-factor 3
    repro sweep graph.json --parameter theta
    repro serve graph.json --queries 32 --workers 4 --repeat 2
    repro batch graph.json --queries 32 --no-cache   # alias of `serve`
    repro update graph.json --script edits.json --out-graph graph2.json
    repro update graph.json --random 50 --out-script edits.json
    repro gateway graph.json --port 8344             # HTTP service API
    repro scenario list                              # built-in scenario catalog
    repro scenario run --smoke --out BENCH_scenarios.json
    repro scenario run planted-wc-bursty --spec my_scenario.toml
    repro scenario report BENCH_scenarios.json
    repro scenario validate BENCH_*.json             # BENCH schema gate
    repro store pack graph.json --out graph.repro-store
    repro store inspect graph.repro-store            # header + section table
    repro store verify graph.repro-store             # checksums + full decode

Every data-plane subcommand routes through the versioned service API —
:class:`repro.service.CommunityService` and the typed request objects of
:mod:`repro.service.schema` — so the CLI, the HTTP gateway and programmatic
callers exercise exactly the same boundary.

Every subcommand is also callable programmatically through :func:`main`,
which accepts an ``argv`` list and returns a process exit code — that is how
the test-suite exercises it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro._version import __version__
from repro.exceptions import ReproError
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.io import load_graph_json, save_graph_json, write_edge_list
from repro.graph.statistics import compute_statistics
from repro.query.params import make_dtopl_query, make_topl_query
from repro.serve.batch import ServingConfig
from repro.service.facade import CommunityService
from repro.service.schema import (
    BatchRequest,
    BuildRequest,
    DToplRequest,
    ToplRequest,
    UpdateRequest,
)
from repro.workloads.queries import QueryWorkload
from repro.workloads.reporting import format_table
from repro.workloads.sweeps import PAPER_PARAMETER_GRID

#: Session name the CLI hosts its engine under (one graph per invocation).
CLI_SESSION = "cli"


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for documentation tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-L most influential community detection over social networks",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__} (service schema v1)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a dataset and save it")
    generate.add_argument("--dataset", choices=dataset_names(), default="uni")
    generate.add_argument("--vertices", type=int, default=1000)
    generate.add_argument("--keywords-per-vertex", type=int, default=3)
    generate.add_argument("--keyword-domain", type=int, default=50)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output JSON path")
    generate.add_argument(
        "--edge-list", default=None, help="optionally also write a tab-separated edge list"
    )

    stats = subparsers.add_parser("stats", help="print Table-II style statistics of a graph")
    stats.add_argument("graph", help="graph JSON produced by `repro generate`")
    stats.add_argument(
        "--index",
        default=None,
        help="also load this pre-built index and print the engine diagnostics "
        "(backend, epoch, index schema version)",
    )

    build_index = subparsers.add_parser(
        "build-index", help="run the offline phase and save the index"
    )
    build_index.add_argument("graph")
    build_index.add_argument("--out", required=True, help="output index JSON path")
    build_index.add_argument("--max-radius", type=int, default=3)
    build_index.add_argument(
        "--thresholds", default="0.1,0.2,0.3", help="comma-separated pre-selected thresholds"
    )
    build_index.add_argument("--fanout", type=int, default=8)
    build_index.add_argument("--leaf-capacity", type=int, default=16)
    _add_backend_argument(build_index)

    topl = subparsers.add_parser("topl", help="answer a TopL-ICDE query")
    _add_query_arguments(topl)

    dtopl = subparsers.add_parser("dtopl", help="answer a DTopL-ICDE query")
    _add_query_arguments(dtopl)
    dtopl.add_argument("--candidate-factor", type=int, default=3)

    sweep = subparsers.add_parser(
        "sweep", help="run a Table-III parameter sweep and print one row per setting"
    )
    sweep.add_argument("graph")
    sweep.add_argument(
        "--parameter",
        default="theta",
        choices=["theta", "num_query_keywords", "k", "radius", "top_l"],
    )
    sweep.add_argument("--index", default=None, help="optional pre-built index JSON")
    sweep.add_argument("--seed", type=int, default=97)

    for name in ("serve", "batch"):
        serve = subparsers.add_parser(
            name,
            help="answer a batch of mixed TopL/DTopL queries (workers + caching)",
        )
        _add_serve_arguments(serve)

    update = subparsers.add_parser(
        "update",
        help="replay an edge edit script, maintaining trussness and the index incrementally",
    )
    update.add_argument("graph")
    update.add_argument("--index", default=None, help="optional pre-built index JSON")
    update.add_argument(
        "--script", default=None, help="edit-script JSON (format: docs/dynamic.md)"
    )
    update.add_argument(
        "--random",
        type=int,
        default=None,
        metavar="N",
        help="generate a random N-edit script instead of reading --script",
    )
    update.add_argument("--insert-ratio", type=float, default=0.5,
                        help="insertion fraction of a --random script")
    update.add_argument("--seed", type=int, default=7, help="--random script seed")
    update.add_argument(
        "--focus",
        default=None,
        help="restrict a --random script to the neighbourhood of this vertex "
        "(localized churn stays under the damage threshold)",
    )
    update.add_argument("--focus-radius", type=int, default=2,
                        help="hop radius of the --focus neighbourhood")
    update.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="replay the script in chunks of this many edits (default: one batch)",
    )
    update.add_argument(
        "--damage-threshold",
        type=float,
        default=None,
        help="affected-vertex fraction above which a full rebuild is cheaper",
    )
    update.add_argument("--out-graph", default=None, help="write the mutated graph JSON here")
    update.add_argument("--out-index", default=None, help="write the refreshed index JSON here")
    update.add_argument("--out-script", default=None,
                        help="write the (possibly generated) edit script here")
    _add_backend_argument(update)

    gateway = subparsers.add_parser(
        "gateway",
        help="serve the versioned HTTP API (POST /v1/{build,topl,dtopl,update,batch})",
    )
    gateway.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="optionally pre-load this graph JSON as the 'default' session "
        "(omit to start empty; clients create sessions via POST /v1/build)",
    )
    gateway.add_argument("--index", default=None, help="optional pre-built index JSON")
    _add_backend_argument(gateway)
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8344)
    gateway.add_argument(
        "--session",
        default="default",
        help="session name the pre-loaded graph is hosted under",
    )
    gateway.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition each session over this many shard worker processes "
        "behind the async front door (0 = unsharded threaded gateway)",
    )
    gateway.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="read replicas per shard (round-robin routing, automatic "
        "failover; only meaningful with --shards)",
    )
    gateway.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="async front door backpressure bound: concurrent requests "
        "beyond this get 429 + Retry-After (only with --shards)",
    )

    scenario = subparsers.add_parser(
        "scenario",
        help="declarative multi-dataset screening (list / run / report / validate)",
    )
    actions = scenario.add_subparsers(dest="action", required=True)

    scenario_list = actions.add_parser("list", help="print the scenario catalog")
    scenario_list.add_argument(
        "--smoke", action="store_true", help="only the PR-gate smoke subset"
    )

    scenario_run = actions.add_parser(
        "run", help="execute scenarios end-to-end on both backends and gate them"
    )
    scenario_run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="catalog scenario names (see `repro scenario list`)",
    )
    scenario_run.add_argument(
        "--all", action="store_true", help="run the whole built-in catalog"
    )
    scenario_run.add_argument(
        "--smoke", action="store_true", help="run the smoke subset of the catalog"
    )
    scenario_run.add_argument(
        "--spec",
        action="append",
        default=[],
        metavar="FILE",
        help="also run this scenario spec file (.toml or .json; repeatable)",
    )
    scenario_run.add_argument(
        "--out", default=None, help="write the BENCH_scenarios.json document here"
    )
    scenario_run.add_argument(
        "--no-enforce-gates",
        action="store_true",
        help="report gate failures in the table instead of exiting non-zero",
    )
    scenario_run.add_argument(
        "--shards",
        type=int,
        default=0,
        help="additionally replay each scenario's trace on a sharded facade "
        "with this many shards and gate answer equivalence against the "
        "unsharded replay (0 = skip the sharded pass)",
    )
    scenario_run.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="read replicas per shard for the --shards replay",
    )

    scenario_report = actions.add_parser(
        "report", help="summarise a previously recorded BENCH_scenarios.json"
    )
    scenario_report.add_argument("document", help="BENCH_scenarios.json path")

    scenario_validate = actions.add_parser(
        "validate",
        help="validate BENCH_*.json documents against the checked-in schema",
    )
    scenario_validate.add_argument(
        "documents",
        nargs="*",
        metavar="FILE",
        help="BENCH JSON files (default: ./BENCH_*.json)",
    )

    store = subparsers.add_parser(
        "store",
        help="persistent binary store: pack / inspect / verify "
        "(mmap cold start, docs/store.md)",
    )
    store_actions = store.add_subparsers(dest="action", required=True)

    store_pack = store_actions.add_parser(
        "pack", help="run the offline phase and pack graph + index into a store file"
    )
    store_pack.add_argument("graph", help="graph JSON produced by `repro generate`")
    store_pack.add_argument("--out", required=True, help="output store path")
    store_pack.add_argument(
        "--index",
        default=None,
        help="pack this pre-built index JSON instead of re-running the offline phase",
    )
    store_pack.add_argument("--max-radius", type=int, default=3)
    store_pack.add_argument(
        "--thresholds", default="0.1,0.2,0.3", help="comma-separated pre-selected thresholds"
    )
    store_pack.add_argument("--fanout", type=int, default=8)
    store_pack.add_argument("--leaf-capacity", type=int, default=16)
    _add_backend_argument(store_pack)

    store_inspect = store_actions.add_parser(
        "inspect", help="print the store header, section table and meta as JSON"
    )
    store_inspect.add_argument("store", help="store file produced by `repro store pack`")

    store_verify = store_actions.add_parser(
        "verify",
        help="fully verify a store (structure, checksums, payload decode)",
    )
    store_verify.add_argument("store", help="store file produced by `repro store pack`")

    return parser


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="reference",
        choices=["reference", "fast"],
        help="graph core: dict-based reference or array-backed fast "
        "(identical answers; see docs/backends.md)",
    )


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph")
    _add_backend_argument(parser)
    parser.add_argument("--index", default=None, help="optional pre-built index JSON")
    parser.add_argument(
        "--keywords",
        default=None,
        help="comma-separated query keywords; sampled from the graph's domain when omitted",
    )
    parser.add_argument("--num-keywords", type=int, default=5,
                        help="number of keywords to sample when --keywords is omitted")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--radius", type=int, default=2)
    parser.add_argument("--theta", type=float, default=0.2)
    parser.add_argument("--top-l", type=int, default=5)
    parser.add_argument("--seed", type=int, default=97, help="keyword sampling seed")


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    _add_query_arguments(parser)
    parser.add_argument("--queries", type=int, default=32, help="batch size")
    parser.add_argument(
        "--dtopl-share",
        type=float,
        default=0.25,
        help="fraction of the batch answered as DTopL-ICDE queries",
    )
    parser.add_argument("--candidate-factor", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="serve the batch this many times (repeats exercise the result cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result and propagation caches",
    )
    parser.add_argument(
        "--result-cache", type=int, default=None, help="result cache capacity"
    )
    parser.add_argument(
        "--propagation-cache",
        type=int,
        default=None,
        help="propagation cache capacity",
    )
    parser.add_argument(
        "--start-method",
        default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method (default: fork when available)",
    )
    parser.add_argument("--out", default=None, help="optionally write a JSON report")


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #
def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(
        args.dataset,
        num_vertices=args.vertices,
        keywords_per_vertex=args.keywords_per_vertex,
        domain_size=args.keyword_domain,
        rng=args.seed,
    )
    save_graph_json(graph, args.out)
    if args.edge_list:
        write_edge_list(graph, args.edge_list)
    print(
        f"wrote {graph.name}: |V| = {graph.num_vertices()}, |E| = {graph.num_edges()} "
        f"-> {args.out}"
    )
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph = load_graph_json(args.graph)
    row = compute_statistics(graph).as_row()
    print(format_table([row], title="graph statistics"))
    if args.index:
        # One diagnostics document, shared with the gateway's /v1/health:
        # both are InfluentialCommunityEngine.describe() verbatim.  The
        # graph travels inline — it is already loaded for the stats table.
        from repro.graph.io import graph_to_dict

        service = CommunityService()
        service.build(
            BuildRequest(
                session=CLI_SESSION,
                graph=graph_to_dict(graph),
                index_path=args.index,
            )
        )
        describe = service.engine(CLI_SESSION).describe()
        print("engine diagnostics:")
        print(json.dumps(describe, indent=2, default=str))
    return 0


def _command_build_index(args: argparse.Namespace) -> int:
    thresholds = [float(token) for token in args.thresholds.split(",") if token]
    service = CommunityService()
    response = service.build(
        BuildRequest(
            session=CLI_SESSION,
            graph_path=args.graph,
            save_index_path=args.out,
            config={
                "max_radius": args.max_radius,
                "thresholds": thresholds,
                "fanout": args.fanout,
                "leaf_capacity": args.leaf_capacity,
                "backend": getattr(args, "backend", "reference"),
            },
        )
    )
    print(
        f"offline phase finished in {response.elapsed_seconds:.2f}s; "
        f"index: {response.engine['index']}"
    )
    print(f"index saved to {args.out}")
    return 0


def _build_session(
    args: argparse.Namespace, serving_config: Optional[ServingConfig] = None
) -> CommunityService:
    """Build the CLI's service session from the subcommand arguments.

    Routes through a :class:`BuildRequest`, exactly like a remote client:
    a saved index wins over re-running the offline phase, and the backend
    flag (plus a fresh build's ``max_radius``) travel as config overrides.
    """
    service = CommunityService(serving_config=serving_config)
    config: dict = {"backend": getattr(args, "backend", "reference")}
    if not args.index and hasattr(args, "radius"):
        config["max_radius"] = max(args.radius, 1)
    service.build(
        BuildRequest(
            session=CLI_SESSION,
            graph_path=args.graph,
            index_path=args.index or None,
            config=config,
        )
    )
    return service


def _query_keywords(args: argparse.Namespace, service: CommunityService) -> frozenset:
    if args.keywords:
        return frozenset(token.strip() for token in args.keywords.split(",") if token.strip())
    workload = QueryWorkload(service.engine(CLI_SESSION).graph, rng=args.seed)
    return workload.sample_keywords(args.num_keywords)


def _summary_rows(communities) -> list[dict]:
    return [community.summary() for community in communities]


def _command_topl(args: argparse.Namespace) -> int:
    service = _build_session(args)
    keywords = _query_keywords(args, service)
    query = make_topl_query(
        keywords, k=args.k, radius=args.radius, theta=args.theta, top_l=args.top_l
    )
    response = service.topl(ToplRequest(query=query, session=CLI_SESSION))
    print(f"query keywords: {', '.join(sorted(keywords))}")
    print(
        f"answered in {response.elapsed_seconds * 1000:.1f} ms — "
        f"{len(response.communities)} communities, "
        f"{response.statistics['total_pruned']} candidates pruned"
    )
    print(
        format_table(
            _summary_rows(response.communities),
            title="top-L most influential communities",
        )
    )
    return 0


def _command_dtopl(args: argparse.Namespace) -> int:
    service = _build_session(args)
    keywords = _query_keywords(args, service)
    query = make_dtopl_query(
        keywords,
        k=args.k,
        radius=args.radius,
        theta=args.theta,
        top_l=args.top_l,
        candidate_factor=args.candidate_factor,
    )
    response = service.dtopl(DToplRequest(query=query, session=CLI_SESSION))
    print(f"query keywords: {', '.join(sorted(keywords))}")
    print(
        f"answered in {response.elapsed_seconds * 1000:.1f} ms — "
        f"diversity score {response.diversity_score:.2f}, "
        f"{response.increment_evaluations} marginal-gain evaluations"
    )
    print(
        format_table(
            _summary_rows(response.communities), title="diversified top-L communities"
        )
    )
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    # Sweep steps share one session serving engine: overlapping candidate
    # centres across settings hit the propagation cache exactly like
    # production traffic with recurring query shapes.  The whole-result cache
    # stays off — settings that clamp to the same effective query must still
    # execute, or a row would report the previous setting's timing and
    # pruning counters.
    service = _build_session(args, serving_config=ServingConfig(result_cache_capacity=0))
    engine = service.engine(CLI_SESSION)
    workload = QueryWorkload(engine.graph, rng=args.seed)
    rows = []
    for setting in PAPER_PARAMETER_GRID.sweep(args.parameter):
        radius = min(setting["radius"], engine.index.max_radius)
        query = workload.topl_query(
            num_keywords=setting["num_query_keywords"],
            k=setting["k"],
            radius=radius,
            theta=setting["theta"],
            top_l=setting["top_l"],
        )
        started = time.perf_counter()
        result = service.answer_one(CLI_SESSION, query)
        rows.append(
            {
                args.parameter: setting["swept_value"],
                "wall_clock_s": round(time.perf_counter() - started, 4),
                "communities": len(result),
                "pruned": result.statistics.total_pruned,
            }
        )
    print(format_table(rows, title=f"sweep over {args.parameter}"))
    cache_stats = service.serving(CLI_SESSION).cache_statistics()["propagation_cache"]
    print(
        f"propagation cache: {cache_stats['hits']} hits / "
        f"{cache_stats['lookups']} lookups"
    )
    return 0


def _mixed_batch(args: argparse.Namespace, workload: QueryWorkload) -> list:
    """Build the serve command's batch: TopL and DTopL queries interleaved."""
    num_queries = max(args.queries, 1)
    share = min(max(args.dtopl_share, 0.0), 1.0)
    num_dtopl = int(round(num_queries * share))
    stride = num_queries // num_dtopl if num_dtopl else 0
    dtopl_positions = {index * stride for index in range(num_dtopl)}
    fixed_keywords = None
    if args.keywords:
        fixed_keywords = frozenset(
            token.strip() for token in args.keywords.split(",") if token.strip()
        )
    queries: list = []
    for position in range(num_queries):
        keywords = fixed_keywords or workload.sample_keywords(args.num_keywords)
        if position in dtopl_positions:
            queries.append(
                make_dtopl_query(
                    keywords,
                    k=args.k,
                    radius=args.radius,
                    theta=args.theta,
                    top_l=args.top_l,
                    candidate_factor=args.candidate_factor,
                )
            )
        else:
            queries.append(
                make_topl_query(
                    keywords, k=args.k, radius=args.radius, theta=args.theta, top_l=args.top_l
                )
            )
    return queries


def _serving_config_from_args(args: argparse.Namespace) -> ServingConfig:
    from repro.serve.batch import (
        DEFAULT_PROPAGATION_CACHE_CAPACITY,
        DEFAULT_RESULT_CACHE_CAPACITY,
    )

    result_cache = 0 if args.no_cache else args.result_cache
    propagation_cache = 0 if args.no_cache else args.propagation_cache
    return ServingConfig(
        workers=args.workers,
        result_cache_capacity=(
            DEFAULT_RESULT_CACHE_CAPACITY if result_cache is None else result_cache
        ),
        propagation_cache_capacity=(
            DEFAULT_PROPAGATION_CACHE_CAPACITY
            if propagation_cache is None
            else propagation_cache
        ),
        start_method=args.start_method,
    )


def _command_serve(args: argparse.Namespace) -> int:
    service = _build_session(args, serving_config=_serving_config_from_args(args))
    engine = service.engine(CLI_SESSION)
    workload = QueryWorkload(engine.graph, rng=args.seed)
    queries = _mixed_batch(args, workload)
    rows = []
    for round_number in range(1, max(args.repeat, 1) + 1):
        response = service.batch(
            BatchRequest(
                session=CLI_SESSION, queries=tuple(queries), workers=args.workers
            )
        )
        statistics = response.statistics
        rows.append(
            {
                "round": round_number,
                "queries": statistics["total_queries"],
                "mode": statistics["mode"],
                "workers": statistics["workers"],
                "wall_clock_s": round(statistics["elapsed_seconds"], 4),
                "qps": round(statistics["queries_per_second"], 2),
                "cache_hits": statistics["result_cache_hits"],
                # Propagation hits are counted inside the executing process,
                # so parallel rounds report the workers' caches here even
                # though the parent-side totals below stay at zero.
                "prop_hits": statistics["propagation_cache_hits"],
                "executed": statistics["executed"],
            }
        )
    print(format_table(rows, title="batch serving throughput"))
    cache_statistics = service.serving(CLI_SESSION).cache_statistics()
    for cache_name, payload in cache_statistics.items():
        print(
            f"{cache_name}: {payload['hits']} hits / {payload['lookups']} lookups "
            f"({payload['evictions']} evictions)"
        )
    if args.out:
        report = {
            "graph": engine.graph.name,
            "num_vertices": engine.graph.num_vertices(),
            "batch_size": len(queries),
            "rounds": rows,
            "caches": cache_statistics,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")
    return 0


def _command_update(args: argparse.Namespace) -> int:
    from repro.dynamic.updates import UpdateBatch, random_update_batch
    from repro.exceptions import DynamicUpdateError

    # Argument validation and script loading come before the engine build:
    # the offline phase is the expensive step, and misuse should fail fast.
    if (args.script is None) == (args.random is None):
        raise DynamicUpdateError("exactly one of --script or --random is required")
    graph = load_graph_json(args.graph)
    if args.script is not None:
        batch = UpdateBatch.load(args.script)
    else:
        focus = args.focus
        if focus is not None and focus not in graph:
            # Graph JSON vertex ids are ints or strings; retry the int form.
            try:
                focus = int(focus)
            except ValueError:
                pass
        batch = random_update_batch(
            graph,
            args.random,
            rng=args.seed,
            insert_ratio=args.insert_ratio,
            focus=focus,
            focus_radius=args.focus_radius,
        )
    batch.validate_against(graph)
    if args.out_script:
        batch.save(args.out_script)
        print(f"edit script ({len(batch)} edits) written to {args.out_script}")

    from repro.graph.io import graph_to_dict

    # The graph is already loaded above (script validation); ship it inline
    # instead of making the facade parse the same file a second time.
    service = CommunityService()
    service.build(
        BuildRequest(
            session=CLI_SESSION,
            graph=graph_to_dict(graph),
            index_path=args.index or None,
            config={"backend": getattr(args, "backend", "reference")},
        )
    )

    # max(..., 1) keeps range()'s step legal when the script is empty.
    chunk = max(len(batch), 1) if args.batch_size is None else max(args.batch_size, 1)
    rows = []
    for start in range(0, len(batch), chunk):
        response = service.update(
            UpdateRequest(
                session=CLI_SESSION,
                edits=tuple(batch[start:start + chunk]),
                damage_threshold=args.damage_threshold,
            )
        )
        report = response.report
        rows.append(
            {
                "edits": f"{start}..{min(start + chunk, len(batch)) - 1}",
                "mode": report["applied_mode"],
                "affected": report["affected_vertices"],
                "damage": round(report["damage_ratio"], 3),
                "dirt": round(report["overlay_dirt_ratio"], 3),
                "truss_changed": report["truss_changed_edges"],
                "new_vertices": report["new_vertices"],
                "epoch": report["epoch"],
                "wall_clock_s": round(report["elapsed_seconds"], 4),
            }
        )
    if rows:
        print(format_table(rows, title="dynamic update replay"))
    engine = service.engine(CLI_SESSION)
    print(
        f"graph after replay: |V| = {engine.graph.num_vertices()}, "
        f"|E| = {engine.graph.num_edges()} "
        f"(backend {engine.config.backend}, epoch {engine.epoch}, "
        f"overlay dirt {engine.overlay_dirt_ratio():.3f})"
    )
    if args.out_graph:
        save_graph_json(engine.graph, args.out_graph)
        print(f"mutated graph written to {args.out_graph}")
    if args.out_index:
        engine.save_index(args.out_index)
        print(f"refreshed index written to {args.out_index}")
    return 0


def _command_gateway(args: argparse.Namespace) -> int:
    from repro.service.agateway import AsyncServiceGateway
    from repro.service.gateway import ServiceGateway
    from repro.service.sharded import ShardedCommunityService

    if args.shards > 0:
        service = ShardedCommunityService(
            num_shards=args.shards,
            replicas=args.replicas,
            mode="process",
            supervise_interval=2.0,
        )
    else:
        service = CommunityService()
    if args.graph:
        response = service.build(
            BuildRequest(
                session=args.session,
                graph_path=args.graph,
                index_path=args.index or None,
                config={"backend": getattr(args, "backend", "reference")},
            )
        )
        graph_info = response.engine["graph"]
        print(
            f"session {args.session!r}: |V| = {graph_info['num_vertices']}, "
            f"|E| = {graph_info['num_edges']} "
            f"(backend {response.engine['backend']})"
        )
    if args.shards > 0:
        gateway = AsyncServiceGateway(
            service, host=args.host, port=args.port, max_pending=args.max_pending
        )
        gateway.start()
        print(
            f"serving the v1 API on {gateway.url} "
            f"({args.shards} shards x {args.replicas} replicas, Ctrl-C to stop)"
        )
        try:
            gateway.serve_forever()
        except KeyboardInterrupt:
            print("gateway stopped")
        finally:
            gateway.shutdown()
            service.close()
        return 0
    gateway = ServiceGateway(service, host=args.host, port=args.port)
    print(f"serving the v1 API on {gateway.url} (Ctrl-C to stop)")
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        print("gateway stopped")
    finally:
        gateway.close()
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        catalog,
        format_scenario_table,
        get_scenario,
        load_scenario_file,
        load_scenarios_document,
        run_scenario,
        smoke_catalog,
        validate_bench_file,
        write_scenarios_document,
    )

    if args.action == "list":
        specs = smoke_catalog() if args.smoke else catalog()
        rows = [
            {
                "name": spec.name,
                "smoke": "yes" if spec.smoke else "",
                "recipe": spec.graph.recipe,
                "model": spec.probabilities.model,
                "trace": spec.trace.kind,
                "|V|": spec.graph.num_vertices,
                "ops": spec.trace.operations,
                "description": spec.description,
            }
            for spec in specs
        ]
        print(format_table(rows, title="scenario catalog"))
        return 0

    if args.action == "run":
        specs = []
        if args.all:
            specs.extend(catalog())
        elif args.smoke:
            specs.extend(smoke_catalog())
        specs.extend(get_scenario(name) for name in args.names)
        specs.extend(load_scenario_file(path) for path in args.spec)
        if not specs:  # bare `repro scenario run` means the PR gate subset
            specs.extend(smoke_catalog())
        service = CommunityService()
        reports = []
        sharded_failures = []
        for spec in specs:
            started = time.perf_counter()
            report = run_scenario(spec, service=service)
            print(
                f"ran {spec.name} in {time.perf_counter() - started:.1f}s "
                f"(equivalence={'ok' if report.equivalence else 'FAILED'}, "
                f"speedup {report.speedup:.2f}x)"
            )
            reports.append(report)
            if args.shards > 0:
                from repro.scenarios.sharded import run_scenario_sharded

                sharded = run_scenario_sharded(
                    spec, num_shards=args.shards, replicas=args.replicas
                )
                print(
                    f"  sharded replay ({args.shards} shards): "
                    f"equivalence={'ok' if sharded.equivalence else 'FAILED'} "
                    f"over {sharded.operations} operations"
                )
                if not sharded.passed:
                    sharded_failures.append(spec.name)
        print(format_scenario_table(reports))
        if args.out:
            write_scenarios_document(reports, args.out)
            print(f"scenario document written to {args.out}")
        failed = [report.scenario for report in reports if not report.passed]
        failed.extend(
            f"{name} (sharded replay)"
            for name in sharded_failures
            if name not in failed
        )
        if failed and not args.no_enforce_gates:
            print(f"error: gates failed for: {', '.join(failed)}", file=sys.stderr)
            return 2
        return 0

    if args.action == "report":
        reports = load_scenarios_document(args.document)
        print(format_scenario_table(reports, title=f"scenario report ({args.document})"))
        failed = [report.scenario for report in reports if not report.passed]
        if failed:
            print(f"error: gates failed for: {', '.join(failed)}", file=sys.stderr)
            return 2
        return 0

    # validate
    from pathlib import Path

    paths = [Path(p) for p in args.documents] or sorted(Path(".").glob("BENCH_*.json"))
    if not paths:
        print("error: no BENCH_*.json documents found", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        errors = validate_bench_file(path)
        if errors:
            failures += 1
            for message in errors:
                print(f"error: {message}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 2 if failures else 0


def _command_store(args: argparse.Namespace) -> int:
    from repro.store import inspect_store, pack_store, verify_store

    if args.action == "pack":
        config: dict = {"backend": getattr(args, "backend", "reference")}
        if not args.index:
            thresholds = [float(token) for token in args.thresholds.split(",") if token]
            config.update(
                {
                    "max_radius": args.max_radius,
                    "thresholds": thresholds,
                    "fanout": args.fanout,
                    "leaf_capacity": args.leaf_capacity,
                }
            )
        service = CommunityService()
        started = time.perf_counter()
        service.build(
            BuildRequest(
                session=CLI_SESSION,
                graph_path=args.graph,
                index_path=args.index or None,
                config=config,
            )
        )
        engine = service.engine(CLI_SESSION)
        info = pack_store(engine, args.out)
        print(
            f"packed {engine.graph.name}: |V| = {engine.graph.num_vertices()}, "
            f"|E| = {engine.graph.num_edges()} into {info['sections']} sections "
            f"({info['file_size']} bytes) in {time.perf_counter() - started:.2f}s"
        )
        print(f"store written to {args.out}")
        return 0
    if args.action == "inspect":
        document = inspect_store(args.store)
    else:
        # verify: a store that verifies clean is guaranteed to open.
        document = verify_store(args.store)
    try:
        print(json.dumps(document, indent=2))
    except BrokenPipeError:
        # `repro store inspect ... | head` closed the pipe; point stdout at
        # devnull so the interpreter's exit-time flush stays quiet too.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "stats": _command_stats,
    "build-index": _command_build_index,
    "topl": _command_topl,
    "dtopl": _command_dtopl,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "batch": _command_serve,
    "update": _command_update,
    "gateway": _command_gateway,
    "scenario": _command_scenario,
    "store": _command_store,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised through `main` in tests
    sys.exit(main())
