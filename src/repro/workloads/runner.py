"""Experiment runner: wires datasets, sweeps, queries and methods together.

The benches under ``benchmarks/`` are thin wrappers around this runner so the
same experiments can also be executed programmatically (see
``examples/parameter_study.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import synthetic_small_world
from repro.graph.social_network import SocialNetwork
from repro.pruning.stats import PruningConfig
from repro.query.params import DTopLQuery, TopLQuery
from repro.serve.batch import (
    DEFAULT_PROPAGATION_CACHE_CAPACITY,
    DEFAULT_RESULT_CACHE_CAPACITY,
    ServingConfig,
)
from repro.service.facade import CommunityService
from repro.service.schema import BatchRequest
from repro.workloads.queries import QueryWorkload
from repro.workloads.sweeps import PAPER_PARAMETER_GRID, ParameterGrid, SweepPoint


@dataclass
class ExperimentRunner:
    """Builds engines per graph and measures query methods over sweeps.

    Engines are hosted as sessions of one :class:`CommunityService` — the
    runner binds work to session names and routes batch measurements through
    :class:`~repro.service.schema.BatchRequest` objects, the same boundary
    remote clients use.
    """

    grid: ParameterGrid = PAPER_PARAMETER_GRID
    config: Optional[EngineConfig] = None
    rng_seed: int = 2024

    def __post_init__(self) -> None:
        self._service = CommunityService()

    @property
    def service(self) -> CommunityService:
        """The service hosting this runner's engines (one session per graph)."""
        return self._service

    # ------------------------------------------------------------------ #
    # graph / engine management
    # ------------------------------------------------------------------ #
    def _graph_key(self, graph: SocialNetwork) -> str:
        return f"{graph.name}:{graph.num_vertices()}:{graph.num_edges()}"

    def session_for(self, graph: SocialNetwork) -> str:
        """Host ``graph`` as a service session (idempotent); returns its name."""
        key = self._graph_key(graph)
        if not self._service.has_session(key):
            engine = InfluentialCommunityEngine.build(
                graph, config=self.config, validate=False
            )
            self._service.adopt(engine, session=key)
        return key

    def engine_for(self, graph: SocialNetwork) -> InfluentialCommunityEngine:
        """Build (and cache) the engine for a graph; keyed by graph name and size."""
        return self._service.engine(self.session_for(graph))

    def synthetic_graph(
        self,
        distribution: str,
        num_vertices: int,
        keywords_per_vertex: Optional[int] = None,
        domain_size: Optional[int] = None,
    ) -> SocialNetwork:
        """Generate one of the paper's synthetic graphs at the requested setting."""
        defaults = self.grid.defaults()
        return synthetic_small_world(
            distribution,
            num_vertices=num_vertices,
            keywords_per_vertex=keywords_per_vertex or defaults["keywords_per_vertex"],
            domain_size=domain_size or defaults["keyword_domain"],
            rng=self.rng_seed,
        )

    # ------------------------------------------------------------------ #
    # measurements
    # ------------------------------------------------------------------ #
    def serving_session_for(
        self,
        graph: SocialNetwork,
        workers: int = 1,
        result_cache_capacity: Optional[int] = None,
        propagation_cache_capacity: Optional[int] = None,
    ) -> str:
        """Host a serving session for ``graph`` at the given knobs (idempotent).

        Keyed like :meth:`engine_for` plus the serving knobs, so repeated
        sweep steps over the same graph share result/propagation caches —
        the session's serving engine persists, exactly like production
        traffic against one gateway session.
        """
        key = (
            f"{self._graph_key(graph)}"
            f":w{workers}:rc{result_cache_capacity}:pc{propagation_cache_capacity}"
        )
        if not self._service.has_session(key):
            config = ServingConfig(
                workers=workers,
                result_cache_capacity=(
                    DEFAULT_RESULT_CACHE_CAPACITY
                    if result_cache_capacity is None
                    else result_cache_capacity
                ),
                propagation_cache_capacity=(
                    DEFAULT_PROPAGATION_CACHE_CAPACITY
                    if propagation_cache_capacity is None
                    else propagation_cache_capacity
                ),
            )
            self._service.adopt(
                self.engine_for(graph), session=key, serving_config=config
            )
        return key

    def serving_for(
        self,
        graph: SocialNetwork,
        workers: int = 1,
        result_cache_capacity: Optional[int] = None,
        propagation_cache_capacity: Optional[int] = None,
    ):
        """The serving engine behind :meth:`serving_session_for` (old signature)."""
        return self._service.serving(
            self.serving_session_for(
                graph,
                workers=workers,
                result_cache_capacity=result_cache_capacity,
                propagation_cache_capacity=propagation_cache_capacity,
            )
        )

    def measure_topl(
        self,
        graph: SocialNetwork,
        query: TopLQuery,
        pruning: Optional[PruningConfig] = None,
    ) -> SweepPoint:
        """Run one TopL-ICDE query and capture wall clock + pruning metrics."""
        engine = self.engine_for(graph)
        pruning = pruning if pruning is not None else PruningConfig.all_enabled()
        started = time.perf_counter()
        result = engine.topl(query, pruning=pruning)
        elapsed = time.perf_counter() - started
        return SweepPoint(
            settings={"dataset": graph.name, **query.describe(), "pruning": pruning.label()},
            metrics={
                "wall_clock_s": elapsed,
                "communities": len(result),
                "best_score": result.scores[0] if result.scores else 0.0,
                "pruned": result.statistics.total_pruned,
                "scored": result.statistics.communities_scored,
            },
        )

    def measure_dtopl(
        self,
        graph: SocialNetwork,
        query: DTopLQuery,
        method: Union[str, Callable] = "greedy_wp",
    ) -> SweepPoint:
        """Run one DTopL-ICDE query with the chosen method and capture metrics.

        ``method`` is ``"greedy_wp"`` (the paper's algorithm), ``"greedy_wop"``
        or ``"optimal"``, or any callable with the baseline signature.
        """
        from repro.query.baselines.greedy_wop import greedy_wop_dtopl
        from repro.query.baselines.optimal import optimal_dtopl

        engine = self.engine_for(graph)
        named: dict[str, Callable] = {
            "greedy_wop": lambda: greedy_wop_dtopl(graph, query, index=engine.index),
            "optimal": lambda: optimal_dtopl(graph, query, index=engine.index),
            "greedy_wp": lambda: engine.dtopl(query),
        }
        if callable(method):
            runner = lambda: method(graph, query, index=engine.index)  # noqa: E731
            method_name = getattr(method, "__name__", "custom")
        else:
            if method not in named:
                raise KeyError(
                    f"unknown DTopL method {method!r}; expected one of {sorted(named)}"
                )
            runner = named[method]
            method_name = method
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        return SweepPoint(
            settings={"dataset": graph.name, **query.describe(), "method": method_name},
            metrics={
                "wall_clock_s": elapsed,
                "diversity_score": result.diversity_score,
                "communities": len(result),
                "gain_evaluations": result.increment_evaluations,
                "candidates": result.candidates_considered,
            },
        )

    def measure_batch(
        self,
        graph: SocialNetwork,
        queries: Sequence[Union[TopLQuery, DTopLQuery]],
        workers: int = 1,
        result_cache_capacity: Optional[int] = None,
        propagation_cache_capacity: Optional[int] = None,
    ) -> SweepPoint:
        """Serve a mixed query batch through the batch path and capture throughput.

        The serving session is cached per graph + knobs, so calling this for
        consecutive sweep settings reuses warm caches — the production shape
        of a parameter sweep.  The measurement itself travels as a
        :class:`BatchRequest` through the service facade, the same boundary
        a remote client hits.
        """
        session = self.serving_session_for(
            graph,
            workers=workers,
            result_cache_capacity=result_cache_capacity,
            propagation_cache_capacity=propagation_cache_capacity,
        )
        response = self._service.batch(
            BatchRequest(session=session, queries=tuple(queries), workers=workers)
        )
        statistics = response.statistics
        return SweepPoint(
            settings={
                "dataset": graph.name,
                "batch_size": len(queries),
                "workers": statistics["workers"],
                "mode": statistics["mode"],
            },
            metrics={
                "wall_clock_s": statistics["elapsed_seconds"],
                "queries_per_second": statistics["queries_per_second"],
                "executed": statistics["executed"],
                "result_cache_hits": statistics["result_cache_hits"],
                "propagation_cache_hits": statistics["propagation_cache_hits"],
            },
        )

    def workload_for(self, graph: SocialNetwork, seed: Optional[int] = None) -> QueryWorkload:
        """Build a reproducible query workload for ``graph``."""
        return QueryWorkload(graph, rng=self.rng_seed if seed is None else seed)

    # ------------------------------------------------------------------ #
    # scenario screening
    # ------------------------------------------------------------------ #
    def run_scenario(self, scenario, enforce_gates: bool = False):
        """Execute one declarative scenario through this runner's service.

        ``scenario`` is a :class:`~repro.scenarios.spec.ScenarioSpec` or a
        catalog scenario name; returns the
        :class:`~repro.scenarios.pipeline.ScenarioReport`.  The scenario's
        sessions are namespaced and dropped on completion, so they never
        collide with the runner's per-graph sessions.
        """
        from repro.scenarios.catalog import get_scenario
        from repro.scenarios.pipeline import run_scenario as _run
        from repro.scenarios.spec import ScenarioSpec

        spec = scenario if isinstance(scenario, ScenarioSpec) else get_scenario(scenario)
        return _run(spec, service=self._service, enforce_gates=enforce_gates)

    def run_scenarios(self, scenarios, enforce_gates: bool = False) -> list:
        """Run several scenarios (specs or catalog names) and collect reports."""
        return [
            self.run_scenario(scenario, enforce_gates=enforce_gates)
            for scenario in scenarios
        ]
