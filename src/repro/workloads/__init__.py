"""Workloads: query generation, Table III parameter grid, runner, reporting."""

from repro.workloads.queries import QueryWorkload
from repro.workloads.runner import ExperimentRunner
from repro.workloads.reporting import (
    format_series,
    format_table,
    speedup,
    summarize_comparison,
)
from repro.workloads.sweeps import PAPER_PARAMETER_GRID, ParameterGrid, SweepPoint

__all__ = [
    "QueryWorkload",
    "ExperimentRunner",
    "format_series",
    "format_table",
    "speedup",
    "summarize_comparison",
    "PAPER_PARAMETER_GRID",
    "ParameterGrid",
    "SweepPoint",
]
