"""The paper's parameter grid (Table III) and sweep helpers.

Each Figure 3 / Figure 6 panel varies exactly one parameter while the others
stay at their defaults; :class:`ParameterGrid` encodes the grid and produces
the per-panel sweeps the benches iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ParameterGrid:
    """Table III: explored values and defaults for every evaluation parameter."""

    theta_values: tuple = (0.1, 0.2, 0.3)
    query_keyword_sizes: tuple = (2, 3, 5, 8, 10)
    truss_k_values: tuple = (3, 4, 5)
    radius_values: tuple = (1, 2, 3)
    result_sizes: tuple = (2, 3, 5, 8, 10)
    keywords_per_vertex_values: tuple = (1, 2, 3, 4, 5)
    keyword_domain_sizes: tuple = (10, 20, 50, 80)
    graph_sizes: tuple = (10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000)
    candidate_factors: tuple = (2, 3, 5, 8, 10)

    default_theta: float = 0.2
    default_query_keywords: int = 5
    default_truss_k: int = 4
    default_radius: int = 2
    default_result_size: int = 5
    default_keywords_per_vertex: int = 3
    default_keyword_domain: int = 50
    default_graph_size: int = 25_000
    default_candidate_factor: int = 3

    def defaults(self) -> dict:
        """Return the default setting of every parameter."""
        return {
            "theta": self.default_theta,
            "num_query_keywords": self.default_query_keywords,
            "k": self.default_truss_k,
            "radius": self.default_radius,
            "top_l": self.default_result_size,
            "keywords_per_vertex": self.default_keywords_per_vertex,
            "keyword_domain": self.default_keyword_domain,
            "graph_size": self.default_graph_size,
            "candidate_factor": self.default_candidate_factor,
        }

    def sweep(self, parameter: str) -> list[dict]:
        """Return one settings dict per value of ``parameter`` (others at defaults).

        ``parameter`` is one of the keys of :meth:`defaults`.
        """
        values = {
            "theta": self.theta_values,
            "num_query_keywords": self.query_keyword_sizes,
            "k": self.truss_k_values,
            "radius": self.radius_values,
            "top_l": self.result_sizes,
            "keywords_per_vertex": self.keywords_per_vertex_values,
            "keyword_domain": self.keyword_domain_sizes,
            "graph_size": self.graph_sizes,
            "candidate_factor": self.candidate_factors,
        }
        if parameter not in values:
            raise KeyError(
                f"unknown sweep parameter {parameter!r}; expected one of {sorted(values)}"
            )
        sweeps = []
        for value in values[parameter]:
            settings = self.defaults()
            settings[parameter] = value
            settings["swept_parameter"] = parameter
            settings["swept_value"] = value
            sweeps.append(settings)
        return sweeps

    def scaled(self, factor: float) -> "ParameterGrid":
        """Return a grid whose graph sizes are scaled by ``factor``.

        The benches run on pure-Python simulators, so the default bench
        profile scales the 10K–1M sweep down while keeping every other
        parameter identical (documented in EXPERIMENTS.md).
        """
        scaled_sizes = tuple(max(100, int(size * factor)) for size in self.graph_sizes)
        scaled_default = max(100, int(self.default_graph_size * factor))
        return replace(self, graph_sizes=scaled_sizes, default_graph_size=scaled_default)


#: The grid exactly as printed in Table III.
PAPER_PARAMETER_GRID = ParameterGrid()


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep: the settings used and the metrics observed."""

    settings: dict
    metrics: dict = field(default_factory=dict)

    def row(self) -> dict:
        """Flatten into a single report row."""
        merged = dict(self.settings)
        merged.update(self.metrics)
        return merged
