"""Plain-text report formatting for experiment results.

The benches print the same rows/series the paper's tables and figures report;
these helpers format lists of dict rows as aligned ASCII tables so the output
of ``pytest benchmarks/ --benchmark-only`` is directly readable and easy to
copy into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Sequence


def bench_envelope(bench: str, seed: int, speedup_factor: float, equivalence: bool) -> dict:
    """The uniform header every ``BENCH_*.json`` document must carry.

    All recorders start their document from this envelope so the fields the
    checked-in schema requires (``bench``, ``recorded_unix``, ``cpu_count``,
    ``seed``, ``speedup``, ``equivalence``) are present and shaped the same
    everywhere — the CI ``bench-schema`` step validates exactly this contract
    (see ``repro.scenarios.bench_schema``).

    ``speedup_factor`` is the document's *headline* ratio (each bench
    declares which comparison that is); ``equivalence`` records whether the
    run proved cross-backend bit-identical answers (pass ``True`` for benches
    with no second backend to compare — there is nothing to disprove).
    """
    return {
        "bench": str(bench),
        "recorded_unix": int(time.time()),
        "cpu_count": os.cpu_count() or 1,
        "seed": int(seed),
        "speedup": round(float(speedup_factor), 3),
        "equivalence": bool(equivalence),
    }


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Format ``rows`` (list of dicts) as an aligned ASCII table.

    Parameters
    ----------
    rows:
        The data rows; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional caption printed above the table.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_render_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max((len(cells[i]) for cells in rendered_rows), default=0))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for cells in rendered_rows:
        lines.append(" | ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _render_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)


def format_series(label: str, points: Iterable[tuple]) -> str:
    """Format an (x, y) series like one curve of a paper figure."""
    parts = [f"{x}={_render_cell(y)}" for x, y in points]
    return f"{label}: " + ", ".join(parts)


def speedup(baseline_seconds: float, method_seconds: float) -> float:
    """Return the speed-up factor ``baseline / method`` (0 when the method took no time)."""
    if method_seconds <= 0:
        return float("inf") if baseline_seconds > 0 else 1.0
    return baseline_seconds / method_seconds


def summarize_comparison(rows: Sequence[dict], method_key: str, baseline_key: str) -> dict:
    """Summarise who wins and by what factor across comparison rows.

    Each row must contain ``method_key`` and ``baseline_key`` (seconds).
    Returns the number of rows each side wins plus min/median/max speed-up,
    which is the "shape" EXPERIMENTS.md records per figure.
    """
    speedups = []
    method_wins = 0
    for row in rows:
        method_time = float(row[method_key])
        baseline_time = float(row[baseline_key])
        speedups.append(speedup(baseline_time, method_time))
        if method_time <= baseline_time:
            method_wins += 1
    speedups.sort()
    count = len(speedups)
    return {
        "rows": count,
        "method_wins": method_wins,
        "baseline_wins": count - method_wins,
        "min_speedup": round(speedups[0], 3) if speedups else 0.0,
        "median_speedup": round(speedups[count // 2], 3) if speedups else 0.0,
        "max_speedup": round(speedups[-1], 3) if speedups else 0.0,
    }
