"""Query workload generation.

The evaluation issues queries whose keyword sets ``Q`` are random samples of
the keyword domain ``Sigma`` (Section VIII-A).  :class:`QueryWorkload`
produces reproducible batches of TopL-ICDE / DTopL-ICDE queries for a given
graph and parameter setting, used by the benches and the experiment runner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

from repro.exceptions import DatasetError
from repro.graph.social_network import SocialNetwork
from repro.query.params import (
    DEFAULT_CANDIDATE_FACTOR,
    DEFAULT_RADIUS,
    DEFAULT_RESULT_SIZE,
    DEFAULT_THETA,
    DEFAULT_TRUSS_K,
    DTopLQuery,
    TopLQuery,
    make_dtopl_query,
    make_topl_query,
)

RandomLike = Union[int, random.Random, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


@dataclass
class QueryWorkload:
    """Generates reproducible query batches for one graph.

    Parameters
    ----------
    graph:
        The graph the queries will run against; its keyword domain is the
        sampling pool for ``Q``.
    rng:
        Seed or RNG instance.
    """

    graph: SocialNetwork
    rng: RandomLike = 97

    def __post_init__(self) -> None:
        self._rng = _resolve_rng(self.rng)
        self._domain = sorted(self.graph.keyword_domain())
        if not self._domain:
            raise DatasetError(
                f"graph {self.graph.name!r} has no keywords; assign keywords before "
                "generating query workloads"
            )

    def sample_keywords(self, count: int) -> frozenset:
        """Sample ``count`` distinct query keywords from the graph's domain."""
        count = min(count, len(self._domain))
        return frozenset(self._rng.sample(self._domain, count))

    def topl_query(
        self,
        num_keywords: int = 5,
        k: int = DEFAULT_TRUSS_K,
        radius: int = DEFAULT_RADIUS,
        theta: float = DEFAULT_THETA,
        top_l: int = DEFAULT_RESULT_SIZE,
    ) -> TopLQuery:
        """Generate one TopL-ICDE query with a freshly sampled keyword set."""
        return make_topl_query(
            self.sample_keywords(num_keywords), k=k, radius=radius, theta=theta, top_l=top_l
        )

    def dtopl_query(
        self,
        num_keywords: int = 5,
        k: int = DEFAULT_TRUSS_K,
        radius: int = DEFAULT_RADIUS,
        theta: float = DEFAULT_THETA,
        top_l: int = DEFAULT_RESULT_SIZE,
        candidate_factor: int = DEFAULT_CANDIDATE_FACTOR,
    ) -> DTopLQuery:
        """Generate one DTopL-ICDE query with a freshly sampled keyword set."""
        return make_dtopl_query(
            self.sample_keywords(num_keywords),
            k=k,
            radius=radius,
            theta=theta,
            top_l=top_l,
            candidate_factor=candidate_factor,
        )

    def topl_batch(self, size: int, **kwargs) -> list[TopLQuery]:
        """Generate a batch of TopL-ICDE queries (one keyword sample each)."""
        return [self.topl_query(**kwargs) for _ in range(size)]

    def dtopl_batch(self, size: int, **kwargs) -> list[DTopLQuery]:
        """Generate a batch of DTopL-ICDE queries (one keyword sample each)."""
        return [self.dtopl_query(**kwargs) for _ in range(size)]

    def sample_centers(self, count: int, min_degree: int = 0) -> list:
        """Sample candidate centre vertices (optionally requiring a minimum degree).

        Used by the Figure 2 DBLP sampling protocol and by the case-study
        bench to pick well-connected centres.
        """
        candidates = [
            v for v in self.graph.vertices() if self.graph.degree(v) >= min_degree
        ]
        if not candidates:
            return []
        count = min(count, len(candidates))
        return self._rng.sample(candidates, count)
