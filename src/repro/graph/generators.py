"""Synthetic social-network generators.

Section VIII-A of the paper builds its synthetic workloads from
Newman–Watts–Strogatz (NWS) small-world graphs: a ring of ``|V(G)|`` vertices,
each connected to its ``m`` nearest ring neighbours, with an extra random
shortcut added per edge with probability ``mu`` (paper defaults ``m = 6`` and
``mu = 0.167``).  Edge propagation probabilities are drawn uniformly from
``[0.5, 0.6)``.

This module reimplements that generator from scratch (no ``networkx``
dependency) plus a few companions — Erdős–Rényi, Barabási–Albert and a planted
community generator — used by the extra ablations, the test-suite and the
dataset stand-ins in :mod:`repro.graph.datasets`.

All generators take an explicit :class:`random.Random` (or an integer seed)
so results are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Union

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork

RandomLike = Union[int, random.Random, None]

#: Paper defaults for the NWS synthetic graphs (Section VIII-A).
DEFAULT_RING_NEIGHBORS = 6
DEFAULT_SHORTCUT_PROBABILITY = 0.167
#: Paper default range for edge propagation probabilities.
DEFAULT_WEIGHT_RANGE = (0.5, 0.6)


def _resolve_rng(rng: RandomLike) -> random.Random:
    """Return a :class:`random.Random` from a seed, an instance, or ``None``."""
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def _draw_probability(rng: random.Random, weight_range: tuple[float, float]) -> float:
    low, high = weight_range
    if not 0.0 <= low <= high <= 1.0:
        raise GraphError(f"weight range must satisfy 0 <= low <= high <= 1, got {weight_range}")
    return rng.uniform(low, high)


def newman_watts_strogatz_graph(
    num_vertices: int,
    ring_neighbors: int = DEFAULT_RING_NEIGHBORS,
    shortcut_probability: float = DEFAULT_SHORTCUT_PROBABILITY,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "nws",
) -> SocialNetwork:
    """Generate a Newman–Watts–Strogatz small-world social network.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``|V(G)|``; vertices are labelled ``0..n-1``.
    ring_neighbors:
        Each vertex is connected to its ``ring_neighbors`` nearest neighbours
        on the ring (``m`` in the paper; must be even and ``>= 2``).
    shortcut_probability:
        Probability ``mu`` of adding a random shortcut per ring edge.
    weight_range:
        Interval from which directional propagation probabilities are drawn
        (uniformly, independently per direction).
    rng:
        Seed or :class:`random.Random` for reproducibility.
    name:
        Name recorded on the resulting graph.
    """
    if num_vertices <= 0:
        raise GraphError(f"num_vertices must be positive, got {num_vertices}")
    if ring_neighbors < 2 or ring_neighbors % 2 != 0:
        raise GraphError(f"ring_neighbors must be an even integer >= 2, got {ring_neighbors}")
    if not 0.0 <= shortcut_probability <= 1.0:
        raise GraphError(
            f"shortcut_probability must be in [0, 1], got {shortcut_probability}"
        )
    generator = _resolve_rng(rng)
    graph = SocialNetwork(name=name)
    for v in range(num_vertices):
        graph.add_vertex(v)

    half = ring_neighbors // 2
    # Ring lattice: connect each vertex to its `half` clockwise neighbours.
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            w = (v + offset) % num_vertices
            if v != w and not graph.has_edge(v, w):
                graph.add_edge(
                    v,
                    w,
                    _draw_probability(generator, weight_range),
                    _draw_probability(generator, weight_range),
                )
    # Newman–Watts shortcuts: for each ring edge, add an extra random edge
    # from its source with probability `shortcut_probability` (edges are added
    # on top of the lattice, never rewired, matching the NWS variant).
    ring_edges = list(graph.edges())
    for u, _ in ring_edges:
        if generator.random() < shortcut_probability:
            w = generator.randrange(num_vertices)
            if w != u and not graph.has_edge(u, w):
                graph.add_edge(
                    u,
                    w,
                    _draw_probability(generator, weight_range),
                    _draw_probability(generator, weight_range),
                )
    return graph


def ring_lattice_graph(
    num_vertices: int,
    ring_neighbors: int = DEFAULT_RING_NEIGHBORS,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "ring-lattice",
) -> SocialNetwork:
    """Generate a plain ring lattice (NWS with no shortcuts)."""
    return newman_watts_strogatz_graph(
        num_vertices,
        ring_neighbors=ring_neighbors,
        shortcut_probability=0.0,
        weight_range=weight_range,
        rng=rng,
        name=name,
    )


def erdos_renyi_graph(
    num_vertices: int,
    edge_probability: float,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "erdos-renyi",
) -> SocialNetwork:
    """Generate a G(n, p) Erdős–Rényi social network."""
    if num_vertices <= 0:
        raise GraphError(f"num_vertices must be positive, got {num_vertices}")
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    generator = _resolve_rng(rng)
    graph = SocialNetwork(name=name)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if generator.random() < edge_probability:
                graph.add_edge(
                    u,
                    v,
                    _draw_probability(generator, weight_range),
                    _draw_probability(generator, weight_range),
                )
    return graph


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int = 3,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "barabasi-albert",
) -> SocialNetwork:
    """Generate a Barabási–Albert preferential-attachment social network.

    Used by the dataset stand-ins to approximate the heavy-tailed degree
    profile of real co-authorship / co-purchase graphs.
    """
    if edges_per_vertex < 1:
        raise GraphError(f"edges_per_vertex must be >= 1, got {edges_per_vertex}")
    if num_vertices <= edges_per_vertex:
        raise GraphError(
            "num_vertices must exceed edges_per_vertex "
            f"({num_vertices} <= {edges_per_vertex})"
        )
    generator = _resolve_rng(rng)
    graph = SocialNetwork(name=name)
    # Start from a small clique so the first attachments have targets.
    initial = edges_per_vertex + 1
    for v in range(initial):
        graph.add_vertex(v)
    for u in range(initial):
        for v in range(u + 1, initial):
            graph.add_edge(
                u,
                v,
                _draw_probability(generator, weight_range),
                _draw_probability(generator, weight_range),
            )
    # repeated_targets holds one entry per edge endpoint, so sampling from it
    # is degree-proportional.
    repeated_targets: list[int] = []
    for u, v in graph.edges():
        repeated_targets.extend((u, v))
    for v in range(initial, num_vertices):
        graph.add_vertex(v)
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            targets.add(generator.choice(repeated_targets))
        for target in targets:
            graph.add_edge(
                v,
                target,
                _draw_probability(generator, weight_range),
                _draw_probability(generator, weight_range),
            )
            repeated_targets.extend((v, target))
    return graph


def planted_community_graph(
    community_sizes: Sequence[int],
    intra_probability: float = 0.6,
    inter_probability: float = 0.01,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "planted-communities",
) -> SocialNetwork:
    """Generate a graph with planted dense communities (stochastic block model).

    Handy for tests and case studies: communities are dense enough to contain
    k-trusses, while the sparse inter-community edges carry the influence
    propagation between them.
    """
    if not community_sizes:
        raise GraphError("community_sizes must be non-empty")
    if any(size <= 0 for size in community_sizes):
        raise GraphError(f"community sizes must be positive, got {community_sizes}")
    generator = _resolve_rng(rng)
    graph = SocialNetwork(name=name)
    blocks: list[list[int]] = []
    next_id = 0
    for size in community_sizes:
        block = list(range(next_id, next_id + size))
        next_id += size
        blocks.append(block)
        for v in block:
            graph.add_vertex(v)
    for b, block in enumerate(blocks):
        for i, u in enumerate(block):
            for v in block[i + 1:]:
                if generator.random() < intra_probability:
                    graph.add_edge(
                        u,
                        v,
                        _draw_probability(generator, weight_range),
                        _draw_probability(generator, weight_range),
                    )
        for other in blocks[b + 1:]:
            for u in block:
                for v in other:
                    if generator.random() < inter_probability:
                        graph.add_edge(
                            u,
                            v,
                            _draw_probability(generator, weight_range),
                            _draw_probability(generator, weight_range),
                        )
    return graph


def bipartite_ish_graph(
    num_left: int,
    num_right: int,
    edges_per_right: int = 2,
    closure_probability: float = 0.15,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "bipartite-ish",
) -> SocialNetwork:
    """Generate a *mostly* bipartite two-mode social network.

    Models user-item style graphs (customers × products, authors × venues):
    left vertices ``0 .. num_left-1`` form one mode, right vertices attach to
    ``edges_per_right`` left vertices each with preferential attachment
    (popular left hubs accumulate degree).  A pure bipartite graph has no
    triangles — and therefore no k-trusses beyond k = 2 — so with
    ``closure_probability`` per right vertex one pair of its left neighbours
    is linked directly, the "ish" that plants sparse triangle structure the
    truss machinery can bite on.
    """
    if num_left < 2 or num_right < 1:
        raise GraphError(
            f"bipartite-ish graphs need >= 2 left and >= 1 right vertices, "
            f"got {num_left} x {num_right}"
        )
    if edges_per_right < 1 or edges_per_right > num_left:
        raise GraphError(
            f"edges_per_right must be in [1, num_left], got {edges_per_right}"
        )
    if not 0.0 <= closure_probability <= 1.0:
        raise GraphError(
            f"closure_probability must be in [0, 1], got {closure_probability}"
        )
    generator = _resolve_rng(rng)
    graph = SocialNetwork(name=name)
    left = list(range(num_left))
    for v in range(num_left + num_right):
        graph.add_vertex(v)
    # One entry per attachment endpoint keeps sampling degree-proportional;
    # seeding with every left vertex once gives zero-degree hubs a chance.
    weighted_left: list[int] = list(left)
    for r in range(num_left, num_left + num_right):
        targets: set[int] = set()
        while len(targets) < edges_per_right:
            targets.add(generator.choice(weighted_left))
        for target in sorted(targets):
            graph.add_edge(
                r,
                target,
                _draw_probability(generator, weight_range),
                _draw_probability(generator, weight_range),
            )
            weighted_left.append(target)
        if len(targets) >= 2 and generator.random() < closure_probability:
            u, v = generator.sample(sorted(targets), 2)
            if not graph.has_edge(u, v):
                graph.add_edge(
                    u,
                    v,
                    _draw_probability(generator, weight_range),
                    _draw_probability(generator, weight_range),
                )
    return graph


def complete_graph(
    num_vertices: int,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
    name: str = "complete",
) -> SocialNetwork:
    """Generate a complete graph (every pair connected).

    Mostly used in tests: a complete graph on ``n`` vertices is an
    ``n``-truss, which makes truss-related assertions easy to state.
    """
    if num_vertices <= 0:
        raise GraphError(f"num_vertices must be positive, got {num_vertices}")
    generator = _resolve_rng(rng)
    graph = SocialNetwork(name=name)
    for v in range(num_vertices):
        graph.add_vertex(v)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            graph.add_edge(
                u,
                v,
                _draw_probability(generator, weight_range),
                _draw_probability(generator, weight_range),
            )
    return graph


def assign_uniform_weights(
    graph: SocialNetwork,
    weight_range: tuple[float, float] = DEFAULT_WEIGHT_RANGE,
    rng: RandomLike = None,
) -> SocialNetwork:
    """Redraw every directional edge probability uniformly from ``weight_range``.

    Mutates and returns ``graph``; useful when a graph was loaded from disk
    without probabilities.
    """
    generator = _resolve_rng(rng)
    for u, v in graph.edges():
        graph.set_probability(u, v, _draw_probability(generator, weight_range))
        graph.set_probability(v, u, _draw_probability(generator, weight_range))
    return graph
