"""Graph substrate: data model, traversal, generators, datasets, and I/O."""

from repro.graph.core import AdjacencyCore, GraphCore
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.graph.traversal import (
    bfs_distances,
    breadth_first_order,
    eccentricity,
    hop_distances_within,
    hop_subgraph,
    pairwise_hop_distance,
    satisfies_radius_constraint,
    vertices_within_radius,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_graph,
    newman_watts_strogatz_graph,
    planted_community_graph,
    ring_lattice_graph,
)
from repro.graph.keyword_assignment import assign_keywords, keyword_profile
from repro.graph.datasets import (
    amazon_like,
    dataset_names,
    dblp_like,
    gau,
    load_dataset,
    synthetic_small_world,
    uni,
    zipf,
)
from repro.graph.statistics import GraphStatistics, compute_statistics
from repro.graph.validation import (
    ValidationReport,
    largest_connected_component,
    require_connected,
    validate_graph,
)

__all__ = [
    "SocialNetwork",
    "SubgraphView",
    "bfs_distances",
    "breadth_first_order",
    "eccentricity",
    "hop_distances_within",
    "hop_subgraph",
    "pairwise_hop_distance",
    "satisfies_radius_constraint",
    "vertices_within_radius",
    "barabasi_albert_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "newman_watts_strogatz_graph",
    "planted_community_graph",
    "ring_lattice_graph",
    "assign_keywords",
    "keyword_profile",
    "amazon_like",
    "dataset_names",
    "dblp_like",
    "gau",
    "load_dataset",
    "synthetic_small_world",
    "uni",
    "zipf",
    "GraphStatistics",
    "compute_statistics",
    "ValidationReport",
    "largest_connected_component",
    "require_connected",
    "validate_graph",
]
