"""Structural validation of social networks.

The query layer assumes some basic invariants (no self-loops, probabilities in
``[0, 1]``, symmetric structural adjacency, both directions of every edge
present in the probability map).  :func:`validate_graph` checks them all and
either raises or returns a report, and is used by dataset loaders before an
index is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    issues: list[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """``True`` when no issues were found."""
        return not self.issues

    def add(self, message: str) -> None:
        self.issues.append(message)

    def raise_if_invalid(self) -> None:
        """Raise :class:`GraphError` summarising all issues, if any."""
        if self.issues:
            raise GraphError("; ".join(self.issues))


def validate_graph(graph: SocialNetwork, strict: bool = False) -> ValidationReport:
    """Validate the structural invariants of ``graph``.

    Parameters
    ----------
    graph:
        The network to check.
    strict:
        When ``True`` the function raises on the first report instead of
        returning it.
    """
    report = ValidationReport()
    adjacency = graph.adjacency()

    for u, neighbours in adjacency.items():
        if u in neighbours:
            report.add(f"self-loop at vertex {u!r}")
        for v in neighbours:
            if v not in adjacency:
                report.add(f"edge ({u!r}, {v!r}) references unknown vertex {v!r}")
                continue
            if u not in adjacency[v]:
                report.add(f"asymmetric adjacency for edge ({u!r}, {v!r})")

    for u, v in graph.edges():
        for a, b in ((u, v), (v, u)):
            try:
                probability = graph.probability(a, b)
            except GraphError:
                report.add(f"missing probability for direction ({a!r} -> {b!r})")
                continue
            if not 0.0 <= probability <= 1.0:
                report.add(
                    f"probability {probability!r} out of range for ({a!r} -> {b!r})"
                )

    if strict:
        report.raise_if_invalid()
    return report


def require_connected(graph: SocialNetwork) -> None:
    """Raise :class:`GraphError` if ``graph`` is not connected.

    Definition 1 models ``G`` as a connected graph; generators generally
    produce connected outputs, but loaded edge lists may not be.
    """
    if not graph.is_connected():
        components = graph.connected_components()
        raise GraphError(
            f"graph {graph.name!r} is not connected: "
            f"{len(components)} components, largest has {len(components[0])} vertices"
        )


def largest_connected_component(graph: SocialNetwork) -> SocialNetwork:
    """Return the induced subgraph of the largest connected component.

    Loaders use this to satisfy the connectivity assumption when a raw edge
    list contains stragglers.
    """
    components = graph.connected_components()
    if not components:
        return graph.copy()
    return graph.induced_subgraph(components[0], name=f"{graph.name}-lcc")
