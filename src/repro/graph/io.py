"""Graph input/output: edge lists, JSON documents, and networkx conversion.

Two on-disk formats are supported:

* **Edge list** — the format used by SNAP dumps of the paper's real datasets
  (DBLP, Amazon): one ``u<TAB>v`` pair per line, ``#`` comments ignored.
  Keyword sets and probabilities are not part of the format and must be
  assigned afterwards (see :mod:`repro.graph.keyword_assignment` and
  :func:`repro.graph.generators.assign_uniform_weights`).
* **JSON document** — a self-contained serialisation including keyword sets
  and both directional probabilities, used to persist generated datasets and
  to round-trip graphs in tests.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Union

from repro.exceptions import DatasetError, SerializationError
from repro.graph.social_network import SocialNetwork

PathLike = Union[str, Path]


@contextlib.contextmanager
def atomic_open(path: PathLike, mode: str = "w", encoding: str | None = "utf-8"):
    """Open ``path`` for writing atomically: temp file + ``os.replace``.

    The payload is written to a temporary file in the *same directory* (so the
    final rename never crosses filesystems) and moved over the target only
    after the writer block completes; a crash or exception mid-write can
    therefore never leave a truncated artifact behind — the old file, if any,
    survives untouched.  Used by every on-disk writer in the library (graph
    JSON, index JSON, the binary store).

    Pass ``mode="wb"`` (with ``encoding=None``) for binary payloads.
    """
    path = Path(path)
    if "b" in mode:
        encoding = None
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    handle = None
    try:
        handle = os.fdopen(descriptor, mode, encoding=encoding)
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(temp_name, path)
    except BaseException:
        if handle is not None and not handle.closed:
            handle.close()
        with contextlib.suppress(OSError):
            os.unlink(temp_name)
        raise


# --------------------------------------------------------------------------- #
# edge lists
# --------------------------------------------------------------------------- #
def read_edge_list(
    path: PathLike,
    default_probability: float = 0.5,
    name: str = "edge-list",
) -> SocialNetwork:
    """Load a SNAP-style edge list into a :class:`SocialNetwork`.

    Vertices are parsed as integers when possible, otherwise kept as strings.
    Every edge receives ``default_probability`` in both directions.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list file not found: {path}")
    graph = SocialNetwork(name=name)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected at least two columns, got {stripped!r}"
                )
            u, v = (_parse_vertex(parts[0]), _parse_vertex(parts[1]))
            if u == v:
                continue
            probability = default_probability
            if len(parts) >= 3:
                try:
                    probability = float(parts[2])
                except ValueError as exc:
                    raise DatasetError(
                        f"{path}:{line_number}: invalid probability {parts[2]!r}"
                    ) from exc
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, probability, probability)
    return graph


def write_edge_list(graph: SocialNetwork, path: PathLike) -> None:
    """Write the structural edges of ``graph`` as a tab-separated edge list."""
    with atomic_open(path) as handle:
        handle.write(f"# edge list for {graph.name}\n")
        handle.write(f"# |V|={graph.num_vertices()} |E|={graph.num_edges()}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\t{graph.probability(u, v):.6f}\n")


def _parse_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token


# --------------------------------------------------------------------------- #
# JSON documents
# --------------------------------------------------------------------------- #
_FORMAT_VERSION = 1


def graph_to_dict(graph: SocialNetwork) -> dict:
    """Serialise ``graph`` into a JSON-compatible dict."""
    vertices = [
        {"id": vertex, "keywords": sorted(graph.keywords(vertex))}
        for vertex in graph.vertices()
    ]
    edges = [
        {
            "u": u,
            "v": v,
            "p_uv": graph.probability(u, v),
            "p_vu": graph.probability(v, u),
        }
        for u, v in graph.edges()
    ]
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "vertices": vertices,
        "edges": edges,
    }


def graph_from_dict(payload: dict) -> SocialNetwork:
    """Deserialise a graph produced by :func:`graph_to_dict`."""
    try:
        version = payload["format_version"]
        if version != _FORMAT_VERSION:
            raise SerializationError(f"unsupported graph format version {version}")
        graph = SocialNetwork(name=payload.get("name", "graph"))
        for vertex in payload["vertices"]:
            graph.add_vertex(vertex["id"], vertex.get("keywords", ()))
        for edge in payload["edges"]:
            graph.add_edge(edge["u"], edge["v"], edge["p_uv"], edge.get("p_vu"))
    except SerializationError:
        raise
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed graph document: {exc}") from exc
    return graph


def save_graph_json(graph: SocialNetwork, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as a JSON document (atomically)."""
    with atomic_open(path) as handle:
        json.dump(graph_to_dict(graph), handle)


def load_graph_json(path: PathLike) -> SocialNetwork:
    """Load a graph JSON document written by :func:`save_graph_json`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"graph file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return graph_from_dict(payload)


# --------------------------------------------------------------------------- #
# networkx interoperability (optional dependency)
# --------------------------------------------------------------------------- #
def to_networkx(graph: SocialNetwork):
    """Convert to a ``networkx.DiGraph`` (both directions, ``weight`` = probability).

    Raises
    ------
    SerializationError
        If networkx is not installed.
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise SerializationError("networkx is not installed") from exc
    digraph = nx.DiGraph(name=graph.name)
    for vertex in graph.vertices():
        digraph.add_node(vertex, keywords=set(graph.keywords(vertex)))
    for u, v in graph.edges():
        digraph.add_edge(u, v, weight=graph.probability(u, v))
        digraph.add_edge(v, u, weight=graph.probability(v, u))
    return digraph


def from_networkx(nx_graph, default_probability: float = 0.5) -> SocialNetwork:
    """Convert a networkx (di)graph into a :class:`SocialNetwork`.

    Node attribute ``keywords`` (any iterable of strings) is preserved; edge
    attribute ``weight`` is used as the directional probability when present.
    """
    graph = SocialNetwork(name=getattr(nx_graph, "name", "networkx-import") or "networkx-import")
    for node, data in nx_graph.nodes(data=True):
        graph.add_vertex(node, data.get("keywords", ()))
    directed = nx_graph.is_directed()
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        weight = float(data.get("weight", default_probability))
        if graph.has_edge(u, v):
            graph.set_probability(u, v, weight)
        elif directed:
            reverse = nx_graph.get_edge_data(v, u) or {}
            graph.add_edge(u, v, weight, float(reverse.get("weight", weight)))
        else:
            graph.add_edge(u, v, weight, weight)
    return graph
