"""Core social-network data model.

The paper (Definition 1) models a social network as an attributed, weighted
graph ``G = (V(G), E(G), Phi(G))`` in which

* every vertex ``v_i`` carries a keyword set ``v_i.W`` describing the topics
  the user is interested in, and
* every edge ``e_{u,v}`` carries a propagation probability ``p_{u,v}`` — the
  probability that user ``u`` activates user ``v``.

The *structure* of the network is undirected (friendship / co-authorship /
co-purchase ties), while influence flows directionally along an edge: the
probability ``p_{u,v}`` that ``u`` activates ``v`` may differ from ``p_{v,u}``.
:class:`SocialNetwork` therefore stores an undirected adjacency structure and
a per-direction probability for each structural edge.

The class is intentionally free of third-party dependencies: the adjacency is
a dict-of-dicts, which keeps neighbour iteration, membership tests and copies
cheap, and makes the library usable in environments where ``networkx`` is not
installed.  Conversion helpers to/from ``networkx`` live in
:mod:`repro.graph.io`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    InvalidProbabilityError,
    VertexNotFoundError,
)

VertexId = Hashable
KeywordSet = frozenset


def _validate_probability(value: float) -> float:
    """Return ``value`` coerced to ``float`` after range-checking it."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidProbabilityError(value) from exc
    if not 0.0 <= value <= 1.0:
        raise InvalidProbabilityError(value)
    return value


class SocialNetwork:
    """An attributed, weighted social network.

    Parameters
    ----------
    name:
        Optional human-readable name (used by dataset registries and reports).

    Notes
    -----
    * Vertices may be any hashable object (ints and strings in practice).
    * ``add_edge(u, v, p_uv, p_vu)`` creates one *structural* (undirected)
      edge with two directional activation probabilities.  When ``p_vu`` is
      omitted it defaults to ``p_uv`` (symmetric influence).
    * Self-loops are rejected: they carry no structural or influence meaning
      in the paper's model.
    """

    __slots__ = ("name", "_adj", "_keywords", "_prob")

    def __init__(self, name: str = "social-network") -> None:
        self.name = name
        # _adj[u] is the set of structural neighbours of u (as a dict for
        # deterministic ordering; values are unused placeholders).
        self._adj: dict[VertexId, dict[VertexId, None]] = {}
        # _keywords[u] is the frozen keyword set of u.
        self._keywords: dict[VertexId, KeywordSet] = {}
        # _prob[(u, v)] is the probability that u activates v.  Both
        # directions are stored explicitly for every structural edge.
        self._prob: dict[tuple[VertexId, VertexId], float] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: VertexId, keywords: Iterable[str] = ()) -> None:
        """Add ``vertex`` with the given keyword set.

        Adding an existing vertex merges the new keywords into its set.
        """
        if vertex not in self._adj:
            self._adj[vertex] = {}
            self._keywords[vertex] = frozenset(keywords)
        elif keywords:
            self._keywords[vertex] = self._keywords[vertex] | frozenset(keywords)

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        p_uv: float = 0.5,
        p_vu: Optional[float] = None,
    ) -> None:
        """Add an undirected structural edge with directional probabilities.

        Parameters
        ----------
        u, v:
            Endpoints.  Missing endpoints are added with empty keyword sets.
        p_uv:
            Probability that ``u`` activates ``v``.
        p_vu:
            Probability that ``v`` activates ``u``; defaults to ``p_uv``.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loop).
        InvalidProbabilityError
            If a probability lies outside ``[0, 1]``.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u!r})")
        p_uv = _validate_probability(p_uv)
        p_vu = p_uv if p_vu is None else _validate_probability(p_vu)
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u][v] = None
        self._adj[v][u] = None
        self._prob[(u, v)] = p_uv
        self._prob[(v, u)] = p_vu

    def set_keywords(self, vertex: VertexId, keywords: Iterable[str]) -> None:
        """Replace the keyword set of ``vertex``."""
        self._require_vertex(vertex)
        self._keywords[vertex] = frozenset(keywords)

    def set_probability(self, u: VertexId, v: VertexId, p_uv: float) -> None:
        """Set the directional activation probability ``p_{u,v}``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._prob[(u, v)] = _validate_probability(p_uv)

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove ``vertex`` and all its incident edges."""
        self._require_vertex(vertex)
        for neighbour in list(self._adj[vertex]):
            del self._adj[neighbour][vertex]
            self._prob.pop((vertex, neighbour), None)
            self._prob.pop((neighbour, vertex), None)
        del self._adj[vertex]
        del self._keywords[vertex]

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the structural edge between ``u`` and ``v``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._prob.pop((u, v), None)
        self._prob.pop((v, u), None)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SocialNetwork(name={self.name!r}, "
            f"|V|={self.num_vertices()}, |E|={self.num_edges()})"
        )

    def has_vertex(self, vertex: VertexId) -> bool:
        """Return ``True`` if ``vertex`` is in the graph."""
        return vertex in self._adj

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return ``True`` if the structural edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[VertexId, VertexId]]:
        """Iterate over structural edges, each reported once as ``(u, v)``.

        The orientation of the reported pair follows insertion order of the
        endpoints; both directions of the probability map remain accessible
        through :meth:`probability`.
        """
        seen: set[frozenset] = set()
        for u, neighbours in self._adj.items():
            for v in neighbours:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Iterate over the structural neighbours of ``vertex``."""
        self._require_vertex(vertex)
        return iter(self._adj[vertex])

    def neighbor_set(self, vertex: VertexId) -> set:
        """Return the structural neighbours of ``vertex`` as a ``set``."""
        self._require_vertex(vertex)
        return set(self._adj[vertex])

    def degree(self, vertex: VertexId) -> int:
        """Return the structural degree of ``vertex``."""
        self._require_vertex(vertex)
        return len(self._adj[vertex])

    def keywords(self, vertex: VertexId) -> KeywordSet:
        """Return the keyword set ``v.W`` of ``vertex``."""
        self._require_vertex(vertex)
        return self._keywords[vertex]

    def probability(self, u: VertexId, v: VertexId) -> float:
        """Return ``p_{u,v}``, the probability that ``u`` activates ``v``."""
        try:
            return self._prob[(u, v)]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def num_vertices(self) -> int:
        """Return ``|V(G)|``."""
        return len(self._adj)

    def num_edges(self) -> int:
        """Return ``|E(G)|`` (structural, undirected edges)."""
        return sum(len(neighbours) for neighbours in self._adj.values()) // 2

    def keyword_domain(self) -> frozenset:
        """Return the union of all vertex keyword sets (the domain ``Sigma``)."""
        domain: set[str] = set()
        for kw in self._keywords.values():
            domain.update(kw)
        return frozenset(domain)

    def adjacency(self) -> Mapping[VertexId, Mapping[VertexId, None]]:
        """Return a read-only view of the adjacency structure.

        The returned mapping must not be mutated by callers; it is exposed for
        high-performance traversal code (BFS, Dijkstra) inside the library.
        """
        return self._adj

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def freeze(self):
        """Return an immutable array-backed snapshot of this graph.

        The snapshot is a :class:`repro.fastgraph.csr.CSRGraph`: vertex ids
        interned to dense ints, CSR adjacency, and per-direction probability
        arrays — the representation the ``fast`` backend's kernels run on.
        The snapshot does not track later out-of-band mutations of this
        graph; apply edits through the dynamic layer (which patches a
        :class:`~repro.fastgraph.delta.DeltaCSR` overlay in lockstep) or
        re-freeze (``CSRGraph.thaw()`` converts back).
        """
        from repro.fastgraph.csr import freeze as _freeze

        return _freeze(self)

    def copy(self, name: Optional[str] = None) -> "SocialNetwork":
        """Return a deep structural copy of the graph."""
        clone = SocialNetwork(name=name or self.name)
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._keywords = dict(self._keywords)
        clone._prob = dict(self._prob)
        return clone

    def induced_subgraph(
        self, vertices: Iterable[VertexId], name: Optional[str] = None
    ) -> "SocialNetwork":
        """Return the subgraph induced by ``vertices`` as a new graph.

        Vertices not present in the parent graph are ignored; edge
        probabilities and keyword sets are carried over unchanged.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = SocialNetwork(name=name or f"{self.name}-induced")
        for v in keep:
            sub.add_vertex(v, self._keywords[v])
        for v in keep:
            for w in self._adj[v]:
                if w in keep and not sub.has_edge(v, w):
                    sub.add_edge(v, w, self._prob[(v, w)], self._prob[(w, v)])
        return sub

    def connected_component(self, vertex: VertexId) -> set:
        """Return the set of vertices in the connected component of ``vertex``."""
        self._require_vertex(vertex)
        component = {vertex}
        frontier = [vertex]
        while frontier:
            current = frontier.pop()
            for neighbour in self._adj[current]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        return component

    def connected_components(self) -> list[set]:
        """Return all connected components, largest first."""
        remaining = set(self._adj)
        components: list[set] = []
        while remaining:
            start = next(iter(remaining))
            component = self.connected_component(start)
            components.append(component)
            remaining -= component
        components.sort(key=len, reverse=True)
        return components

    def is_connected(self) -> bool:
        """Return ``True`` if the graph is connected (empty graphs count as connected)."""
        if not self._adj:
            return True
        start = next(iter(self._adj))
        return len(self.connected_component(start)) == len(self._adj)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _require_vertex(self, vertex: VertexId) -> None:
        if vertex not in self._adj:
            raise VertexNotFoundError(vertex)
