"""Assigning keyword sets to graph vertices.

Section VIII-A attaches a keyword set ``v_i.W`` to every vertex, drawn from a
keyword domain ``Sigma`` under a Uniform, Gaussian, or Zipf distribution.
Table III varies both the number of keywords per vertex (``|v_i.W|`` from 1 to
5, default 3) and the domain size (``|Sigma|`` from 10 to 80, default 50).

:func:`assign_keywords` mutates a graph in place; :func:`keyword_profile`
summarises the resulting assignment for reports and tests.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Optional, Union

from repro.exceptions import DatasetError
from repro.graph.social_network import SocialNetwork
from repro.keywords.vocabulary import (
    KeywordDistribution,
    Vocabulary,
    default_vocabulary,
    make_distribution,
)

RandomLike = Union[int, random.Random, None]

#: Table III defaults.
DEFAULT_KEYWORDS_PER_VERTEX = 3
DEFAULT_DOMAIN_SIZE = 50


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def assign_keywords(
    graph: SocialNetwork,
    keywords_per_vertex: int = DEFAULT_KEYWORDS_PER_VERTEX,
    distribution: Union[str, KeywordDistribution] = "uniform",
    vocabulary: Optional[Vocabulary] = None,
    domain_size: int = DEFAULT_DOMAIN_SIZE,
    rng: RandomLike = None,
) -> SocialNetwork:
    """Assign a keyword set to every vertex of ``graph`` (in place).

    Parameters
    ----------
    graph:
        The social network to annotate.
    keywords_per_vertex:
        Target ``|v_i.W|``; every vertex receives exactly this many distinct
        keywords (capped by the domain size).
    distribution:
        Either a distribution name (``"uniform"`` / ``"gaussian"`` / ``"zipf"``)
        or an already-constructed :class:`KeywordDistribution`.
    vocabulary:
        Keyword domain; defaults to :func:`default_vocabulary` of
        ``domain_size`` keywords.
    domain_size:
        Size of the default vocabulary when ``vocabulary`` is omitted.
    rng:
        Seed or RNG instance for reproducibility.

    Returns
    -------
    SocialNetwork
        The same ``graph`` instance, for chaining.
    """
    if keywords_per_vertex <= 0:
        raise DatasetError(
            f"keywords_per_vertex must be positive, got {keywords_per_vertex}"
        )
    if vocabulary is None:
        vocabulary = default_vocabulary(domain_size)
    if isinstance(distribution, str):
        distribution = make_distribution(distribution, vocabulary)
    elif distribution.vocabulary is not vocabulary:
        # An explicit distribution wins; adopt its vocabulary for consistency.
        vocabulary = distribution.vocabulary

    generator = _resolve_rng(rng)
    for vertex in graph.vertices():
        keywords = distribution.sample_keywords(keywords_per_vertex, rng=generator)
        graph.set_keywords(vertex, keywords)
    return graph


def keyword_profile(graph: SocialNetwork) -> dict:
    """Summarise the keyword assignment of ``graph``.

    Returns a dict with the domain size, the average / min / max keywords per
    vertex, and the frequency of each keyword — used by dataset statistics and
    sanity-checked in tests (e.g. Zipf assignments should be skewed while
    Uniform ones should be flat).
    """
    counts = Counter()
    sizes: list[int] = []
    for vertex in graph.vertices():
        keywords = graph.keywords(vertex)
        sizes.append(len(keywords))
        counts.update(keywords)
    num_vertices = graph.num_vertices()
    return {
        "domain_size": len(counts),
        "num_vertices": num_vertices,
        "avg_keywords_per_vertex": (sum(sizes) / num_vertices) if num_vertices else 0.0,
        "min_keywords_per_vertex": min(sizes) if sizes else 0,
        "max_keywords_per_vertex": max(sizes) if sizes else 0,
        "keyword_frequencies": dict(counts),
    }


def vertices_with_any_keyword(graph: SocialNetwork, query_keywords) -> set:
    """Return the vertices whose keyword set intersects ``query_keywords``."""
    query = frozenset(query_keywords)
    return {v for v in graph.vertices() if graph.keywords(v) & query}
