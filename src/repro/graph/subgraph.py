"""Lightweight subgraph views over a :class:`~repro.graph.social_network.SocialNetwork`.

Seed communities, r-hop neighbourhoods and influenced communities are all
*subsets of vertices* of the parent network.  Materialising a fresh
:class:`SocialNetwork` for every candidate would dominate query time, so the
query layer works with :class:`SubgraphView`: a frozen vertex subset plus a
reference to the parent graph, with adjacency restricted on the fly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional

from repro.exceptions import VertexNotFoundError
from repro.graph.social_network import SocialNetwork, VertexId


class SubgraphView:
    """A read-only view of a vertex-induced subgraph.

    Parameters
    ----------
    parent:
        The parent social network.
    vertices:
        The vertices of the view.  Vertices missing from the parent raise
        :class:`~repro.exceptions.VertexNotFoundError`.
    center:
        Optional distinguished centre vertex (the query vertex ``v_q`` for
        seed communities and r-hop subgraphs).
    """

    __slots__ = ("parent", "_vertices", "center")

    def __init__(
        self,
        parent: SocialNetwork,
        vertices: Iterable[VertexId],
        center: Optional[VertexId] = None,
    ) -> None:
        vertex_set = frozenset(vertices)
        for v in vertex_set:
            if not parent.has_vertex(v):
                raise VertexNotFoundError(v)
        if center is not None and center not in vertex_set:
            raise VertexNotFoundError(center)
        self.parent = parent
        self._vertices = vertex_set
        self.center = center

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubgraphView):
            return NotImplemented
        return self.parent is other.parent and self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash((id(self.parent), self._vertices))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubgraphView(|V|={len(self._vertices)}, center={self.center!r})"

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> frozenset:
        """The frozen vertex set of the view."""
        return self._vertices

    def neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Iterate over neighbours of ``vertex`` restricted to the view."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        for w in self.parent.neighbors(vertex):
            if w in self._vertices:
                yield w

    def degree(self, vertex: VertexId) -> int:
        """Return the degree of ``vertex`` within the view."""
        return sum(1 for _ in self.neighbors(vertex))

    def edges(self) -> Iterator[tuple[VertexId, VertexId]]:
        """Iterate over edges with both endpoints inside the view."""
        emitted: set[frozenset] = set()
        for u in self._vertices:
            for v in self.parent.neighbors(u):
                if v in self._vertices:
                    key = frozenset((u, v))
                    if key not in emitted:
                        emitted.add(key)
                        yield (u, v)

    def num_edges(self) -> int:
        """Return the number of edges inside the view."""
        return sum(1 for _ in self.edges())

    def keywords(self, vertex: VertexId) -> frozenset:
        """Return the keyword set of ``vertex`` (delegates to the parent)."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return self.parent.keywords(vertex)

    def probability(self, u: VertexId, v: VertexId) -> float:
        """Return ``p_{u,v}`` from the parent graph."""
        return self.parent.probability(u, v)

    # ------------------------------------------------------------------ #
    # connectivity & derived views
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Return ``True`` if the view is connected (empty views count as connected)."""
        if not self._vertices:
            return True
        start = self.center if self.center is not None else next(iter(self._vertices))
        return len(self.component_of(start)) == len(self._vertices)

    def component_of(self, vertex: VertexId) -> set:
        """Return the connected component of ``vertex`` within the view."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        component = {vertex}
        frontier = [vertex]
        adjacency = self.parent.adjacency()
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour in self._vertices and neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        return component

    def restrict(self, vertices: Iterable[VertexId]) -> "SubgraphView":
        """Return a new view restricted to ``vertices`` intersected with this view.

        The centre is preserved when it survives the restriction, dropped
        otherwise.
        """
        new_vertices = self._vertices & frozenset(vertices)
        center = self.center if self.center in new_vertices else None
        return SubgraphView(self.parent, new_vertices, center=center)

    def materialize(self, name: str = "subgraph") -> SocialNetwork:
        """Copy the view into a standalone :class:`SocialNetwork`."""
        return self.parent.induced_subgraph(self._vertices, name=name)
