"""The :class:`GraphCore` protocol: one dense-int view over every backend.

The dynamic layer (incremental truss maintenance, affected-centre analysis)
and the fast kernels all want the same things from a graph: dense integer
vertices, integer edge ids, per-vertex neighbour rows, directional arc
probabilities — plus a way to *stay in sync* while an edit script is applied.
Historically the reference path got this from ``SocialNetwork`` dicts and the
fast path from a frozen :class:`~repro.fastgraph.csr.CSRGraph`, which forced
``repro.dynamic`` to be reference-only.  ``GraphCore`` is the shared contract
both worlds implement:

* :class:`AdjacencyCore` (here) — a live int-indexed view over a mutable
  :class:`~repro.graph.social_network.SocialNetwork`;
* :class:`~repro.fastgraph.csr.CSRGraph` — the frozen array snapshot
  (read-only subset of the protocol);
* :class:`~repro.fastgraph.delta.DeltaCSR` — the mutable overlay over a
  frozen snapshot (tombstones + append-only spill).

Everything downstream —
:class:`~repro.dynamic.truss_maintenance.IncrementalTrussState`'s worklist,
:func:`~repro.dynamic.maintenance.affected_centers`,
:class:`~repro.fastgraph.kernels.CSRWorkspace` — programs against this
protocol instead of forking on ``config.backend``.

Conventions shared by every implementation:

* vertex ints are assigned by a :class:`~repro.fastgraph.vertex_table.VertexTable`
  in first-seen order and are never reused;
* edge ids are assigned in first-seen order and never reused either — a
  deleted edge *retires* its id, and re-inserting the same endpoint pair
  yields a fresh id (edge-id stability is what lets per-id maps survive
  edits);
* ``note_insert``/``note_delete`` are called *after* the owning
  ``SocialNetwork`` (if any) has been mutated, with the resolved directional
  probabilities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Protocol, runtime_checkable

from repro.fastgraph.vertex_table import VertexTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.social_network import SocialNetwork, VertexId


@runtime_checkable
class GraphCore(Protocol):
    """What every graph core exposes (see the module docstring).

    The protocol is structural: implementations do not inherit from it, and
    consumers duck-type.  ``isinstance(obj, GraphCore)`` works for runtime
    checks because the class is :func:`~typing.runtime_checkable` (methods
    only, per Python's protocol semantics).
    """

    table: VertexTable

    @property
    def num_vertices(self) -> int:
        """Number of interned vertices (dense ints ``0..n-1``)."""
        ...  # pragma: no cover - protocol stub

    @property
    def num_edges(self) -> int:
        """Number of *live* undirected edges."""
        ...  # pragma: no cover - protocol stub

    def degree(self, vertex: int) -> int:
        """Live structural degree of ``vertex``."""
        ...  # pragma: no cover - protocol stub

    def neighbor_row(self, vertex: int) -> Mapping[int, int]:
        """Live ``{neighbour int: edge id}`` row of ``vertex``.

        The returned mapping is owned by the core and mutates with it; do
        not modify it and do not hold it across edits.
        """
        ...  # pragma: no cover - protocol stub

    def arcs(self, vertex: int) -> Iterator[tuple[int, float, float, int]]:
        """Live out-arcs of ``vertex`` as ``(head, p_out, p_in, edge_id)``."""
        ...  # pragma: no cover - protocol stub

    def probability(self, tail: int, head: int) -> float:
        """``p_{tail, head}`` for a live edge (by dense ints)."""
        ...  # pragma: no cover - protocol stub

    def live_edge_ids(self) -> Iterator[int]:
        """Iterate the ids of every live edge (each exactly once)."""
        ...  # pragma: no cover - protocol stub

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """The dense endpoint ints of ``edge_id`` (live or retired)."""
        ...  # pragma: no cover - protocol stub

    def edge_key(self, edge_id: int) -> frozenset:
        """The reference-style ``frozenset`` key (original vertex ids)."""
        ...  # pragma: no cover - protocol stub

    def keywords_of(self, vertex: int) -> frozenset:
        """Keyword set of dense vertex ``vertex``."""
        ...  # pragma: no cover - protocol stub

    def note_insert(
        self,
        u: "VertexId",
        v: "VertexId",
        p_uv: float,
        p_vu: float,
        keywords_u: frozenset = frozenset(),
        keywords_v: frozenset = frozenset(),
    ) -> int:
        """Record an edge insertion (endpoints interned on demand); return its id."""
        ...  # pragma: no cover - protocol stub

    def note_delete(self, u: "VertexId", v: "VertexId") -> int:
        """Record an edge deletion; return the retired edge id."""
        ...  # pragma: no cover - protocol stub


class AdjacencyCore:
    """A live :class:`GraphCore` view over a mutable ``SocialNetwork``.

    Construction interns every vertex and numbers every edge (iteration
    order, so two cores over equal graphs agree); after that the owner must
    report each applied edit through :meth:`note_insert`/:meth:`note_delete`
    so the int-indexed rows track the dict adjacency exactly.  Probabilities
    are *not* copied — they are read through to the live graph — so the core
    adds no float state to keep in sync.
    """

    __slots__ = ("graph", "name", "table", "_rows", "_ends", "_num_live", "mutation_log")

    def __init__(self, graph: "SocialNetwork") -> None:
        self.graph = graph
        self.name = graph.name
        self.table = VertexTable(graph.vertices())
        index_of = self.table.index_of
        self._rows: list[dict[int, int]] = [{} for _ in range(len(self.table))]
        self._ends: list[tuple[int, int]] = []
        for u_id, v_id in graph.edges():
            u, v = index_of(u_id), index_of(v_id)
            edge_id = len(self._ends)
            self._ends.append((u, v))
            self._rows[u][v] = edge_id
            self._rows[v][u] = edge_id
        self._num_live = len(self._ends)
        #: Vertices whose arc set changed, in order (workspace sync contract;
        #: see :meth:`repro.fastgraph.kernels.CSRWorkspace.sync`).
        self.mutation_log: list[int] = []

    # ------------------------------------------------------------------ #
    # read access
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self._rows)

    @property
    def num_edges(self) -> int:
        return self._num_live

    def degree(self, vertex: int) -> int:
        return len(self._rows[vertex])

    def neighbor_row(self, vertex: int) -> Mapping[int, int]:
        return self._rows[vertex]

    def arcs(self, vertex: int) -> Iterator[tuple[int, float, float, int]]:
        id_of = self.table.id_of
        probability = self.graph.probability
        tail_id = id_of(vertex)
        for head, edge_id in self._rows[vertex].items():
            head_id = id_of(head)
            yield head, probability(tail_id, head_id), probability(head_id, tail_id), edge_id

    def probability(self, tail: int, head: int) -> float:
        id_of = self.table.id_of
        return self.graph.probability(id_of(tail), id_of(head))

    def live_edge_ids(self) -> Iterator[int]:
        for u, row in enumerate(self._rows):
            for v, edge_id in row.items():
                if u < v:
                    yield edge_id

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        return self._ends[edge_id]

    def edge_key(self, edge_id: int) -> frozenset:
        u, v = self._ends[edge_id]
        id_of = self.table.id_of
        return frozenset((id_of(u), id_of(v)))

    def keywords_of(self, vertex: int) -> frozenset:
        return self.graph.keywords(self.table.id_of(vertex))

    # ------------------------------------------------------------------ #
    # edit tracking
    # ------------------------------------------------------------------ #
    def note_insert(
        self,
        u: "VertexId",
        v: "VertexId",
        p_uv: float,
        p_vu: float,
        keywords_u: frozenset = frozenset(),
        keywords_v: frozenset = frozenset(),
    ) -> int:
        for vertex in (u, v):
            if vertex not in self.table:
                index = self.table.intern(vertex)
                self._rows.append({})
                self.mutation_log.append(index)
        index_of = self.table.index_of
        u_int, v_int = index_of(u), index_of(v)
        edge_id = len(self._ends)
        self._ends.append((u_int, v_int))
        self._rows[u_int][v_int] = edge_id
        self._rows[v_int][u_int] = edge_id
        self._num_live += 1
        self.mutation_log.append(u_int)
        self.mutation_log.append(v_int)
        return edge_id

    def note_delete(self, u: "VertexId", v: "VertexId") -> int:
        index_of = self.table.index_of
        u_int, v_int = index_of(u), index_of(v)
        edge_id = self._rows[u_int].pop(v_int)
        self._rows[v_int].pop(u_int)
        self._num_live -= 1
        self.mutation_log.append(u_int)
        self.mutation_log.append(v_int)
        return edge_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdjacencyCore(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )
