"""Descriptive statistics over social networks.

Used by the Table II reproduction (dataset statistics) and by the workload
reports.  Everything here is read-only and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.social_network import SocialNetwork


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a social network (Table II style)."""

    name: str
    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    avg_degree: float
    num_triangles: int
    avg_clustering: float
    num_components: int
    keyword_domain_size: int
    avg_keywords_per_vertex: float
    avg_edge_probability: float

    def as_row(self) -> dict:
        """Return a flat dict suitable for tabular reports."""
        return {
            "dataset": self.name,
            "|V(G)|": self.num_vertices,
            "|E(G)|": self.num_edges,
            "avg_deg": round(self.avg_degree, 3),
            "max_deg": self.max_degree,
            "triangles": self.num_triangles,
            "avg_clustering": round(self.avg_clustering, 4),
            "components": self.num_components,
            "|Sigma|": self.keyword_domain_size,
            "avg_|v.W|": round(self.avg_keywords_per_vertex, 3),
            "avg_p": round(self.avg_edge_probability, 4),
        }


@dataclass
class DegreeDistribution:
    """Histogram of vertex degrees."""

    counts: dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction_at_least(self, degree: int) -> float:
        """Return the fraction of vertices with degree >= ``degree``."""
        if not self.counts:
            return 0.0
        matching = sum(count for deg, count in self.counts.items() if deg >= degree)
        return matching / self.total


def degree_distribution(graph: SocialNetwork) -> DegreeDistribution:
    """Compute the degree histogram of ``graph``."""
    counts: dict[int, int] = {}
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        counts[degree] = counts.get(degree, 0) + 1
    return DegreeDistribution(counts)


def count_triangles(graph: SocialNetwork) -> int:
    """Count the triangles of ``graph`` via neighbour-set intersections.

    Each triangle is counted exactly once by orienting it from its
    lowest-ordered vertex (ordering by ``repr`` keeps mixed label types
    comparable).
    """
    order = {v: i for i, v in enumerate(graph.vertices())}
    total = 0
    for u in graph.vertices():
        higher_neighbors = {w for w in graph.neighbors(u) if order[w] > order[u]}
        for v in higher_neighbors:
            total += sum(1 for w in graph.neighbors(v) if order[w] > order[v] and w in higher_neighbors)
    return total


def local_clustering(graph: SocialNetwork, vertex) -> float:
    """Return the local clustering coefficient of ``vertex``."""
    neighbors = graph.neighbor_set(vertex)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    for u in neighbors:
        links += sum(1 for w in graph.neighbors(u) if w in neighbors)
    links //= 2
    return 2.0 * links / (degree * (degree - 1))


def average_clustering(graph: SocialNetwork) -> float:
    """Return the average local clustering coefficient."""
    if graph.num_vertices() == 0:
        return 0.0
    return sum(local_clustering(graph, v) for v in graph.vertices()) / graph.num_vertices()


def compute_statistics(graph: SocialNetwork) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    num_vertices = graph.num_vertices()
    num_edges = graph.num_edges()
    degrees = [graph.degree(v) for v in graph.vertices()]
    keyword_sizes = [len(graph.keywords(v)) for v in graph.vertices()]
    probabilities = [graph.probability(u, v) for u, v in graph.edges()]
    return GraphStatistics(
        name=graph.name,
        num_vertices=num_vertices,
        num_edges=num_edges,
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        avg_degree=(2.0 * num_edges / num_vertices) if num_vertices else 0.0,
        num_triangles=count_triangles(graph),
        avg_clustering=average_clustering(graph),
        num_components=len(graph.connected_components()),
        keyword_domain_size=len(graph.keyword_domain()),
        avg_keywords_per_vertex=(sum(keyword_sizes) / num_vertices) if num_vertices else 0.0,
        avg_edge_probability=(sum(probabilities) / len(probabilities)) if probabilities else 0.0,
    )
