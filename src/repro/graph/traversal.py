"""Graph traversal primitives: BFS hop distances and r-hop subgraph extraction.

The TopL-ICDE framework repeatedly needs the *r-hop subgraph* ``hop(v_i, r)``:
the subgraph induced by all vertices whose shortest-path (hop) distance from
``v_i`` is at most ``r`` (Section III / V-A of the paper).  The radius pruning
rule (Lemma 3) and the seed-community radius constraint (Definition 2) both
reduce to hop distances, so everything in this module is unweighted BFS.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from typing import Optional

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView


def bfs_distances(
    graph: SocialNetwork,
    source: VertexId,
    max_depth: Optional[int] = None,
    allowed: Optional[frozenset] = None,
) -> dict[VertexId, int]:
    """Return hop distances from ``source`` to every reachable vertex.

    Parameters
    ----------
    graph:
        The social network to traverse.
    source:
        The start vertex.
    max_depth:
        When given, stop expanding once this depth has been reached; vertices
        farther than ``max_depth`` hops are absent from the result.
    allowed:
        When given, the traversal is restricted to this vertex subset
        (``source`` must be a member).

    Returns
    -------
    dict
        Mapping ``vertex -> hop distance``; always contains ``source -> 0``.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if allowed is not None and source not in allowed:
        raise GraphError(f"source {source!r} is not in the allowed vertex set")
    if max_depth is not None and max_depth < 0:
        raise GraphError(f"max_depth must be non-negative, got {max_depth}")

    adjacency = graph.adjacency()
    distances: dict[VertexId, int] = {source: 0}
    queue: deque[VertexId] = deque([source])
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbour in adjacency[current]:
            if neighbour in distances:
                continue
            if allowed is not None and neighbour not in allowed:
                continue
            distances[neighbour] = depth + 1
            queue.append(neighbour)
    return distances


def hop_subgraph(graph: SocialNetwork, center: VertexId, radius: int) -> SubgraphView:
    """Return the r-hop subgraph ``hop(center, radius)`` as a view.

    The view contains every vertex within ``radius`` hops of ``center`` in the
    *full* graph, with ``center`` recorded as the view's centre.
    """
    if radius < 0:
        raise GraphError(f"radius must be non-negative, got {radius}")
    distances = bfs_distances(graph, center, max_depth=radius)
    return SubgraphView(graph, distances.keys(), center=center)


def hop_distances_within(
    view: SubgraphView, source: VertexId, max_depth: Optional[int] = None
) -> dict[VertexId, int]:
    """Return hop distances from ``source`` restricted to a subgraph view.

    Used to re-check the radius constraint of a candidate seed community
    *inside* the community (Definition 2 measures ``dist`` in ``g``, not in
    ``G``).
    """
    return bfs_distances(view.parent, source, max_depth=max_depth, allowed=view.vertices)


def eccentricity(view: SubgraphView, source: VertexId) -> int:
    """Return the eccentricity of ``source`` within ``view``.

    Raises
    ------
    GraphError
        If some vertex of the view is unreachable from ``source`` (the
        eccentricity would be infinite).
    """
    distances = hop_distances_within(view, source)
    if len(distances) != len(view):
        raise GraphError(
            f"vertex {source!r} does not reach all {len(view)} vertices of the view"
        )
    return max(distances.values(), default=0)


def vertices_within_radius(
    view: SubgraphView, center: VertexId, radius: int
) -> frozenset:
    """Return the vertices of ``view`` within ``radius`` hops of ``center`` inside the view."""
    distances = hop_distances_within(view, center, max_depth=radius)
    return frozenset(distances.keys())


def satisfies_radius_constraint(view: SubgraphView, center: VertexId, radius: int) -> bool:
    """Return ``True`` if every vertex of ``view`` lies within ``radius`` hops of ``center``.

    Distances are measured inside the view, matching Definition 2.
    """
    distances = hop_distances_within(view, center, max_depth=radius)
    return len(distances) == len(view)


def breadth_first_order(
    graph: SocialNetwork, source: VertexId, allowed: Optional[frozenset] = None
) -> list[VertexId]:
    """Return vertices in BFS visitation order starting from ``source``."""
    distances = bfs_distances(graph, source, allowed=allowed)
    return sorted(distances, key=lambda v: (distances[v], str(v)))


def pairwise_hop_distance(
    graph: SocialNetwork, u: VertexId, v: VertexId, allowed: Optional[frozenset] = None
) -> Optional[int]:
    """Return the hop distance between ``u`` and ``v`` or ``None`` if disconnected."""
    distances = bfs_distances(graph, u, allowed=allowed)
    return distances.get(v)


def k_hop_neighborhood_sizes(
    graph: SocialNetwork, centers: Iterable[VertexId], radius: int
) -> dict[VertexId, int]:
    """Return ``|hop(c, radius)|`` for each centre in ``centers``.

    Convenience helper used by the workload generators to pick interesting
    query centres (well-connected vertices) and by the statistics module.
    """
    sizes: dict[VertexId, int] = {}
    for center in centers:
        sizes[center] = len(bfs_distances(graph, center, max_depth=radius))
    return sizes
