"""Engine configuration.

Bundles the offline-phase parameters (``r_max``, pre-selected thresholds,
bit-vector width, index fanout / leaf capacity) so the engine, benches and
examples all agree on one configuration object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dynamic.maintenance import DEFAULT_DAMAGE_THRESHOLD
from repro.exceptions import QueryParameterError
from repro.index.precompute import DEFAULT_MAX_RADIUS, DEFAULT_THRESHOLDS
from repro.index.tree import DEFAULT_FANOUT, DEFAULT_LEAF_CAPACITY
from repro.keywords.bitvector import DEFAULT_NUM_BITS


@dataclass(frozen=True)
class EngineConfig:
    """Offline-phase configuration of the influential-community engine.

    Attributes
    ----------
    max_radius:
        ``r_max``: the largest query radius the index will support.
    thresholds:
        Pre-selected influence thresholds ``theta_1 < ... < theta_m`` used for
        the pre-computed score upper bounds.
    num_bits:
        Width of the keyword bit vectors.
    fanout:
        Fanout ``gamma`` of non-leaf index nodes.
    leaf_capacity:
        Number of vertices per leaf node.
    damage_threshold:
        Dynamic updates: when the fraction of centre vertices whose
        pre-computed records an edit batch invalidates exceeds this,
        ``apply_updates`` falls back to a full rebuild instead of patching
        (1.0 never rebuilds; small values rebuild eagerly).
    backend:
        ``"reference"`` (default) runs every computation on the dict-based
        :class:`~repro.graph.social_network.SocialNetwork`; ``"fast"``
        routes the offline build and online scoring through the array-backed
        :mod:`repro.fastgraph` core (``graph.freeze()`` snapshots).  The two
        backends produce bit-identical indexes and answers — the choice is
        purely a performance trade; see ``docs/backends.md``.
    compact_dirt_ratio:
        Fast backend only: dynamic updates patch the CSR snapshot in place
        through a :class:`~repro.fastgraph.delta.DeltaCSR` overlay
        (tombstones + spilled insertions); once the overlay's dirt ratio
        exceeds this, ``apply_updates`` folds it back into a pure CSR.
        Higher values compact less often (more overlay scan cost per query),
        lower values compact eagerly; the default keeps compaction amortized
        O(1) per edit.  See ``docs/backends.md``.
    kernel_tier:
        Fast backend only: which kernel implementations run over the CSR
        snapshots.  ``"auto"`` (default) selects the vectorised numpy tier
        when numpy is importable and the stdlib tier otherwise;
        ``"stdlib"`` forces the dependency-free kernels; ``"vector"``
        requires numpy and fails loudly without it.  Both tiers are
        bit-identical — the knob is purely a performance trade, orthogonal
        to ``backend``.  Ignored by the reference backend.  See
        ``docs/backends.md``.
    """

    max_radius: int = DEFAULT_MAX_RADIUS
    thresholds: tuple[float, ...] = field(default_factory=lambda: tuple(DEFAULT_THRESHOLDS))
    num_bits: int = DEFAULT_NUM_BITS
    fanout: int = DEFAULT_FANOUT
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY
    damage_threshold: float = DEFAULT_DAMAGE_THRESHOLD
    backend: str = "reference"
    compact_dirt_ratio: float = 0.25
    kernel_tier: str = "auto"

    def __post_init__(self) -> None:
        if self.max_radius < 1:
            raise QueryParameterError(f"max_radius must be >= 1, got {self.max_radius}")
        ordered = tuple(sorted(set(float(t) for t in self.thresholds)))
        if not ordered:
            raise QueryParameterError("at least one pre-selected threshold is required")
        for theta in ordered:
            if not 0.0 <= theta < 1.0:
                raise QueryParameterError(
                    f"pre-selected thresholds must be in [0, 1), got {theta}"
                )
        object.__setattr__(self, "thresholds", ordered)
        if self.num_bits < 1:
            raise QueryParameterError(f"num_bits must be >= 1, got {self.num_bits}")
        if self.fanout < 2:
            raise QueryParameterError(f"fanout must be >= 2, got {self.fanout}")
        if self.leaf_capacity < 1:
            raise QueryParameterError(f"leaf_capacity must be >= 1, got {self.leaf_capacity}")
        if not 0.0 < self.damage_threshold <= 1.0:
            raise QueryParameterError(
                f"damage_threshold must be in (0, 1], got {self.damage_threshold}"
            )
        if self.backend not in ("reference", "fast"):
            raise QueryParameterError(
                f"backend must be 'reference' or 'fast', got {self.backend!r}"
            )
        if not self.compact_dirt_ratio > 0.0:
            raise QueryParameterError(
                f"compact_dirt_ratio must be > 0, got {self.compact_dirt_ratio}"
            )
        # Membership only — whether "vector" is actually runnable (numpy
        # present) is resolved where kernels are built, so a config object
        # stays constructible on hosts without numpy.
        if self.kernel_tier not in ("auto", "stdlib", "vector"):
            raise QueryParameterError(
                "kernel_tier must be 'auto', 'stdlib' or 'vector', "
                f"got {self.kernel_tier!r}"
            )

    @classmethod
    def paper_defaults(cls) -> "EngineConfig":
        """The configuration matching Table III's defaults."""
        return cls()

    def describe(self) -> dict:
        """Return a flat dict of the configuration (used in reports)."""
        return {
            "r_max": self.max_radius,
            "thresholds": list(self.thresholds),
            "B": self.num_bits,
            "fanout": self.fanout,
            "leaf_capacity": self.leaf_capacity,
            "damage_threshold": self.damage_threshold,
            "backend": self.backend,
            "compact_dirt_ratio": self.compact_dirt_ratio,
            "kernel_tier": self.kernel_tier,
        }
