"""High-level facade: engine and configuration."""

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine

__all__ = ["EngineConfig", "InfluentialCommunityEngine"]
