"""High-level engine: the library's main entry point.

:class:`InfluentialCommunityEngine` wraps the two-phase framework of the
paper (Algorithm 1): build it once over a social network — running the
offline pre-computation and constructing the tree index — then answer any
number of online TopL-ICDE and DTopL-ICDE queries against it.

Example
-------
>>> from repro import InfluentialCommunityEngine, datasets, make_topl_query
>>> graph = datasets.uni(num_vertices=500, rng=1)
>>> engine = InfluentialCommunityEngine.build(graph)
>>> query = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)
>>> result = engine.topl(query)
>>> [round(c.score, 2) for c in result]            # doctest: +SKIP
[41.87, 39.02, 36.55]
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.core.config import EngineConfig
from repro.exceptions import QueryParameterError
from repro.dynamic.maintenance import (
    UpdateReport,
    affected_centers,
    refresh_vertex_aggregates,
)
from repro.dynamic.truss_maintenance import IncrementalTrussState
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.validation import validate_graph
from repro.index.patch import patch_tree_index
from repro.index.precompute import precompute
from repro.index.serialization import load_index, save_index
from repro.index.tree import TreeIndex, build_tree_index
from repro.pruning.stats import PruningConfig
from repro.query.baselines.kcore_baseline import compare_with_kcore, kcore_community
from repro.query.dtopl import DTopLProcessor
from repro.query.params import DTopLQuery, TopLQuery
from repro.query.results import DTopLResult, SeedCommunity, TopLResult
from repro.query.topl import TopLProcessor


class InfluentialCommunityEngine:
    """Offline pre-computation + online query answering in one object."""

    def __init__(
        self,
        graph: SocialNetwork,
        index: TreeIndex,
        config: EngineConfig,
    ) -> None:
        self.graph = graph
        self.index = index
        self.config = config
        #: Bumped by every effective :meth:`apply_updates`; serving layers tag
        #: their cache keys with it so pre-update entries can never hit.
        self.epoch = 0
        self._truss_state: Optional[IncrementalTrussState] = None
        #: The ``fast`` backend's snapshot, shared by all processors this
        #: engine creates: a pure :class:`~repro.fastgraph.csr.CSRGraph`
        #: until the first dynamic update, a mutable
        #: :class:`~repro.fastgraph.delta.DeltaCSR` overlay afterwards —
        #: incremental updates patch it *in place* (no re-freeze); only
        #: rebuilds and compactions swap the object.  The workspace (scratch
        #: arrays over the snapshot) is shared the same way and re-synced
        #: incrementally; it is single-threaded, which is safe because the
        #: engine's own query methods are sequential (parallel serving
        #: workers build their own).
        self._frozen = None
        self._fast_workspace = None
        #: Reference backend's dynamic view (``AdjacencyCore``), kept in
        #: lockstep with ``graph`` by the truss state.
        self._reference_core = None
        #: Edit batches applied to the current overlay base (fast backend):
        #: spawn-mode serving workers replay these to rebuild the overlay
        #: instead of re-freezing.  Reset by rebuilds and compactions.
        self._edit_log: list[UpdateBatch] = []
        #: Store anchoring (see :meth:`from_store` / :meth:`checkpoint_store`):
        #: the open :class:`~repro.store.StoreHandle` (keeps the mmap pages
        #: alive), its provenance dict, and the engine epoch the store file
        #: matches.  Workers may attach to the file only while
        #: ``epoch == _store_epoch`` (:meth:`store_attachment`).
        self._store_handle = None
        self._store_info: Optional[dict] = None
        self._store_epoch: Optional[int] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: SocialNetwork,
        config: Optional[EngineConfig] = None,
        validate: bool = True,
    ) -> "InfluentialCommunityEngine":
        """Run the offline phase over ``graph`` and return a ready engine.

        Parameters
        ----------
        graph:
            The social network ``G``.
        config:
            Offline-phase configuration (defaults to the paper's settings).
        validate:
            Validate structural invariants of ``graph`` first (recommended;
            disable only for graphs produced by this library's generators).
        """
        config = config or EngineConfig()
        if validate:
            validate_graph(graph, strict=True)
        frozen = graph.freeze() if config.backend == "fast" else None
        precomputed = precompute(
            graph,
            max_radius=config.max_radius,
            thresholds=config.thresholds,
            num_bits=config.num_bits,
            backend=config.backend,
            frozen=frozen,
            kernel_tier=config.kernel_tier,
        )
        index = build_tree_index(
            graph,
            precomputed=precomputed,
            fanout=config.fanout,
            leaf_capacity=config.leaf_capacity,
        )
        engine = cls(graph=graph, index=index, config=config)
        # Reuse the offline phase's snapshot for online queries; one freeze
        # per epoch, not one per phase.
        engine._frozen = frozen
        return engine

    @classmethod
    def from_saved_index(
        cls,
        graph: SocialNetwork,
        path: Union[str, Path],
        config: Optional[EngineConfig] = None,
    ) -> "InfluentialCommunityEngine":
        """Load a previously saved index for ``graph`` instead of re-building it."""
        index = load_index(graph, path)
        config = config or EngineConfig(
            max_radius=index.max_radius,
            thresholds=index.thresholds,
            num_bits=index.precomputed.num_bits,
            fanout=index.fanout,
            leaf_capacity=index.leaf_capacity,
        )
        return cls(graph=graph, index=index, config=config)

    @classmethod
    def from_store(
        cls,
        path: Union[str, Path],
        config: Optional[EngineConfig] = None,
        config_overrides: Optional[dict] = None,
        mmap: bool = True,
        verify: bool = True,
    ) -> "InfluentialCommunityEngine":
        """Open a packed store file as a ready engine — no offline phase.

        The store carries the frozen graph, the pre-computed records and the
        index shape; opening reconstructs all of them (the CSR buffers as
        zero-copy views into the store ``mmap`` by default) and rebuilds the
        deterministic tree, so the engine answers bit-identically to the one
        that was packed.  On the ``fast`` backend the store's CSR *is* the
        engine snapshot: no ``freeze()`` is ever paid.

        ``config`` replaces the packed :class:`EngineConfig` wholesale;
        ``config_overrides`` patches individual fields of it (e.g.
        ``{"backend": "reference"}``).  The offline-shape fields
        (``max_radius`` / ``thresholds`` / ``num_bits``) cannot be changed
        this way — they are baked into the packed records.
        """
        import dataclasses

        from repro.store import open_store

        handle = open_store(path, mmap=mmap, verify=verify)
        engine_config = handle.config if config is None else config
        if config_overrides:
            engine_config = dataclasses.replace(engine_config, **config_overrides)
        for field in ("max_radius", "thresholds", "num_bits"):
            if getattr(engine_config, field) != getattr(handle.config, field):
                raise QueryParameterError(
                    f"cannot override {field} when opening a store (packed "
                    f"{getattr(handle.config, field)!r}, requested "
                    f"{getattr(engine_config, field)!r}); re-pack instead"
                )
        engine = cls(graph=handle.graph, index=handle.index, config=engine_config)
        if engine_config.backend == "fast":
            engine._frozen = handle.csr
        engine._store_handle = handle
        engine._store_info = {
            key: handle.info[key]
            for key in ("path", "format_version", "file_size", "residency", "generation")
        }
        engine._store_epoch = engine.epoch
        return engine

    def save_index(self, path: Union[str, Path]) -> None:
        """Persist the offline pre-computation so future runs can skip it."""
        save_index(self.index, path)

    def checkpoint_store(self, path: Union[str, Path]) -> dict:
        """Write the engine's *current* state as a fresh store generation.

        Works from any state — a pristine build, a store-backed session, or
        a dirty :class:`~repro.fastgraph.delta.DeltaCSR` overlay mid-stream
        (packing re-freezes the live graph, which equals compacting the
        overlay) — and re-anchors the engine on the new file:
        :meth:`store_attachment` is valid again until the next effective
        update.  Returns the pack info dict.
        """
        from repro.store import pack_store

        previous = self._store_info or {}
        generation = previous.get("generation", -1) + 1
        info = pack_store(self, path, generation=generation)
        self._store_info = {
            "path": info["path"],
            "format_version": info["format_version"],
            "file_size": info["file_size"],
            # A checkpoint anchors the session to the file; the engine's own
            # buffers stay where they were (an opened store keeps its
            # residency, an in-process build has no backing file pages).
            "residency": previous.get("residency", "in-process"),
            "generation": generation,
        }
        self._store_epoch = self.epoch
        return info

    def store_attachment(self) -> Optional[dict]:
        """Worker-attach payload fragment, or ``None`` when not attachable.

        Serving workers may reconstruct this engine by opening its store
        file *only* while the engine still matches the packed generation
        (``epoch == _store_epoch``): the store holds the base generation's
        records, so attaching a dirty engine through it would pair stale
        records with replayed edits.  After updates, callers fall back to
        the serialized-payload path (or :meth:`checkpoint_store` first).
        """
        if self._store_info is not None and self._store_epoch == self.epoch:
            return {"store_path": self._store_info["path"]}
        return None

    def store_provenance(self) -> dict:
        """The storage-provenance block of :meth:`describe` (always present)."""
        if self._store_info is None:
            return {"store_backed": False}
        return {
            "store_backed": True,
            **self._store_info,
            "attached": self._store_epoch == self.epoch,
        }

    # ------------------------------------------------------------------ #
    # online queries
    # ------------------------------------------------------------------ #
    def topl(
        self,
        query: TopLQuery,
        pruning: Optional[PruningConfig] = None,
    ) -> TopLResult:
        """Answer a TopL-ICDE query (Definition 4, Algorithm 3).

        ``pruning=None`` applies the full pruning stack; the configuration is
        constructed per call so no state is shared between unrelated queries.
        """
        processor = TopLProcessor(
            self.graph,
            index=self.index,
            pruning=pruning,
            backend=self.config.backend,
            frozen=self.frozen_graph(),
            workspace=self._workspace(),
            kernel_tier=self.config.kernel_tier,
        )
        return processor.query(query)

    def dtopl(
        self,
        query: DTopLQuery,
        pruning: Optional[PruningConfig] = None,
    ) -> DTopLResult:
        """Answer a DTopL-ICDE query (Definition 5, Algorithm 4)."""
        processor = DTopLProcessor(
            self.graph,
            index=self.index,
            pruning=pruning,
            backend=self.config.backend,
            frozen=self.frozen_graph(),
            workspace=self._workspace(),
            kernel_tier=self.config.kernel_tier,
        )
        return processor.query(query)

    def frozen_graph(self):
        """The engine's fast-core snapshot when the ``fast`` backend is active.

        Returns ``None`` on the reference backend.  The snapshot is built
        lazily and reused by every processor; after dynamic updates it is a
        :class:`~repro.fastgraph.delta.DeltaCSR` overlay patched in place —
        queries keep running against it with no re-freeze.
        """
        if self.config.backend != "fast":
            return None
        if self._frozen is None:
            self._frozen = self.graph.freeze()
        return self._frozen

    def _workspace(self):
        """Shared kernel scratch space over :meth:`frozen_graph` (fast only).

        Re-synced incrementally against the snapshot's mutation log; rebuilt
        only when the snapshot object itself was swapped (rebuild or
        compaction).
        """
        if self.config.backend != "fast":
            return None
        core = self.frozen_graph()
        workspace = self._fast_workspace
        if workspace is None or workspace.core is not core:
            from repro.fastgraph.kernels import make_workspace

            workspace = make_workspace(core, self.config.kernel_tier)
            self._fast_workspace = workspace
        else:
            workspace.sync()
        return workspace

    def _dynamic_core(self):
        """The live :class:`~repro.graph.core.GraphCore` the dynamic layer runs over.

        Fast backend: the engine's snapshot, wrapped into a mutable
        :class:`~repro.fastgraph.delta.DeltaCSR` overlay on first use (the
        current workspace carries over — a pristine overlay has the same
        arcs).  Reference backend: a cached
        :class:`~repro.graph.core.AdjacencyCore` view.  Either way the truss
        state is re-bound when the core object changes.
        """
        if self.config.backend == "fast":
            from repro.fastgraph.delta import DeltaCSR

            frozen = self.frozen_graph()
            if not isinstance(frozen, DeltaCSR):
                frozen = DeltaCSR(frozen)
                workspace = self._fast_workspace
                if workspace is not None and workspace.core is self._frozen:
                    workspace.rebind(frozen)
                self._frozen = frozen
                if self._truss_state is not None:
                    self._truss_state.rebind_core(frozen)
            return frozen
        if self._reference_core is None:
            from repro.graph.core import AdjacencyCore

            self._reference_core = AdjacencyCore(self.graph)
            if self._truss_state is not None:
                self._truss_state.rebind_core(self._reference_core)
        return self._reference_core

    def overlay_dirt_ratio(self) -> float:
        """Dirt ratio of the snapshot overlay (0.0 when pure or reference)."""
        dirt_ratio = getattr(self._frozen, "dirt_ratio", None)
        return dirt_ratio() if dirt_ratio is not None else 0.0

    def serialized_overlay(self) -> Optional[dict]:
        """Base graph + edit log for spawn-mode serving workers.

        ``None`` unless the fast backend's snapshot currently carries an
        overlay; otherwise a picklable document from which a worker rebuilds
        the overlay exactly (freeze the base graph, replay the log) instead
        of paying a full freeze of the mutated graph.
        """
        from repro.fastgraph.delta import DeltaCSR

        frozen = self._frozen
        if not isinstance(frozen, DeltaCSR) or not self._edit_log:
            return None
        from repro.graph.io import graph_to_dict

        return {
            "base_graph": graph_to_dict(frozen.base.thaw()),
            "edit_log": [batch.to_json() for batch in self._edit_log],
        }

    # ------------------------------------------------------------------ #
    # dynamic updates
    # ------------------------------------------------------------------ #
    def apply_updates(
        self,
        batch: Union[UpdateBatch, Iterable[EdgeUpdate]],
        damage_threshold: Optional[float] = None,
        rebuild: bool = False,
    ) -> UpdateReport:
        """Apply an edge edit script and bring the index back in sync.

        The batch is validated up front (all-or-nothing), applied to the live
        graph with incremental support/trussness maintenance, and then the
        pre-computed records of the *affected* centre vertices — those whose
        hop balls, support bounds or influence propagation the edits can
        reach — are recomputed and patched into the tree.  When the affected
        fraction exceeds the damage threshold (or ``rebuild=True``) the
        offline phase is re-run instead, which is cheaper past that point.

        Either way the engine's :attr:`epoch` is bumped, which invalidates
        every cache a :class:`~repro.serve.batch.BatchQueryEngine` holds over
        this engine.

        Parameters
        ----------
        batch:
            An :class:`~repro.dynamic.updates.UpdateBatch` (or any iterable
            of :class:`~repro.dynamic.updates.EdgeUpdate`).
        damage_threshold:
            Overrides ``config.damage_threshold`` for this call (same
            ``(0, 1]`` domain).
        rebuild:
            Force the full-rebuild path regardless of damage.  This skips
            the incremental bookkeeping entirely (it would be discarded), so
            the report's edge-change counters are 0 and its damage ratio 1.0.

        Returns
        -------
        UpdateReport
            What happened: mode, affected counts, damage ratio, timings.
        """
        if not isinstance(batch, UpdateBatch):
            batch = UpdateBatch(batch)
        threshold = (
            self.config.damage_threshold if damage_threshold is None else damage_threshold
        )
        if not 0.0 < threshold <= 1.0:
            # Same domain EngineConfig enforces for the persistent knob.
            raise QueryParameterError(
                f"damage_threshold must be in (0, 1], got {threshold}"
            )
        started = time.perf_counter()
        if len(batch) == 0:
            return UpdateReport(
                mode="noop", insertions=0, deletions=0, new_vertices=0,
                affected_vertices=0, total_vertices=self.graph.num_vertices(),
                support_changed_edges=0, truss_changed_edges=0,
                damage_ratio=0.0, damage_threshold=threshold, epoch=self.epoch,
                elapsed_seconds=time.perf_counter() - started,
                overlay_dirt_ratio=self.overlay_dirt_ratio(),
            )

        if rebuild:
            # A forced rebuild discards all incremental bookkeeping, so skip
            # it: mutate the graph directly and re-run the offline phase.
            # The snapshot overlay was *not* kept in lockstep on this path,
            # so it is dropped rather than compacted.
            batch.validate_against(self.graph)
            new_vertices = batch.apply_to(self.graph)
            self._reset_dynamic_state(compact_overlay=False)
            self._rebuild_offline()
            self.epoch += 1
            total = self.graph.num_vertices()
            return UpdateReport(
                mode="rebuild",
                insertions=batch.num_insertions,
                deletions=batch.num_deletions,
                new_vertices=len(new_vertices),
                affected_vertices=total,
                total_vertices=total,
                support_changed_edges=0,
                truss_changed_edges=0,
                damage_ratio=1.0,
                damage_threshold=threshold,
                epoch=self.epoch,
                elapsed_seconds=time.perf_counter() - started,
            )

        core = self._dynamic_core()
        state = self._truss_state
        if state is None:
            # First dynamic batch since (re)build: adopt the offline support
            # map by reference so it stays in sync, and pay one full peeling
            # to seed the trussness map.
            state = IncrementalTrussState(
                self.graph,
                supports=self.index.precomputed.global_edge_support,
                core=core,
            )
            self._truss_state = state
        # state.apply validates the whole script before mutating anything, so
        # an invalid batch raises here and leaves the engine untouched.  The
        # graph and the core mutate in lockstep: on the fast backend the
        # snapshot overlay is patched in place, with no re-freeze.
        delta = state.apply(batch)
        if self.config.backend != "fast":
            # No workspace consumes the reference view's mutation log
            # (workspaces exist only over CSR cores); keep it from growing
            # across the lifetime of a long-lived session.
            core.mutation_log.clear()

        affected = affected_centers(
            self.graph,
            delta,
            max_radius=self.index.max_radius,
            theta_min=min(self.index.thresholds),
            core=core,
        )
        total = self.graph.num_vertices()
        ratio = len(affected) / total if total else 0.0
        dirt = 0.0
        compacted = False

        if ratio > threshold:
            # The overlay tracked every edit, so the fallback folds it into
            # a pure CSR (identical to re-freezing the mutated graph) and
            # rebuilds the offline phase over that.
            self._reset_dynamic_state(compact_overlay=True)
            self._rebuild_offline()
            mode = "rebuild"
        else:
            new_vertices = list(delta.new_vertices)
            new_vertex_set = set(new_vertices)
            ordered = sorted(affected, key=repr)
            if self.config.backend == "fast":
                from repro.fastgraph.offline import fast_refresh_records

                fast_refresh_records(
                    core, self._workspace(), self.index.precomputed, ordered, state
                )
            else:
                refresh_vertex_aggregates(
                    self.graph, self.index.precomputed, ordered, state
                )
            patch_tree_index(
                self.index,
                changed_vertices=[v for v in ordered if v not in new_vertex_set],
                added_vertices=new_vertices,
            )
            mode = "incremental"
            if self.config.backend == "fast":
                self._edit_log.append(batch)
                dirt = core.dirt_ratio()
                if dirt > self.config.compact_dirt_ratio:
                    self._compact_overlay(core)
                    compacted = True

        self.epoch += 1
        return UpdateReport(
            mode=mode,
            insertions=batch.num_insertions,
            deletions=batch.num_deletions,
            new_vertices=len(delta.new_vertices),
            affected_vertices=len(affected),
            total_vertices=total,
            support_changed_edges=len(delta.support_changed),
            truss_changed_edges=len(delta.truss_changed),
            damage_ratio=ratio,
            damage_threshold=threshold,
            epoch=self.epoch,
            elapsed_seconds=time.perf_counter() - started,
            overlay_dirt_ratio=dirt,
            compacted=compacted,
        )

    def _invalidate_snapshot(self) -> None:
        self._frozen = None
        self._fast_workspace = None

    def _reset_dynamic_state(self, compact_overlay: bool) -> None:
        """Drop all incremental bookkeeping ahead of an offline rebuild.

        ``compact_overlay=True`` (damage fallback) folds an in-lockstep
        overlay into a pure CSR so the rebuild reuses it instead of paying a
        fresh ``freeze()``; ``False`` (forced rebuild, overlay not synced)
        drops the snapshot entirely.
        """
        self._truss_state = None
        self._reference_core = None
        self._edit_log = []
        if compact_overlay and hasattr(self._frozen, "compact"):
            self._frozen = self._frozen.compact()
            self._fast_workspace = None
        else:
            self._invalidate_snapshot()

    def _compact_overlay(self, overlay) -> None:
        """Fold the snapshot overlay back into a pure CSR (amortized).

        Edge ids are renumbered by compaction, so the shared workspace is
        dropped (rebuilt lazily) and the truss state re-projects its id maps
        when the next update wraps a fresh overlay.  The edit log restarts
        from the new base.
        """
        self._frozen = overlay.compact()
        self._fast_workspace = None
        self._edit_log = []

    def _rebuild_offline(self) -> None:
        """Re-run the offline phase over the current graph (in place)."""
        precomputed = precompute(
            self.graph,
            max_radius=self.config.max_radius,
            thresholds=self.config.thresholds,
            num_bits=self.config.num_bits,
            backend=self.config.backend,
            frozen=self.frozen_graph(),
            kernel_tier=self.config.kernel_tier,
        )
        self.index = build_tree_index(
            self.graph,
            precomputed=precomputed,
            fanout=self.config.fanout,
            leaf_capacity=self.config.leaf_capacity,
        )

    # ------------------------------------------------------------------ #
    # batch serving
    # ------------------------------------------------------------------ #
    def serve(
        self,
        workers: int = 1,
        result_cache_capacity: Optional[int] = None,
        propagation_cache_capacity: Optional[int] = None,
        pruning: Optional[PruningConfig] = None,
        start_method: Optional[str] = None,
    ):
        """Return a :class:`~repro.serve.batch.BatchQueryEngine` over this engine.

        The serving engine keeps LRU caches (whole results and
        ``community_propagation`` scores) alive across batches and can answer
        batches in parallel with ``workers`` processes; see
        :mod:`repro.serve.batch`.
        """
        from repro.serve.batch import (
            DEFAULT_PROPAGATION_CACHE_CAPACITY,
            DEFAULT_RESULT_CACHE_CAPACITY,
            BatchQueryEngine,
            ServingConfig,
        )

        config = ServingConfig(
            workers=workers,
            result_cache_capacity=(
                DEFAULT_RESULT_CACHE_CAPACITY
                if result_cache_capacity is None
                else result_cache_capacity
            ),
            propagation_cache_capacity=(
                DEFAULT_PROPAGATION_CACHE_CAPACITY
                if propagation_cache_capacity is None
                else propagation_cache_capacity
            ),
            start_method=start_method,
        )
        return BatchQueryEngine(self, config=config, pruning=pruning)

    def topl_many(
        self,
        queries: Sequence[TopLQuery],
        workers: int = 1,
        pruning: Optional[PruningConfig] = None,
    ) -> list[TopLResult]:
        """Answer many TopL-ICDE queries (order-stable); a one-shot batch.

        .. deprecated::
            Route batches through :class:`repro.service.CommunityService`
            (adopt the engine as a session and issue a
            :class:`~repro.service.schema.BatchRequest`); session serving
            keeps caches warm across batches, which a one-shot cannot.
        """
        warnings.warn(
            "InfluentialCommunityEngine.topl_many() is deprecated; adopt the "
            "engine into a repro.service.CommunityService session and issue a "
            "BatchRequest instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.serve(workers=workers, pruning=pruning).run(queries))

    def dtopl_many(
        self,
        queries: Sequence[DTopLQuery],
        workers: int = 1,
        pruning: Optional[PruningConfig] = None,
    ) -> list[DTopLResult]:
        """Answer many DTopL-ICDE queries (order-stable); a one-shot batch.

        .. deprecated::
            Route batches through :class:`repro.service.CommunityService`,
            as with :meth:`topl_many`.
        """
        warnings.warn(
            "InfluentialCommunityEngine.dtopl_many() is deprecated; adopt the "
            "engine into a repro.service.CommunityService session and issue a "
            "BatchRequest instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.serve(workers=workers, pruning=pruning).run(queries))

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def kcore_comparison(
        self, community: SeedCommunity, k: Optional[int] = None
    ) -> dict:
        """Figure 5-style comparison of a result community against the k-core around its centre."""
        return compare_with_kcore(
            self.graph,
            community,
            k=k if k is not None else community.k,
            theta=community.influenced.threshold,
        )

    def kcore_community(self, center: VertexId, k: int, theta: float) -> Optional[SeedCommunity]:
        """Extract the k-core community around ``center`` scored at ``theta``."""
        return kcore_community(self.graph, center, k, theta)

    def describe(self) -> dict:
        """Return a summary of the engine (graph size, index shape, configuration).

        Besides the graph/index/config shapes this carries the diagnostics a
        serving operator needs: the active ``backend``, the dynamic-update
        ``epoch`` (cache generation), and the ``index_schema_version`` the
        process persists indexes with.  ``repro stats --index`` and the
        gateway's ``/v1/health`` both surface this document verbatim.
        """
        from repro.index.serialization import INDEX_FORMAT_VERSION

        return {
            "backend": self.config.backend,
            "kernels": self._kernel_diagnostics(),
            "epoch": self.epoch,
            "index_schema_version": INDEX_FORMAT_VERSION,
            "graph": {
                "name": self.graph.name,
                "num_vertices": self.graph.num_vertices(),
                "num_edges": self.graph.num_edges(),
            },
            "index": self.index.describe(),
            "config": self.config.describe(),
            "store": self.store_provenance(),
        }

    def _kernel_diagnostics(self) -> dict:
        """The ``kernels`` block of :meth:`describe`.

        ``requested`` is the configured knob; ``active`` the tier kernels
        actually run on — resolved for the fast backend (``"unavailable"``
        when an explicit ``"vector"`` has no numpy to run on), ``None`` on
        the reference backend, which has no kernel tiers.
        """
        from repro.exceptions import GraphError
        from repro.fastgraph.csr import NUMPY_VERSION
        from repro.fastgraph.kernels import resolve_kernel_tier

        requested = self.config.kernel_tier
        if self.config.backend != "fast":
            active = None
        else:
            try:
                active = resolve_kernel_tier(requested)
            except GraphError:
                active = "unavailable"
        return {
            "requested": requested,
            "active": active,
            "numpy_version": NUMPY_VERSION,
        }
