"""High-level engine: the library's main entry point.

:class:`InfluentialCommunityEngine` wraps the two-phase framework of the
paper (Algorithm 1): build it once over a social network — running the
offline pre-computation and constructing the tree index — then answer any
number of online TopL-ICDE and DTopL-ICDE queries against it.

Example
-------
>>> from repro import InfluentialCommunityEngine, datasets, make_topl_query
>>> graph = datasets.uni(num_vertices=500, rng=1)
>>> engine = InfluentialCommunityEngine.build(graph)
>>> query = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)
>>> result = engine.topl(query)
>>> [round(c.score, 2) for c in result]            # doctest: +SKIP
[41.87, 39.02, 36.55]
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.core.config import EngineConfig
from repro.exceptions import QueryParameterError
from repro.dynamic.maintenance import (
    UpdateReport,
    affected_centers,
    refresh_vertex_aggregates,
)
from repro.dynamic.truss_maintenance import IncrementalTrussState
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.validation import validate_graph
from repro.index.patch import patch_tree_index
from repro.index.precompute import precompute
from repro.index.serialization import load_index, save_index
from repro.index.tree import TreeIndex, build_tree_index
from repro.pruning.stats import PruningConfig
from repro.query.baselines.kcore_baseline import compare_with_kcore, kcore_community
from repro.query.dtopl import DTopLProcessor
from repro.query.params import DTopLQuery, TopLQuery
from repro.query.results import DTopLResult, SeedCommunity, TopLResult
from repro.query.topl import TopLProcessor


class InfluentialCommunityEngine:
    """Offline pre-computation + online query answering in one object."""

    def __init__(
        self,
        graph: SocialNetwork,
        index: TreeIndex,
        config: EngineConfig,
    ) -> None:
        self.graph = graph
        self.index = index
        self.config = config
        #: Bumped by every effective :meth:`apply_updates`; serving layers tag
        #: their cache keys with it so pre-update entries can never hit.
        self.epoch = 0
        self._truss_state: Optional[IncrementalTrussState] = None
        #: Lazily-built CSR snapshot for the ``fast`` backend, shared by all
        #: processors this engine creates; dropped whenever the graph
        #: mutates (dynamic updates re-freeze on next use).  The workspace
        #: (scratch arrays over the snapshot) is shared the same way so
        #: per-call processors do not rebuild it per query; it is
        #: single-threaded, which is safe because the engine's own query
        #: methods are sequential (parallel serving workers build their own).
        self._frozen = None
        self._fast_workspace = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: SocialNetwork,
        config: Optional[EngineConfig] = None,
        validate: bool = True,
    ) -> "InfluentialCommunityEngine":
        """Run the offline phase over ``graph`` and return a ready engine.

        Parameters
        ----------
        graph:
            The social network ``G``.
        config:
            Offline-phase configuration (defaults to the paper's settings).
        validate:
            Validate structural invariants of ``graph`` first (recommended;
            disable only for graphs produced by this library's generators).
        """
        config = config or EngineConfig()
        if validate:
            validate_graph(graph, strict=True)
        frozen = graph.freeze() if config.backend == "fast" else None
        precomputed = precompute(
            graph,
            max_radius=config.max_radius,
            thresholds=config.thresholds,
            num_bits=config.num_bits,
            backend=config.backend,
            frozen=frozen,
        )
        index = build_tree_index(
            graph,
            precomputed=precomputed,
            fanout=config.fanout,
            leaf_capacity=config.leaf_capacity,
        )
        engine = cls(graph=graph, index=index, config=config)
        # Reuse the offline phase's snapshot for online queries; one freeze
        # per epoch, not one per phase.
        engine._frozen = frozen
        return engine

    @classmethod
    def from_saved_index(
        cls,
        graph: SocialNetwork,
        path: Union[str, Path],
        config: Optional[EngineConfig] = None,
    ) -> "InfluentialCommunityEngine":
        """Load a previously saved index for ``graph`` instead of re-building it."""
        index = load_index(graph, path)
        config = config or EngineConfig(
            max_radius=index.max_radius,
            thresholds=index.thresholds,
            num_bits=index.precomputed.num_bits,
            fanout=index.fanout,
            leaf_capacity=index.leaf_capacity,
        )
        return cls(graph=graph, index=index, config=config)

    def save_index(self, path: Union[str, Path]) -> None:
        """Persist the offline pre-computation so future runs can skip it."""
        save_index(self.index, path)

    # ------------------------------------------------------------------ #
    # online queries
    # ------------------------------------------------------------------ #
    def topl(
        self,
        query: TopLQuery,
        pruning: Optional[PruningConfig] = None,
    ) -> TopLResult:
        """Answer a TopL-ICDE query (Definition 4, Algorithm 3).

        ``pruning=None`` applies the full pruning stack; the configuration is
        constructed per call so no state is shared between unrelated queries.
        """
        processor = TopLProcessor(
            self.graph,
            index=self.index,
            pruning=pruning,
            backend=self.config.backend,
            frozen=self.frozen_graph(),
            workspace=self._workspace(),
        )
        return processor.query(query)

    def dtopl(
        self,
        query: DTopLQuery,
        pruning: Optional[PruningConfig] = None,
    ) -> DTopLResult:
        """Answer a DTopL-ICDE query (Definition 5, Algorithm 4)."""
        processor = DTopLProcessor(
            self.graph,
            index=self.index,
            pruning=pruning,
            backend=self.config.backend,
            frozen=self.frozen_graph(),
            workspace=self._workspace(),
        )
        return processor.query(query)

    def frozen_graph(self):
        """The engine's CSR snapshot when the ``fast`` backend is active.

        Returns ``None`` on the reference backend.  The snapshot is built
        lazily, reused by every processor, and invalidated whenever
        :meth:`apply_updates` mutates the graph.
        """
        if self.config.backend != "fast":
            return None
        if self._frozen is None:
            self._frozen = self.graph.freeze()
        return self._frozen

    def _workspace(self):
        """Shared kernel scratch space over :meth:`frozen_graph` (fast only)."""
        if self.config.backend != "fast":
            return None
        if self._fast_workspace is None:
            from repro.fastgraph.kernels import CSRWorkspace

            self._fast_workspace = CSRWorkspace(self.frozen_graph())
        return self._fast_workspace

    # ------------------------------------------------------------------ #
    # dynamic updates
    # ------------------------------------------------------------------ #
    def apply_updates(
        self,
        batch: Union[UpdateBatch, Iterable[EdgeUpdate]],
        damage_threshold: Optional[float] = None,
        rebuild: bool = False,
    ) -> UpdateReport:
        """Apply an edge edit script and bring the index back in sync.

        The batch is validated up front (all-or-nothing), applied to the live
        graph with incremental support/trussness maintenance, and then the
        pre-computed records of the *affected* centre vertices — those whose
        hop balls, support bounds or influence propagation the edits can
        reach — are recomputed and patched into the tree.  When the affected
        fraction exceeds the damage threshold (or ``rebuild=True``) the
        offline phase is re-run instead, which is cheaper past that point.

        Either way the engine's :attr:`epoch` is bumped, which invalidates
        every cache a :class:`~repro.serve.batch.BatchQueryEngine` holds over
        this engine.

        Parameters
        ----------
        batch:
            An :class:`~repro.dynamic.updates.UpdateBatch` (or any iterable
            of :class:`~repro.dynamic.updates.EdgeUpdate`).
        damage_threshold:
            Overrides ``config.damage_threshold`` for this call (same
            ``(0, 1]`` domain).
        rebuild:
            Force the full-rebuild path regardless of damage.  This skips
            the incremental bookkeeping entirely (it would be discarded), so
            the report's edge-change counters are 0 and its damage ratio 1.0.

        Returns
        -------
        UpdateReport
            What happened: mode, affected counts, damage ratio, timings.
        """
        if not isinstance(batch, UpdateBatch):
            batch = UpdateBatch(batch)
        threshold = (
            self.config.damage_threshold if damage_threshold is None else damage_threshold
        )
        if not 0.0 < threshold <= 1.0:
            # Same domain EngineConfig enforces for the persistent knob.
            raise QueryParameterError(
                f"damage_threshold must be in (0, 1], got {threshold}"
            )
        started = time.perf_counter()
        if len(batch) == 0:
            return UpdateReport(
                mode="noop", insertions=0, deletions=0, new_vertices=0,
                affected_vertices=0, total_vertices=self.graph.num_vertices(),
                support_changed_edges=0, truss_changed_edges=0,
                damage_ratio=0.0, damage_threshold=threshold, epoch=self.epoch,
                elapsed_seconds=time.perf_counter() - started,
            )

        if rebuild:
            # A forced rebuild discards all incremental bookkeeping, so skip
            # it: mutate the graph directly and re-run the offline phase.
            batch.validate_against(self.graph)
            new_vertices = batch.apply_to(self.graph)
            self._truss_state = None
            self._invalidate_snapshot()
            self._rebuild_offline()
            self.epoch += 1
            total = self.graph.num_vertices()
            return UpdateReport(
                mode="rebuild",
                insertions=batch.num_insertions,
                deletions=batch.num_deletions,
                new_vertices=len(new_vertices),
                affected_vertices=total,
                total_vertices=total,
                support_changed_edges=0,
                truss_changed_edges=0,
                damage_ratio=1.0,
                damage_threshold=threshold,
                epoch=self.epoch,
                elapsed_seconds=time.perf_counter() - started,
            )

        state = self._truss_state
        if state is None:
            # First dynamic batch since (re)build: adopt the offline support
            # map by reference so it stays in sync, and pay one full peeling
            # to seed the trussness map.
            state = IncrementalTrussState(
                self.graph, supports=self.index.precomputed.global_edge_support
            )
            self._truss_state = state
        # state.apply validates the whole script before mutating anything, so
        # an invalid batch raises here and leaves the engine untouched.
        delta = state.apply(batch)
        # The graph just mutated: any CSR snapshot is stale from here on
        # (the damage-fallback rebuild below must not precompute over it).
        self._invalidate_snapshot()

        affected = affected_centers(
            self.graph,
            delta,
            max_radius=self.index.max_radius,
            theta_min=min(self.index.thresholds),
        )
        total = self.graph.num_vertices()
        ratio = len(affected) / total if total else 0.0

        if ratio > threshold:
            self._rebuild_offline()
            self._truss_state = None
            mode = "rebuild"
        else:
            new_vertices = list(delta.new_vertices)
            new_vertex_set = set(new_vertices)
            ordered = sorted(affected, key=repr)
            refresh_vertex_aggregates(
                self.graph, self.index.precomputed, ordered, state
            )
            patch_tree_index(
                self.index,
                changed_vertices=[v for v in ordered if v not in new_vertex_set],
                added_vertices=new_vertices,
            )
            mode = "incremental"

        self.epoch += 1
        return UpdateReport(
            mode=mode,
            insertions=batch.num_insertions,
            deletions=batch.num_deletions,
            new_vertices=len(delta.new_vertices),
            affected_vertices=len(affected),
            total_vertices=total,
            support_changed_edges=len(delta.support_changed),
            truss_changed_edges=len(delta.truss_changed),
            damage_ratio=ratio,
            damage_threshold=threshold,
            epoch=self.epoch,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _invalidate_snapshot(self) -> None:
        self._frozen = None
        self._fast_workspace = None

    def _rebuild_offline(self) -> None:
        """Re-run the offline phase over the current graph (in place)."""
        precomputed = precompute(
            self.graph,
            max_radius=self.config.max_radius,
            thresholds=self.config.thresholds,
            num_bits=self.config.num_bits,
            backend=self.config.backend,
            frozen=self.frozen_graph(),
        )
        self.index = build_tree_index(
            self.graph,
            precomputed=precomputed,
            fanout=self.config.fanout,
            leaf_capacity=self.config.leaf_capacity,
        )

    # ------------------------------------------------------------------ #
    # batch serving
    # ------------------------------------------------------------------ #
    def serve(
        self,
        workers: int = 1,
        result_cache_capacity: Optional[int] = None,
        propagation_cache_capacity: Optional[int] = None,
        pruning: Optional[PruningConfig] = None,
        start_method: Optional[str] = None,
    ):
        """Return a :class:`~repro.serve.batch.BatchQueryEngine` over this engine.

        The serving engine keeps LRU caches (whole results and
        ``community_propagation`` scores) alive across batches and can answer
        batches in parallel with ``workers`` processes; see
        :mod:`repro.serve.batch`.
        """
        from repro.serve.batch import (
            DEFAULT_PROPAGATION_CACHE_CAPACITY,
            DEFAULT_RESULT_CACHE_CAPACITY,
            BatchQueryEngine,
            ServingConfig,
        )

        config = ServingConfig(
            workers=workers,
            result_cache_capacity=(
                DEFAULT_RESULT_CACHE_CAPACITY
                if result_cache_capacity is None
                else result_cache_capacity
            ),
            propagation_cache_capacity=(
                DEFAULT_PROPAGATION_CACHE_CAPACITY
                if propagation_cache_capacity is None
                else propagation_cache_capacity
            ),
            start_method=start_method,
        )
        return BatchQueryEngine(self, config=config, pruning=pruning)

    def topl_many(
        self,
        queries: Sequence[TopLQuery],
        workers: int = 1,
        pruning: Optional[PruningConfig] = None,
    ) -> list[TopLResult]:
        """Answer many TopL-ICDE queries (order-stable); a one-shot batch.

        .. deprecated::
            Route batches through :class:`repro.service.CommunityService`
            (adopt the engine as a session and issue a
            :class:`~repro.service.schema.BatchRequest`); session serving
            keeps caches warm across batches, which a one-shot cannot.
        """
        warnings.warn(
            "InfluentialCommunityEngine.topl_many() is deprecated; adopt the "
            "engine into a repro.service.CommunityService session and issue a "
            "BatchRequest instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.serve(workers=workers, pruning=pruning).run(queries))

    def dtopl_many(
        self,
        queries: Sequence[DTopLQuery],
        workers: int = 1,
        pruning: Optional[PruningConfig] = None,
    ) -> list[DTopLResult]:
        """Answer many DTopL-ICDE queries (order-stable); a one-shot batch.

        .. deprecated::
            Route batches through :class:`repro.service.CommunityService`,
            as with :meth:`topl_many`.
        """
        warnings.warn(
            "InfluentialCommunityEngine.dtopl_many() is deprecated; adopt the "
            "engine into a repro.service.CommunityService session and issue a "
            "BatchRequest instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.serve(workers=workers, pruning=pruning).run(queries))

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def kcore_comparison(
        self, community: SeedCommunity, k: Optional[int] = None
    ) -> dict:
        """Figure 5-style comparison of a result community against the k-core around its centre."""
        return compare_with_kcore(
            self.graph,
            community,
            k=k if k is not None else community.k,
            theta=community.influenced.threshold,
        )

    def kcore_community(self, center: VertexId, k: int, theta: float) -> Optional[SeedCommunity]:
        """Extract the k-core community around ``center`` scored at ``theta``."""
        return kcore_community(self.graph, center, k, theta)

    def describe(self) -> dict:
        """Return a summary of the engine (graph size, index shape, configuration).

        Besides the graph/index/config shapes this carries the diagnostics a
        serving operator needs: the active ``backend``, the dynamic-update
        ``epoch`` (cache generation), and the ``index_schema_version`` the
        process persists indexes with.  ``repro stats --index`` and the
        gateway's ``/v1/health`` both surface this document verbatim.
        """
        from repro.index.serialization import INDEX_FORMAT_VERSION

        return {
            "backend": self.config.backend,
            "epoch": self.epoch,
            "index_schema_version": INDEX_FORMAT_VERSION,
            "graph": {
                "name": self.graph.name,
                "num_vertices": self.graph.num_vertices(),
                "num_edges": self.graph.num_edges(),
            },
            "index": self.index.describe(),
            "config": self.config.describe(),
        }
