"""Batch query serving layer: worker pools and result/propagation caching.

See :class:`repro.serve.batch.BatchQueryEngine` for the main entry point; the
usual way to obtain one is :meth:`repro.core.engine.InfluentialCommunityEngine.serve`.
"""

from repro.serve.batch import (
    DEFAULT_PROPAGATION_CACHE_CAPACITY,
    DEFAULT_RESULT_CACHE_CAPACITY,
    BatchQueryEngine,
    BatchResult,
    BatchStatistics,
    ServingConfig,
)
from repro.serve.cache import (
    CacheStatistics,
    LRUCache,
    maybe_cache,
    propagation_cache_key,
    query_cache_key,
)

__all__ = [
    "BatchQueryEngine",
    "BatchResult",
    "BatchStatistics",
    "ServingConfig",
    "DEFAULT_RESULT_CACHE_CAPACITY",
    "DEFAULT_PROPAGATION_CACHE_CAPACITY",
    "CacheStatistics",
    "LRUCache",
    "maybe_cache",
    "propagation_cache_key",
    "query_cache_key",
]
