"""Caching primitives for the serving layer.

Two caches back the batch serving path:

* a **result cache** keyed on the full query (``TopLQuery`` / ``DTopLQuery``
  are frozen, hashable dataclasses) plus the active :class:`PruningConfig` —
  a hit skips the online algorithm entirely, and
* a **propagation cache** keyed on ``(seed vertex set, theta)`` — repeated
  queries with overlapping candidate centres extract the same seed
  communities, and ``community_propagation`` (the multi-source max-product
  Dijkstra) is the hot path worth memoising even when the whole result is not
  reusable.

Both are plain LRU caches.  Queries never mutate the graph or index, but
dynamic updates (``engine.apply_updates``) do — every key therefore carries
the engine's *epoch*, so entries from before an update are unreachable after
it and age out of the LRU naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional, Union

from repro.exceptions import ServingError
from repro.graph.social_network import VertexId
from repro.pruning.stats import PruningConfig
from repro.query.params import DTopLQuery, TopLQuery


@dataclass
class CacheStatistics:
    """Hit / miss / eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStatistics") -> None:
        """Accumulate another counter set into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def as_dict(self) -> dict:
        """Return the counters as a flat dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Parameters
    ----------
    capacity:
        Maximum number of entries (``>= 1``); use :func:`maybe_cache` for the
        "0 disables caching" convention used by the serving configuration.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServingError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.statistics = CacheStatistics()
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default=None):
        """Return the cached value (refreshing its recency) or ``default``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.statistics.misses += 1
            return default
        self._entries.move_to_end(key)
        self.statistics.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert or refresh an entry, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.statistics.evictions += 1

    def keys(self) -> list:
        """Current keys, least-recently-used first."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()


def maybe_cache(capacity: int) -> Optional[LRUCache]:
    """Return an :class:`LRUCache` of ``capacity``, or ``None`` when ``<= 0``."""
    return LRUCache(capacity) if capacity > 0 else None


def query_cache_key(
    query: Union[TopLQuery, DTopLQuery], pruning: PruningConfig, epoch: int = 0
) -> tuple:
    """Build the result-cache key for a query under a pruning configuration.

    TopL and DTopL queries sharing the same base parameters must not collide,
    so the key leads with the query kind.  ``epoch`` is the graph epoch of
    the engine being served (bumped by ``apply_updates``): entries written
    before an update carry the old epoch and can never hit again, so a
    dynamic update can never leak a stale cached result.
    """
    if isinstance(query, DTopLQuery):
        return ("dtopl", query, pruning, epoch)
    if isinstance(query, TopLQuery):
        return ("topl", query, pruning, epoch)
    raise ServingError(
        f"expected a TopLQuery or DTopLQuery, got {type(query).__name__}"
    )


def propagation_cache_key(
    seed_vertices: Iterable[VertexId], threshold: float, epoch: int = 0
) -> tuple:
    """Build the propagation-cache key for ``calculate_influence(g, theta)``.

    Epoch-tagged like :func:`query_cache_key`: ``community_propagation``
    depends on the whole graph, so scores memoised before a dynamic update
    must never be served after it.
    """
    return (frozenset(seed_vertices), threshold, epoch)
