"""Batch query serving over one built index.

:class:`BatchQueryEngine` answers a batch (or stream) of mixed TopL-ICDE /
DTopL-ICDE queries against a single :class:`~repro.core.engine.InfluentialCommunityEngine`:

* **sequentially** with shared state — one processor pair reused across the
  whole batch, a whole-result LRU cache keyed on ``(query, pruning)``, and a
  propagation cache memoising ``calculate_influence`` across queries whose
  candidate centres overlap; or
* **in parallel** via a ``multiprocessing`` pool.  On platforms with ``fork``
  the workers inherit the parent's graph and index for free; otherwise
  (``spawn`` / ``forkserver``) each worker *rebuilds* the engine once from the
  same payload the :mod:`repro.index.serialization` round-trip uses, so the
  offline phase is never re-run.

Results come back in input order in both modes, and the parallel path is
bit-identical to the sequential one (the online algorithms are
deterministic).  The graph and index may change *between* calls through
``engine.apply_updates``: the serving engine detects the epoch bump on the
next ``answer()``/``run()``, re-binds its processors to the (possibly
re-built) index, and — because every cache key is epoch-tagged — can never
serve a result cached before the update.

Cache scope: the whole-result cache lives in the parent and persists across
batches in *both* modes (parallel answers are folded back into it).  The
propagation cache persists across batches only on the sequential path; a
parallel ``run()`` builds its pool per call, so workers start with empty
propagation caches that die with the pool (their hit counts still surface in
:class:`BatchStatistics`).  Batches small enough to feel pool start-up costs
belong on the sequential path anyway.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.exceptions import ServingError
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.social_network import SocialNetwork
from repro.index.serialization import precomputed_from_dict, precomputed_to_dict
from repro.index.tree import TreeIndex, build_tree_index
from repro.pruning.stats import PruningConfig
from repro.query.dtopl import DTopLProcessor
from repro.query.params import DTopLQuery, TopLQuery
from repro.query.results import DTopLResult, TopLResult
from repro.query.topl import TopLProcessor
from repro.serve.cache import LRUCache, maybe_cache, query_cache_key

Query = Union[TopLQuery, DTopLQuery]
QueryResult = Union[TopLResult, DTopLResult]

#: Default whole-result cache capacity (entries).
DEFAULT_RESULT_CACHE_CAPACITY = 256
#: Default ``community_propagation`` cache capacity (entries).
DEFAULT_PROPAGATION_CACHE_CAPACITY = 4096

_START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of a :class:`BatchQueryEngine`.

    Attributes
    ----------
    workers:
        Default worker count for :meth:`BatchQueryEngine.run`; ``1`` answers
        sequentially in-process.
    result_cache_capacity:
        Whole-result LRU capacity; ``0`` disables result caching (and the
        within-batch deduplication that rides on it).
    propagation_cache_capacity:
        ``community_propagation`` LRU capacity; ``0`` disables it.
    start_method:
        ``multiprocessing`` start method for parallel batches; ``None`` picks
        ``fork`` when the platform offers it (workers inherit the index),
        falling back to ``spawn`` (workers rebuild it from the serialization
        payload).
    chunk_size:
        ``Pool.map`` chunk size; small values balance uneven query costs.
    """

    workers: int = 1
    result_cache_capacity: int = DEFAULT_RESULT_CACHE_CAPACITY
    propagation_cache_capacity: int = DEFAULT_PROPAGATION_CACHE_CAPACITY
    start_method: Optional[str] = None
    chunk_size: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError(f"workers must be >= 1, got {self.workers}")
        if self.result_cache_capacity < 0:
            raise ServingError(
                f"result_cache_capacity must be >= 0, got {self.result_cache_capacity}"
            )
        if self.propagation_cache_capacity < 0:
            raise ServingError(
                "propagation_cache_capacity must be >= 0, "
                f"got {self.propagation_cache_capacity}"
            )
        if self.start_method is not None and self.start_method not in _START_METHODS:
            raise ServingError(
                f"start_method must be one of {_START_METHODS} or None, "
                f"got {self.start_method!r}"
            )
        if self.chunk_size < 1:
            raise ServingError(f"chunk_size must be >= 1, got {self.chunk_size}")


@dataclass
class BatchStatistics:
    """Counters describing one :meth:`BatchQueryEngine.run` execution."""

    total_queries: int = 0
    executed: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    deduplicated: int = 0
    propagation_cache_hits: int = 0
    propagation_cache_misses: int = 0
    workers: int = 1
    mode: str = "sequential"
    elapsed_seconds: float = 0.0

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 for an empty or instantaneous batch)."""
        if self.elapsed_seconds <= 0.0 or self.total_queries == 0:
            return 0.0
        return self.total_queries / self.elapsed_seconds

    @property
    def result_cache_hit_rate(self) -> float:
        lookups = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Return the counters as a flat dict (used in reports and the CLI)."""
        return {
            "total_queries": self.total_queries,
            "executed": self.executed,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "result_cache_hit_rate": round(self.result_cache_hit_rate, 4),
            "deduplicated": self.deduplicated,
            "propagation_cache_hits": self.propagation_cache_hits,
            "propagation_cache_misses": self.propagation_cache_misses,
            "workers": self.workers,
            "mode": self.mode,
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": round(self.queries_per_second, 4),
        }


@dataclass(frozen=True)
class BatchResult:
    """Results of a batch, in input order, plus execution statistics."""

    results: tuple
    statistics: BatchStatistics

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]


# --------------------------------------------------------------------------- #
# worker plumbing
# --------------------------------------------------------------------------- #
#: Per-process processor pair; set by the pool initializers below.
_WORKER_PROCESSORS: Optional[tuple] = None

#: Parent-side state handed to fork workers (inherited copy-on-write).
_FORK_STATE: Optional[tuple] = None

#: Store handle of a store-attached worker; module-level so the mmap pages
#: stay alive for the lifetime of the worker process.
_WORKER_STORE_HANDLE = None


def _build_processors(
    graph: SocialNetwork,
    index: TreeIndex,
    pruning: PruningConfig,
    propagation_cache_capacity: int,
    cache_epoch: int = 0,
    propagation_cache: Optional[LRUCache] = None,
    backend: str = "reference",
    frozen=None,
    workspace=None,
    kernel_tier: str = "auto",
) -> tuple:
    cache = (
        propagation_cache
        if propagation_cache is not None
        else maybe_cache(propagation_cache_capacity)
    )
    # The processors share one CSR snapshot on the fast backend (freezing is
    # O(|V| + |E|); no reason to pay it twice per worker).  ``workspace`` is
    # only passed on the in-process path, where the engine's incrementally
    # synced scratch arrays can be reused; pool workers build their own.
    if backend == "fast" and frozen is None:
        frozen = graph.freeze()
    topl = TopLProcessor(
        graph, index=index, pruning=pruning, propagation_cache=cache,
        cache_epoch=cache_epoch, backend=backend, frozen=frozen,
        workspace=workspace, kernel_tier=kernel_tier,
    )
    dtopl = DTopLProcessor(
        graph, index=index, pruning=pruning, propagation_cache=cache,
        cache_epoch=cache_epoch, backend=backend, frozen=frozen,
        workspace=workspace, kernel_tier=kernel_tier,
    )
    return topl, dtopl


def _worker_init_fork() -> None:
    """Pool initializer for ``fork``: the state arrived with the fork itself."""
    global _WORKER_PROCESSORS
    graph, index, pruning, capacity, epoch, backend, frozen, kernel_tier = (
        _FORK_STATE
    )
    _WORKER_PROCESSORS = _build_processors(
        graph, index, pruning, capacity, epoch, backend=backend, frozen=frozen,
        kernel_tier=kernel_tier,
    )


def _worker_init_rebuild(payload: dict) -> None:
    """Pool initializer for ``spawn``/``forkserver``: rebuild from the payload.

    The payload is the same JSON-compatible document the index serialization
    round-trip produces, so rebuilding skips the offline phase entirely.
    When the parent engine's snapshot carries a dynamic-update overlay, the
    shipped graph is the overlay's *base* and ``edit_log`` the batches
    applied since: the worker snapshots the base, then replays the log into
    both its graph and the overlay — mirroring the parent's
    :class:`~repro.fastgraph.delta.DeltaCSR` exactly, for the price of
    shipping one graph either way.

    When the parent is store-backed and pristine, the payload carries only a
    ``store_path``: the worker *attaches* to the packed store (mmap — the
    same physical pages as every other worker) instead of deserialising a
    graph and index, so start-up cost is flat in the graph size.
    """
    global _WORKER_PROCESSORS, _WORKER_STORE_HANDLE
    store_path = payload.get("store_path")
    if store_path is not None:
        from repro.store import open_store

        handle = open_store(store_path)
        _WORKER_STORE_HANDLE = handle  # pin the mmap for the process lifetime
        backend = payload.get("backend", "reference")
        _WORKER_PROCESSORS = _build_processors(
            handle.graph,
            handle.index,
            PruningConfig(**payload["pruning"]),
            payload["propagation_cache_capacity"],
            payload.get("cache_epoch", 0),
            backend=backend,
            frozen=handle.csr if backend == "fast" else None,
            kernel_tier=payload.get("kernel_tier", "auto"),
        )
        return
    graph = graph_from_dict(payload["graph"])
    frozen = None
    edit_log = payload.get("edit_log") or []
    if edit_log:
        from repro.dynamic.updates import UpdateBatch
        from repro.fastgraph.delta import DeltaCSR

        frozen = DeltaCSR(graph.freeze())  # snapshot the base before replay
        for document in edit_log:
            batch = UpdateBatch.from_json(document)
            batch.apply_to(graph)
            frozen.replay(batch)
    index = build_tree_index(
        graph,
        precomputed=precomputed_from_dict(payload["precomputed"]),
        fanout=payload["fanout"],
        leaf_capacity=payload["leaf_capacity"],
    )
    pruning = PruningConfig(**payload["pruning"])
    _WORKER_PROCESSORS = _build_processors(
        graph,
        index,
        pruning,
        payload["propagation_cache_capacity"],
        payload.get("cache_epoch", 0),
        backend=payload.get("backend", "reference"),
        frozen=frozen,
        kernel_tier=payload.get("kernel_tier", "auto"),
    )


def _worker_answer(item: tuple) -> tuple:
    """Answer one ``(position, query)`` pair in a pool worker."""
    position, query = item
    topl, dtopl = _WORKER_PROCESSORS
    if isinstance(query, DTopLQuery):
        return position, dtopl.query(query)
    return position, topl.query(query)


# --------------------------------------------------------------------------- #
# the serving engine
# --------------------------------------------------------------------------- #
class BatchQueryEngine:
    """Serves batches of mixed TopL/DTopL queries against one built engine.

    Parameters
    ----------
    engine:
        A ready :class:`~repro.core.engine.InfluentialCommunityEngine`.
        Dynamic updates applied to it between calls are absorbed
        automatically (epoch-tagged caches, processor re-binding).
    config:
        Serving configuration (worker count, cache capacities, start method).
    pruning:
        Pruning rules applied to every query; ``None`` means the full stack.
    """

    @classmethod
    def for_session(cls, service, session: str = "default") -> "BatchQueryEngine":
        """The serving engine behind a :class:`~repro.service.facade.CommunityService` session.

        The preferred binding for serving workers: a session *name* instead
        of an engine object, so the worker sees whatever engine the service
        currently hosts under that name (rebuilds included).  Returns the
        session's persistent serving engine — caches are shared with every
        other consumer of the session.
        """
        return service.serving(session)

    def __init__(
        self,
        engine,
        config: Optional[ServingConfig] = None,
        pruning: Optional[PruningConfig] = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.pruning = pruning if pruning is not None else PruningConfig.all_enabled()
        self.result_cache: Optional[LRUCache] = maybe_cache(
            self.config.result_cache_capacity
        )
        self.propagation_cache: Optional[LRUCache] = maybe_cache(
            self.config.propagation_cache_capacity
        )
        #: Number of times a graph-epoch change was detected and absorbed.
        self.epoch_refreshes = 0
        self._epoch = getattr(engine, "epoch", 0)
        self._rebind_processors()

    def _rebind_processors(self) -> None:
        self._topl, self._dtopl = _build_processors(
            self.engine.graph,
            self.engine.index,
            self.pruning,
            self.config.propagation_cache_capacity,
            cache_epoch=self._epoch,
            propagation_cache=self.propagation_cache,
            backend=self._backend(),
            frozen=self._frozen(),
            workspace=self._workspace(),
            kernel_tier=self._kernel_tier(),
        )

    def _backend(self) -> str:
        config = getattr(self.engine, "config", None)
        return getattr(config, "backend", "reference")

    def _kernel_tier(self) -> str:
        config = getattr(self.engine, "config", None)
        return getattr(config, "kernel_tier", "auto")

    def _frozen(self):
        frozen_graph = getattr(self.engine, "frozen_graph", None)
        return frozen_graph() if callable(frozen_graph) else None

    def _workspace(self):
        """The engine's shared (incrementally synced) kernel workspace.

        Reusing it avoids rebuilding the per-vertex scratch tuples on every
        epoch re-bind; safe because the engine, this serving engine and its
        processors all run queries sequentially against one engine (the
        workspace resets its stamps after each call).
        """
        workspace = getattr(self.engine, "_workspace", None)
        return workspace() if callable(workspace) else None

    def _refresh_if_stale(self) -> None:
        """Absorb a dynamic update of the served engine.

        ``apply_updates`` bumps ``engine.epoch`` (and may swap the index
        object on a rebuild); re-binding the processors picks up the new
        index, and tagging cache keys with the new epoch makes every entry
        written before the update unreachable — stale hits are impossible.
        """
        epoch = getattr(self.engine, "epoch", 0)
        if epoch != self._epoch:
            self._epoch = epoch
            self._rebind_processors()
            self.epoch_refreshes += 1

    # ------------------------------------------------------------------ #
    # single queries (streaming use)
    # ------------------------------------------------------------------ #
    def answer(self, query: Query) -> QueryResult:
        """Answer one query through the shared caches (the streaming path)."""
        self._refresh_if_stale()
        key = query_cache_key(query, self.pruning, self._epoch)
        if self.result_cache is not None:
            cached = self.result_cache.get(key)
            if cached is not None:
                return cached
        result = self._execute(query)
        if self.result_cache is not None:
            self.result_cache.put(key, result)
        return result

    def _execute(self, query: Query) -> QueryResult:
        if isinstance(query, DTopLQuery):
            return self._dtopl.query(query)
        if isinstance(query, TopLQuery):
            return self._topl.query(query)
        raise ServingError(
            f"expected a TopLQuery or DTopLQuery, got {type(query).__name__}"
        )

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def run(self, queries: Iterable[Query], workers: Optional[int] = None) -> BatchResult:
        """Answer a batch of queries; results come back in input order.

        ``workers`` overrides the configured default.  With the result cache
        enabled, cached queries are answered up front and duplicates within
        the batch are executed once; with it disabled every query runs (the
        honest configuration for throughput measurements).
        """
        queries = list(queries)
        workers = self.config.workers if workers is None else workers
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self._refresh_if_stale()
        statistics = BatchStatistics(total_queries=len(queries), workers=workers)
        started = time.perf_counter()
        results: list = [None] * len(queries)

        pending: list[tuple[int, Query]] = []
        if self.result_cache is not None:
            for position, query in enumerate(queries):
                cached = self.result_cache.get(
                    query_cache_key(query, self.pruning, self._epoch)
                )
                if cached is not None:
                    results[position] = cached
                    statistics.result_cache_hits += 1
                else:
                    pending.append((position, query))
                    statistics.result_cache_misses += 1
        else:
            pending = list(enumerate(queries))

        if workers == 1 or len(pending) <= 1:
            self._run_sequential(pending, results, statistics)
        else:
            self._run_parallel(pending, results, statistics, workers)

        statistics.elapsed_seconds = time.perf_counter() - started
        return BatchResult(results=tuple(results), statistics=statistics)

    @staticmethod
    def _absorb_query_statistics(statistics: BatchStatistics, result: QueryResult) -> None:
        statistics.propagation_cache_hits += result.statistics.propagation_cache_hits
        statistics.propagation_cache_misses += result.statistics.propagation_cache_misses

    def _run_sequential(
        self,
        pending: list,
        results: list,
        statistics: BatchStatistics,
    ) -> None:
        statistics.mode = "sequential"
        statistics.workers = 1
        executed_keys: set = set()
        for position, query in pending:
            if self.result_cache is None:
                result = self._execute(query)
            else:
                key = query_cache_key(query, self.pruning, self._epoch)
                if key in executed_keys:
                    # A duplicate earlier in the batch already filled the
                    # cache (unless a tiny capacity evicted it since).
                    cached = self.result_cache.get(key)
                    if cached is not None:
                        results[position] = cached
                        statistics.deduplicated += 1
                        continue
                result = self._execute(query)
                self.result_cache.put(key, result)
                executed_keys.add(key)
            results[position] = result
            statistics.executed += 1
            self._absorb_query_statistics(statistics, result)

    def _run_parallel(
        self,
        pending: list,
        results: list,
        statistics: BatchStatistics,
        workers: int,
    ) -> None:
        method = self._resolve_start_method()
        statistics.mode = method
        # Execute each distinct query once; fan the answer out to duplicates.
        items: list[tuple[int, Query]] = []
        duplicate_of: dict[int, int] = {}
        if self.result_cache is not None:
            first_position: dict = {}
            for position, query in pending:
                key = query_cache_key(query, self.pruning, self._epoch)
                if key in first_position:
                    duplicate_of[position] = first_position[key]
                    statistics.deduplicated += 1
                else:
                    first_position[key] = position
                    items.append((position, query))
        else:
            items = pending

        context = multiprocessing.get_context(method)
        workers = min(workers, len(items)) or 1
        statistics.workers = workers
        global _FORK_STATE
        try:
            if method == "fork":
                _FORK_STATE = (
                    self.engine.graph,
                    self.engine.index,
                    self.pruning,
                    self.config.propagation_cache_capacity,
                    self._epoch,
                    self._backend(),
                    self._frozen(),
                    self._kernel_tier(),
                )
                pool = context.Pool(workers, initializer=_worker_init_fork)
            else:
                pool = context.Pool(
                    workers,
                    initializer=_worker_init_rebuild,
                    initargs=(self._worker_payload(),),
                )
            with pool:
                answered = pool.map(
                    _worker_answer, items, chunksize=self.config.chunk_size
                )
        finally:
            _FORK_STATE = None

        by_position = dict(answered)
        for position, query in items:
            result = by_position[position]
            results[position] = result
            statistics.executed += 1
            self._absorb_query_statistics(statistics, result)
            if self.result_cache is not None:
                self.result_cache.put(
                    query_cache_key(query, self.pruning, self._epoch), result
                )
        for position, source in duplicate_of.items():
            results[position] = results[source]

    def _resolve_start_method(self) -> str:
        if self.config.start_method is not None:
            return self.config.start_method
        available = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in available else "spawn"

    def _worker_payload(self) -> dict:
        """The rebuild payload shipped to ``spawn``/``forkserver`` workers.

        When the served engine's fast snapshot carries a dynamic-update
        overlay, ``graph`` is the overlay's *base* graph and ``edit_log``
        the batches applied since — the worker replays them (see
        :func:`_worker_init_rebuild`) instead of receiving the mutated
        graph, so its snapshot mirrors the parent's overlay exactly.

        A store-backed engine with no updates since its store generation
        ships only the store *path* — each worker mmaps the packed file
        instead of rebuilding from a serialized document, so worker start-up
        no longer scales with the graph.
        """
        store_attachment = getattr(self.engine, "store_attachment", None)
        attachment = store_attachment() if callable(store_attachment) else None
        if attachment is not None:
            return {
                "store_path": attachment["store_path"],
                "pruning": {
                    "keyword": self.pruning.keyword,
                    "support": self.pruning.support,
                    "score": self.pruning.score,
                },
                "propagation_cache_capacity": self.config.propagation_cache_capacity,
                "cache_epoch": self._epoch,
                "backend": self._backend(),
                "kernel_tier": self._kernel_tier(),
            }
        index = self.engine.index
        serialized_overlay = getattr(self.engine, "serialized_overlay", None)
        overlay = serialized_overlay() if callable(serialized_overlay) else None
        payload = {
            "precomputed": precomputed_to_dict(index.precomputed),
            "fanout": index.fanout,
            "leaf_capacity": index.leaf_capacity,
            "pruning": {
                "keyword": self.pruning.keyword,
                "support": self.pruning.support,
                "score": self.pruning.score,
            },
            "propagation_cache_capacity": self.config.propagation_cache_capacity,
            "cache_epoch": self._epoch,
            "backend": self._backend(),
            "kernel_tier": self._kernel_tier(),
        }
        if overlay is not None:
            payload["graph"] = overlay["base_graph"]
            payload["edit_log"] = overlay["edit_log"]
        else:
            payload["graph"] = graph_to_dict(self.engine.graph)
            payload["edit_log"] = []
        return payload

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def cache_statistics(self) -> dict:
        """Hit/miss/eviction counters of both caches (zeros when disabled)."""
        empty = {"hits": 0, "misses": 0, "evictions": 0, "lookups": 0, "hit_rate": 0.0}
        return {
            "result_cache": (
                self.result_cache.statistics.as_dict()
                if self.result_cache is not None
                else dict(empty)
            ),
            "propagation_cache": (
                self.propagation_cache.statistics.as_dict()
                if self.propagation_cache is not None
                else dict(empty)
            ),
        }

    def clear_caches(self) -> None:
        """Drop every cached entry (statistics are kept)."""
        if self.result_cache is not None:
            self.result_cache.clear()
        if self.propagation_cache is not None:
            self.propagation_cache.clear()
