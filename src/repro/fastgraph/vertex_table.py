"""Interning of arbitrary hashable vertex ids into dense integers.

Every structure in :mod:`repro.fastgraph` works over dense ints
``0..n-1``.  :class:`VertexTable` owns the bijection between those ints and
the original vertex ids of a :class:`~repro.graph.social_network.SocialNetwork`.

Interning is *stable*: ids are numbered in first-intern order, so freezing
the same graph twice produces tables with identical mappings (the
equivalence and round-trip tests rely on this).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.exceptions import VertexNotFoundError


class VertexTable:
    """A stable bijection ``vertex id <-> dense int``.

    Vertices may be any hashable object (ints, strings, tuples, ...).  The
    dense index of a vertex is its first-intern position, so iteration order
    over the source graph fully determines the numbering.
    """

    __slots__ = ("_ids", "_index")

    def __init__(self, ids: Iterable[Hashable] = ()) -> None:
        self._ids: list = []
        self._index: dict = {}
        for vertex in ids:
            self.intern(vertex)

    def intern(self, vertex: Hashable) -> int:
        """Return the dense index of ``vertex``, assigning the next one if new."""
        index = self._index.get(vertex)
        if index is None:
            index = len(self._ids)
            self._index[vertex] = index
            self._ids.append(vertex)
        return index

    def index_of(self, vertex: Hashable) -> int:
        """Return the dense index of ``vertex``.

        Raises
        ------
        VertexNotFoundError
            If ``vertex`` was never interned.
        """
        try:
            return self._index[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def id_of(self, index: int) -> Hashable:
        """Return the original vertex id of dense index ``index``."""
        return self._ids[index]

    def ids(self) -> list:
        """Return the original vertex ids in dense-index order (a copy)."""
        return list(self._ids)

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._index

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexTable(n={len(self._ids)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexTable):
            return NotImplemented
        return self._ids == other._ids

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("VertexTable is unhashable (it is mutable while interning)")
