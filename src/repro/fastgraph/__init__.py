"""Array-backed fast graph core (the ``fast`` backend).

The reference :class:`~repro.graph.social_network.SocialNetwork` stores its
adjacency as a dict-of-dicts keyed by arbitrary hashable vertex ids.  That is
the right representation for construction and mutation, but every hot path of
the offline phase — triangle counting, truss peeling, hop-ball BFS, MIA
max-product propagation — pays for it with per-step hashing of vertex ids,
tuple/frozenset key allocation, and pointer-chasing dict iteration.

This package provides a compact, immutable mirror of a social network:

* :class:`~repro.fastgraph.vertex_table.VertexTable` interns arbitrary
  hashable vertex ids into dense integers ``0..n-1``;
* :class:`~repro.fastgraph.csr.CSRGraph` stores the adjacency in CSR form
  (``indptr``/``indices``) with parallel per-direction probability arrays and
  per-arc undirected edge ids, using :mod:`array` from the stdlib (an
  optional numpy bridge is auto-detected at import — see
  :data:`~repro.fastgraph.csr.NUMPY_AVAILABLE`);
* :mod:`~repro.fastgraph.kernels` implements the scan-heavy computations
  over dense ints: stamp-based triangle/support counting, bucket-peel truss
  decomposition, BFS hop balls, and binary-heap max-product Dijkstra;
* :mod:`~repro.fastgraph.vectorised` re-implements those kernels as numpy
  array programs over the zero-copy CSR views — bit-identical outputs,
  selected through the ``kernel_tier`` knob (``"auto"`` uses it whenever
  numpy is importable; :func:`~repro.fastgraph.kernels.make_workspace`
  builds the right workspace either way);
* :mod:`~repro.fastgraph.offline` re-implements the offline pre-computation
  (Algorithm 2) on top of those kernels, producing a
  :class:`~repro.index.precompute.PrecomputedData` that is **bit-for-bit
  identical** to the reference backend's (the cross-backend equivalence
  suite in ``tests/fastgraph`` enforces this);
* :class:`~repro.fastgraph.delta.DeltaCSR` makes the snapshot *mutable*: a
  tombstone/spill overlay implementing the same
  :class:`~repro.graph.core.GraphCore` protocol, patched in place by the
  dynamic layer and compacted back to a pure :class:`CSRGraph` once its
  dirt ratio crosses ``EngineConfig.compact_dirt_ratio``.

Entry points: ``SocialNetwork.freeze()`` returns the :class:`CSRGraph`
mirror, and ``EngineConfig(backend="fast")`` routes the engine's offline
build, online scoring and dynamic maintenance through it.  See
``docs/backends.md`` for when each backend applies.
"""

from repro.fastgraph.csr import NUMPY_AVAILABLE, NUMPY_VERSION, CSRGraph, freeze
from repro.fastgraph.delta import DeltaCSR, overlay_from_edit_log
from repro.fastgraph.kernels import (
    KERNEL_TIERS,
    bfs_hop_ball,
    community_propagation_csr,
    edge_supports_csr,
    make_workspace,
    resolve_kernel_tier,
    truss_decomposition_csr,
)
from repro.fastgraph.offline import fast_precompute, fast_refresh_records
from repro.fastgraph.vertex_table import VertexTable

__all__ = [
    "CSRGraph",
    "DeltaCSR",
    "KERNEL_TIERS",
    "NUMPY_AVAILABLE",
    "NUMPY_VERSION",
    "VertexTable",
    "bfs_hop_ball",
    "community_propagation_csr",
    "edge_supports_csr",
    "fast_precompute",
    "fast_refresh_records",
    "freeze",
    "make_workspace",
    "overlay_from_edit_log",
    "resolve_kernel_tier",
    "truss_decomposition_csr",
]
