"""Vectorised kernel tier: numpy array programs over the zero-copy CSR views.

:class:`VectorWorkspace` subclasses the stdlib
:class:`~repro.fastgraph.kernels.CSRWorkspace` and re-implements the hot
kernels as numpy programs over ``CSRGraph.as_numpy()`` — the same buffers
(store-backed engines hand mmap-backed memoryviews straight to
``np.frombuffer``, so the vector kernels read directly off the arena):

* :func:`edge_supports_vector` — triangle counting by oriented wedge
  enumeration + sorted-key arc lookup (one ``bincount`` scatter-add);
* :func:`truss_peel_vector` — wave-batched bucket peel: every edge at the
  current support level peels as one wave, with batched triangle
  enumeration and clamped batch decrements (dispatched adaptively — the
  waves only amortise on large, triangle-dense graphs, see
  :data:`VECTOR_PEEL_CUTOFF` / :data:`VECTOR_PEEL_DENSITY`);
* :meth:`VectorWorkspace.bfs_ball` — frontier-at-a-time BFS with
  ``np.unique`` dedup;
* :meth:`VectorWorkspace.nested_propagation_values` — max-product
  propagation as a frontier fixpoint (gather arcs, multiply, grouped
  scatter-max) instead of a heap;
* :meth:`VectorWorkspace.propagate` — the heap control loop of the stdlib
  kernel with the per-pop relaxation sweep vectorised for high-degree rows.

Why the outputs are *bit-identical*, not merely close:

* supports and trussness are integer graph invariants — any triangle
  enumeration order and any valid peel order produce the same ints (the
  batch decrement ``max(s, support - d)`` equals ``d`` guarded unit
  decrements ``if support > s: support -= 1``);
* a BFS ball is a set per depth; ``np.unique`` only changes the visit
  order *within* one depth, which no consumer observes (aggregations over
  the ball are OR/max/set-shaped);
* max-product labels are the maximum over stepwise-rounded path products,
  and IEEE multiplication by a probability in ``(0, 1]`` is monotone — so
  the frontier fixpoint converges to exactly the floats the truncated
  Dijkstra settles, and threshold truncation prunes the same paths
  (stepwise products are non-increasing along a path).  Sums over the
  results stay in the unique descending order of the value multiset
  (``np.cumsum`` accumulates sequentially, matching the stdlib running
  sum addition for addition).

The tier degrades, never breaks: a workspace rebound onto a
:class:`~repro.fastgraph.delta.DeltaCSR` overlay keeps vectorising while
the overlay is pristine and *falls back to the inherited stdlib kernels*
the moment a mutation lands (the compact-before-vectorise rule); engine
compaction swaps the core for a pure CSR and the next workspace build is
vectorised again.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from repro.fastgraph.csr import CSRGraph
from repro.fastgraph.kernels import CSRWorkspace

#: Rows with at least this many positive-probability arcs relax through
#: numpy inside :meth:`VectorWorkspace.propagate`; smaller rows keep the
#: tuple sweep (per-call numpy overhead beats the win below this size).
DENSE_ROW_CUTOFF = 64

#: Minimum graph size (vertices) for the frontier-at-a-time vector BFS in
#: :meth:`VectorWorkspace.bfs_ball`; below it the stdlib FIFO wins (the
#: fixed per-call cost of ~10 numpy ops beats the loop on small balls).
#: The offline build never pays this trade-off — it batches BFS across
#: centres (:func:`ball_aggregates_batch`) regardless of graph size.
VECTOR_BFS_CUTOFF = 4096

#: Per-depth dispatch inside the vector BFS: frontiers smaller than this
#: expand through a scalar scan of the cached adjacency lists instead of
#: the gather/unique pipeline.  Graph size is a poor proxy for ball size —
#: a 12k-vertex heavy-tailed graph still has mostly tiny 2-hop balls, and
#: a tiny frontier loses to the pipeline's fixed cost every time.
VECTOR_BFS_FRONTIER_CUTOFF = 64

#: Minimum ball size (vertices) for the vector fixpoint in
#: :meth:`VectorWorkspace.nested_propagation_values`; smaller balls run
#: the inherited heap kernel.  Same trade-off, same batched-offline
#: escape hatch.
VECTOR_NESTED_CUTOFF = 512

#: Minimum edge count for the wave-batched peel in
#: :meth:`VectorWorkspace.truss_peel`.  Each wave pays a handful of
#: full-array passes, which only amortises when waves carry many edges.
VECTOR_PEEL_CUTOFF = 16384

#: Minimum mean support (triangles per edge) for the wave-batched peel.
#: Triangle-sparse graphs (heavy-tailed degree profiles sit well below one
#: triangle per edge) peel in many near-empty waves, so the stdlib bucket
#: peel wins there at any size.
VECTOR_PEEL_DENSITY = 1.0

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=np.float64)


def _concat_ranges(starts, lengths):
    """Concatenate ``range(starts[i], starts[i] + lengths[i])`` for all ``i``."""
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY_INT
    offsets = np.arange(total, dtype=np.int64)
    offsets -= np.repeat(np.cumsum(lengths) - lengths, lengths)
    return np.repeat(starts, lengths) + offsets


# --------------------------------------------------------------------------- #
# whole-graph kernels
# --------------------------------------------------------------------------- #
def edge_supports_vector(csr: CSRGraph, views: dict | None = None):
    """``sup(e)`` per undirected edge id of ``csr`` as an int64 ndarray.

    Orient every edge from its lower- to its higher- ``(degree, id)``
    endpoint (the classic wedge-count bound), enumerate all oriented
    2-paths ``u -> v -> w``, and close each against the sorted oriented
    arc keys: every triangle is found exactly once (its vertices are
    totally ordered by the orientation), then scatter-added into the
    supports of all three edges with one ``bincount``.  Identical ints to
    :func:`~repro.fastgraph.kernels.edge_supports_csr`.
    """
    views = views or csr.as_numpy()
    indptr = views["indptr"]
    heads = views["indices"]
    arc_edge = views["arc_edge"]
    n = csr.num_vertices
    m = csr.num_edges
    if m == 0 or n == 0:
        return np.zeros(m, dtype=np.int64)

    degree = np.diff(indptr)
    orient_rank = degree * n + np.arange(n, dtype=np.int64)
    tails = np.repeat(np.arange(n, dtype=np.int64), degree)
    forward = orient_rank[tails] < orient_rank[heads]
    f_tail = tails[forward]
    f_head = heads[forward]
    f_edge = arc_edge[forward]

    # Forward-arc CSR, sorted by (tail, head); keys are unique (simple graph).
    key = f_tail * n + f_head
    by_key = np.argsort(key)
    f_tail = f_tail[by_key]
    f_head = f_head[by_key]
    f_edge = f_edge[by_key]
    f_key = key[by_key]
    f_degree = np.bincount(f_tail, minlength=n)
    f_indptr = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(f_degree)))

    # All oriented 2-paths u -> v -> w: pair each forward arc with the
    # forward arcs of its head.
    second_counts = f_degree[f_head]
    first = np.repeat(np.arange(len(f_tail), dtype=np.int64), second_counts)
    second = _concat_ranges(f_indptr[f_head], second_counts)
    if first.size == 0:
        return np.zeros(m, dtype=np.int64)
    close_key = f_tail[first] * n + f_head[second]
    position = np.searchsorted(f_key, close_key)
    clipped = np.minimum(position, len(f_key) - 1)
    closed = f_key[clipped] == close_key
    triangle_edges = np.concatenate(
        (f_edge[first[closed]], f_edge[second[closed]], f_edge[clipped[closed]])
    )
    return np.bincount(triangle_edges, minlength=m).astype(np.int64)


def truss_peel_vector(csr: CSRGraph, supports=None, views: dict | None = None):
    """Wave-batched truss peel; int64 ``(edge_truss, vertex_truss)`` ndarrays.

    Peels every alive edge at the current support level ``s`` as one wave
    (cascading sub-waves as decrements pull more edges down to ``s``),
    enumerating the wave's triangles in batch and applying the decrements
    as ``max(s, support - d)`` — which equals the stdlib kernel's ``d``
    guarded unit decrements, because each guarded decrement lowers the
    support by one until it floors at ``s``.  A triangle containing two
    wave edges is discovered from both; only the smaller wave edge id
    credits the decrement of the third edge, mirroring the sequential peel
    where the first of the pair to pop decrements it and the second no
    longer sees the triangle.  Trussness is a graph invariant, so the
    batched order produces the same ints as the sequential peel.
    """
    views = views or csr.as_numpy()
    indptr = views["indptr"]
    heads = views["indices"]
    arc_edge = views["arc_edge"]
    edge_u = views["edge_u"]
    edge_v = views["edge_v"]
    n = csr.num_vertices
    m = csr.num_edges
    if supports is None:
        supports = edge_supports_vector(csr, views)
    current = np.asarray(supports, dtype=np.int64).copy()
    alive = np.ones(m, dtype=bool)
    in_wave = np.zeros(m, dtype=bool)
    edge_truss = np.zeros(m, dtype=np.int64)

    k_floor = 2
    remaining = m
    level = 0
    while remaining:
        wave = np.nonzero(alive & (current == level))[0]
        if wave.size == 0:
            level += 1
            continue
        while wave.size:
            k_floor = max(k_floor, level + 2)
            edge_truss[wave] = k_floor
            in_wave[wave] = True

            # Live arcs of both endpoints of every wave edge, keyed by
            # (wave position, neighbour) so one sorted lookup matches the
            # common neighbours w — i.e. the wave edge's live triangles.
            u_side = edge_u[wave]
            v_side = edge_v[wave]
            positions = np.arange(wave.size, dtype=np.int64)

            su = indptr[u_side]
            lu = indptr[u_side + 1] - su
            iu = _concat_ranges(su, lu)
            ou = np.repeat(positions, lu)
            eu = arc_edge[iu]
            keep = alive[eu]
            hu, eu, ou = heads[iu][keep], eu[keep], ou[keep]

            sv = indptr[v_side]
            lv = indptr[v_side + 1] - sv
            iv = _concat_ranges(sv, lv)
            ov = np.repeat(positions, lv)
            ev = arc_edge[iv]
            keep = alive[ev]
            hv, ev, ov = heads[iv][keep], ev[keep], ov[keep]

            targets = _EMPTY_INT
            if hu.size and hv.size:
                key_u = ou * n + hu
                by_key = np.argsort(key_u)
                key_u = key_u[by_key]
                eu_sorted = eu[by_key]
                key_v = ov * n + hv
                position = np.searchsorted(key_u, key_v)
                clipped = np.minimum(position, len(key_u) - 1)
                match = key_u[clipped] == key_v
                e1 = eu_sorted[clipped[match]]  # edge (u, w)
                e2 = ev[match]                  # edge (v, w)
                we = wave[ov[match]]            # the peeling wave edge

                w1 = in_wave[e1]
                w2 = in_wave[e2]
                both_live = ~w1 & ~w2
                # Two wave edges share the triangle: exactly one of the
                # pair (the smaller id) credits the third edge's decrement.
                credit_e2 = w1 & ~w2 & (we < e1)
                credit_e1 = ~w1 & w2 & (we < e2)
                targets = np.concatenate(
                    (e1[both_live], e2[both_live], e2[credit_e2], e1[credit_e1])
                )

            alive[wave] = False
            in_wave[wave] = False
            remaining -= wave.size
            if targets.size:
                touched = np.unique(targets)
                decrement = np.bincount(targets)[touched]
                current[touched] = np.maximum(level, current[touched] - decrement)
                wave = touched[current[touched] == level]
            else:
                wave = _EMPTY_INT

        level += 1

    vertex_truss = np.full(n, 2, dtype=np.int64)
    np.maximum.at(vertex_truss, edge_u, edge_truss)
    np.maximum.at(vertex_truss, edge_v, edge_truss)
    return edge_truss, vertex_truss


# --------------------------------------------------------------------------- #
# the vectorised workspace
# --------------------------------------------------------------------------- #
class VectorWorkspace(CSRWorkspace):
    """A :class:`~repro.fastgraph.kernels.CSRWorkspace` on the vector tier.

    Holds the zero-copy ndarray views of the frozen core next to the
    inherited scalar structures, so every kernel can pick its fastest
    implementation and the stdlib fallback is always one flag away:
    :meth:`sync` demotes the workspace to the inherited stdlib kernels as
    soon as the core reports a mutation (dirty
    :class:`~repro.fastgraph.delta.DeltaCSR` overlays are never
    vectorised — the compact-before-vectorise rule).

    The per-vertex scratch stays in the inherited stdlib containers
    (``dist`` / ``_best`` are plain lists, ``_popped`` a bytearray):
    per-element Python access on an ndarray is ~3x slower than on a list,
    and the scalar control loops — the hybrid BFS shells, the propagate
    heap sweep, every stdlib fallback and the offline per-centre
    aggregation reading :attr:`dist` — dominate exactly when balls are
    small.  The vector pipelines keep *ndarray mirrors* (``_dist_np`` /
    ``_best_np``) instead and every write lands in both, so the gathers
    always see current state; ``_popped_np`` really is a zero-copy view
    (bytearray scalar access is already cheap).
    """

    __slots__ = (
        "_vector_ok",
        "_views",
        "_np_indptr", "_np_indices",
        "_arc_indptr", "_arc_heads", "_arc_probs",
        "_theta_arcs",
        "_dense_rows",
        "_dist_np", "_dist_np_dirty",
        "_best_np", "_popped_np",
    )

    #: The offline kernels read the numpy views, not the per-vertex entry
    #: tuples — defer those to the first stdlib fallback that sweeps them.
    _defer_entries = True

    def __init__(self, core) -> None:
        if not isinstance(core, CSRGraph):
            raise TypeError(
                "VectorWorkspace needs a frozen CSRGraph core, got "
                f"{type(core).__name__} (use make_workspace, which falls "
                "back to the stdlib tier for mutable cores)"
            )
        super().__init__(core)
        self._views = views = core.as_numpy()
        self._np_indptr = views["indptr"]
        self._np_indices = views["indices"]

        # Positive-probability arc CSR for the propagation kernels (arcs
        # with p == 0 can never contribute, exactly as the stdlib tier
        # drops them from ranked_arcs).
        prob_out = views["prob_out"]
        positive = prob_out > 0.0
        tails = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self._np_indptr)
        )
        kept = np.bincount(tails[positive], minlength=self.n)
        self._arc_indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(kept))
        )
        self._arc_heads = self._np_indices[positive].copy()
        self._arc_probs = prob_out[positive].copy()
        self._theta_arcs = None

        # ndarray mirror of the inherited `dist` list for the BFS gather
        # pipeline; `_dist_np_dirty` tracks which entries it actually holds
        # (empty while balls stay small enough to never vectorise a shell).
        self._dist_np = np.full(self.n, -1, dtype=np.int64)
        self._dist_np_dirty = _EMPTY_INT

        # ndarray mirror of the inherited `_best` list (dense relaxations,
        # nested fixpoint) + a genuine zero-copy view of the `_popped`
        # bytearray.  Every kernel zeroes what it touched on exit, so both
        # mirrors agree (all zero) between calls.
        self._best_np = np.zeros(self.n, dtype=np.float64)
        self._popped_np = np.frombuffer(self._popped, dtype=np.uint8)

        # Descending (probability, head) rows of high-degree vertices,
        # pre-split into ndarrays for the hybrid relaxation sweep; built
        # lazily with the entry tuples on the first propagate call.
        self._dense_rows = None
        self._vector_ok = True

    def _dense_rows_map(self) -> dict:
        """``{vertex: (probs desc, heads, probe)}`` for high-degree rows.

        ``probe`` is the cutoff-th largest arc probability: products along
        the descending row are monotone non-increasing, so a relaxation at
        probability ``q`` clears at least :data:`DENSE_ROW_CUTOFF`
        candidates — enough to amortise the array sweep — exactly when
        ``q * probe >= threshold`` (an O(1) exact test, same IEEE multiply
        the sweep performs).  A cutoff of zero (test rigs force the dense
        path) makes the probe ``inf``, which passes every threshold.
        """
        rows = self._dense_rows
        if rows is None:
            self.ensure_entries()
            cutoff = DENSE_ROW_CUTOFF
            rows = {}
            for vertex in range(self.n):
                ranked = self.ranked_arcs[vertex]
                if len(ranked) >= cutoff:
                    rows[vertex] = (
                        np.array([p for p, _ in ranked], dtype=np.float64),
                        np.array([h for _, h in ranked], dtype=np.int64),
                        ranked[cutoff - 1][0] if cutoff > 0 else float("inf"),
                    )
            self._dense_rows = rows
        return rows

    @property
    def vector_ready(self) -> bool:
        """Whether the vector kernels are currently active (not demoted)."""
        return self._vector_ok

    # ------------------------------------------------------------------ #
    # fallback management
    # ------------------------------------------------------------------ #
    def _demote(self) -> None:
        """Drop to the inherited stdlib kernels (dirty-overlay fallback).

        The per-vertex scratch is already in the growable stdlib containers
        ``sync`` appends to; this only releases the ndarray mirrors and
        views — including the ``_popped`` view, which would dangle once the
        bytearray reallocates.
        """
        self.ensure_entries()  # the stdlib kernels sweep the entry tuples
        self._vector_ok = False
        if not isinstance(self.order, list):
            self.order = self.order.tolist()
        self._views = None
        self._np_indptr = self._np_indices = None
        self._arc_indptr = self._arc_heads = self._arc_probs = None
        self._theta_arcs = None
        self._dense_rows = None
        self._dist_np = self._dist_np_dirty = None
        self._best_np = self._popped_np = None

    def sync(self) -> int:
        log = getattr(self.core, "mutation_log", ())
        if self._vector_ok and len(log) > self._log_offset:
            self._demote()
        return super().sync()

    # ------------------------------------------------------------------ #
    # whole-graph kernels
    # ------------------------------------------------------------------ #
    def edge_supports(self):
        if not self._vector_ok:
            return super().edge_supports()
        return edge_supports_vector(self.core, self._views)

    def truss_peel(self, supports=None):
        if not self._vector_ok:
            return super().truss_peel(supports)
        if supports is None:
            supports = edge_supports_vector(self.core, self._views)
        supports = np.asarray(supports, dtype=np.int64)
        # Adaptive dispatch: the wave peel needs big, triangle-dense waves
        # to amortise its per-wave array passes (see the cutoff notes).
        if (
            supports.size < VECTOR_PEEL_CUTOFF
            or int(supports.sum()) < VECTOR_PEEL_DENSITY * supports.size
        ):
            return super().truss_peel(supports.tolist())
        return truss_peel_vector(self.core, supports, self._views)

    def _thresholded_arcs(self, threshold: float) -> tuple:
        """The positive-arc CSR restricted to arcs with ``p >= threshold``.

        Labels never exceed 1, so a product through an arc with
        ``p < threshold`` is below the threshold no matter the label —
        dropping those arcs up front changes no relaxation outcome.  The
        result is cached for the (single) threshold the offline pass uses.

        The fourth element is the per-row maximum kept probability (0.0 for
        empty rows); the batched fixpoint uses it to discard frontier keys
        whose label cannot reach the threshold through any arc.
        """
        cached = self._theta_arcs
        if cached is not None and cached[0] == threshold:
            return cached[1]
        keep = self._arc_probs >= threshold
        tails = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self._arc_indptr)
        )
        kept_tails = tails[keep]
        kept_probs = self._arc_probs[keep]
        counts = np.bincount(kept_tails, minlength=self.n)
        row_max = np.zeros(self.n, dtype=np.float64)
        np.maximum.at(row_max, kept_tails, kept_probs)
        filtered = (
            np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts))),
            self._arc_heads[keep],
            kept_probs,
            row_max,
        )
        self._theta_arcs = (threshold, filtered)
        return filtered

    # ------------------------------------------------------------------ #
    # per-centre kernels
    # ------------------------------------------------------------------ #
    def bfs_ball(self, source: int, max_depth: int):
        """Frontier-at-a-time BFS; same ball, same per-depth cuts.

        The visit order within one depth is ascending-int (``np.unique``)
        instead of the stdlib FIFO discovery order — a reordering inside
        one shell, which no consumer observes (per-shell aggregation is
        OR/max/set-shaped, and propagation seeding is per-shell too).

        Small graphs (below :data:`VECTOR_BFS_CUTOFF` vertices) keep the
        inherited FIFO kernel — identical output, and faster when balls
        are a few dozen vertices.  On large graphs the dispatch is
        per-*depth*: a frontier below :data:`VECTOR_BFS_FRONTIER_CUTOFF`
        expands through a plain scan of the cached adjacency lists (the
        fixed cost of the array pipeline beats it there), so tiny balls on
        huge graphs never pay numpy overhead while hub balls still
        vectorise the shells that matter.
        """
        if not self._vector_ok or self.n < VECTOR_BFS_CUTOFF:
            self.ensure_entries()
            return super().bfs_ball(source, max_depth)
        dist = self.dist
        dist_np = self._dist_np
        dirty = self._dist_np_dirty
        if len(dirty):
            dist_np[dirty] = -1
        previous = self.order
        if not isinstance(previous, list):
            previous = previous.tolist()
        for vertex in previous:
            dist[vertex] = -1
        indptr = self._np_indptr
        heads = self._np_indices
        indptr_list, indices_list, _ = self.csr_lists()
        source = int(source)
        dist[source] = 0
        order = [source]
        frontier = [source]  # scalar shells stay plain int lists
        frontier_np = None
        np_active = False  # mirror untouched until the first vector shell
        depth = 0
        while depth < max_depth and frontier:
            depth += 1
            if len(frontier) < VECTOR_BFS_FRONTIER_CUTOFF:
                shell: list = []
                for vertex in frontier:
                    for arc in range(indptr_list[vertex], indptr_list[vertex + 1]):
                        neighbour = indices_list[arc]
                        if dist[neighbour] < 0:
                            dist[neighbour] = depth
                            shell.append(neighbour)
                frontier = shell
                frontier_np = None
                if np_active and shell:
                    dist_np[np.asarray(shell, dtype=np.int64)] = depth
            else:
                if not np_active:
                    # First vector shell: bring the mirror up to date with
                    # everything the scalar shells discovered so far.
                    dist_np[np.asarray(order, dtype=np.int64)] = np.asarray(
                        [dist[vertex] for vertex in order], dtype=np.int64
                    )
                    np_active = True
                if frontier_np is None:
                    frontier_np = np.asarray(frontier, dtype=np.int64)
                starts = indptr[frontier_np]
                lengths = indptr[frontier_np + 1] - starts
                neighbours = heads[_concat_ranges(starts, lengths)]
                neighbours = neighbours[dist_np[neighbours] < 0]
                if neighbours.size == 0:
                    break
                frontier_np = np.unique(neighbours)
                dist_np[frontier_np] = depth
                frontier = frontier_np.tolist()
                for vertex in frontier:
                    dist[vertex] = depth
            order.extend(frontier)
        self.order = order
        self._dist_np_dirty = (
            np.asarray(order, dtype=np.int64) if np_active else _EMPTY_INT
        )
        return order

    def propagate(self, seeds, threshold: float) -> list:
        """The stdlib heap loop with vectorised high-degree relaxations.

        Control flow, guards and push contents are identical to the
        inherited kernel — for rows of at least :data:`DENSE_ROW_CUTOFF`
        positive arcs the descending sweep runs as one numpy gather /
        multiply / threshold-cut / compare instead of a tuple loop.  The
        pop sequence only depends on the pushed (probability, vertex)
        pairs, so the result list is element-for-element identical.
        """
        if not self._vector_ok:
            return super().propagate(seeds, threshold)
        dense_rows = self._dense_rows_map()  # also materialises ranked_arcs
        best = self._best
        best_np = self._best_np
        popped = self._popped
        popped_np = self._popped_np
        ranked_arcs = self.ranked_arcs
        seeds = list(seeds)
        touched = list(seeds)
        result = []
        heap: list = []
        for seed in seeds:
            best[seed] = 1.0
            best_np[seed] = 1.0
            popped[seed] = 1
            result.append((seed, 1.0))

        def dense_relax(row, probability: float) -> None:
            row_probs, row_heads, _ = row
            products = probability * row_probs  # descending
            cut = int(np.searchsorted(-products, -threshold, side="right"))
            if cut == 0:
                return
            candidates = row_heads[:cut]
            products = products[:cut]
            keep = (popped_np[candidates] == 0) & (products > best_np[candidates])
            if not keep.any():
                return
            candidates = candidates[keep]
            products = products[keep]
            fresh = candidates[best_np[candidates] == 0.0]
            if fresh.size:
                touched.extend(fresh.tolist())
            best_np[candidates] = products
            for next_probability, neighbour in zip(
                products.tolist(), candidates.tolist()
            ):
                best[neighbour] = next_probability
                heappush(heap, (-next_probability, neighbour))

        # The scalar sweep stays inline in both loops (a per-pop function
        # call costs more than a typical small relaxation); the dense sweep
        # only runs when the row's probe clears the threshold, i.e. when at
        # least DENSE_ROW_CUTOFF candidates survive the cut and the numpy
        # pass amortises its dispatch.
        for seed in seeds:
            row = dense_rows.get(seed)
            if row is not None and row[2] >= threshold:
                dense_relax(row, 1.0)
                continue
            for edge_probability, neighbour in ranked_arcs[seed]:
                next_probability = 1.0 * edge_probability
                if next_probability < threshold:
                    break
                if popped[neighbour] or next_probability <= best[neighbour]:
                    continue
                if best[neighbour] == 0.0:
                    touched.append(neighbour)
                best[neighbour] = next_probability
                best_np[neighbour] = next_probability
                heappush(heap, (-next_probability, neighbour))
        while heap:
            negative_probability, vertex = heappop(heap)
            if popped[vertex]:
                continue
            popped[vertex] = 1
            probability = -negative_probability
            result.append((vertex, probability))
            row = dense_rows.get(vertex)
            if row is not None and probability * row[2] >= threshold:
                dense_relax(row, probability)
                continue
            for edge_probability, neighbour in ranked_arcs[vertex]:
                next_probability = probability * edge_probability
                if next_probability < threshold:
                    break
                if popped[neighbour] or next_probability <= best[neighbour]:
                    continue
                if best[neighbour] == 0.0:
                    touched.append(neighbour)
                best[neighbour] = next_probability
                best_np[neighbour] = next_probability
                heappush(heap, (-next_probability, neighbour))
        for vertex in touched:
            best[vertex] = 0.0
            popped[vertex] = 0
        if touched:
            best_np[np.asarray(touched, dtype=np.int64)] = 0.0
        return result

    def nested_propagation_values(self, order, cuts, threshold: float) -> list:
        if not self._vector_ok or len(order) < VECTOR_NESTED_CUTOFF:
            self.ensure_entries()
            return super().nested_propagation_values(order, cuts, threshold)
        arrays = self.nested_propagation_arrays(
            np.asarray(order, dtype=np.int64), cuts, threshold
        )
        return [values.tolist() for values in arrays]

    def nested_propagation_arrays(self, order, cuts, threshold: float) -> list:
        """Vector core of :meth:`nested_propagation_values`.

        Returns one *descending* float64 ndarray per cut.  Labels are
        computed as a frontier fixpoint: gather the positive arcs of every
        improved vertex, multiply by its label, drop products below the
        threshold or not above the target's label, keep the per-target
        maximum (grouped sort), scatter, repeat until no label improves.
        At the fixpoint every label equals the maximum stepwise-rounded
        path product from the current seed set — the exact floats the
        stdlib heap settles (see the module docstring).
        """
        best = self._best_np
        in_region = self._popped_np
        arc_indptr = self._arc_indptr
        arc_heads = self._arc_heads
        arc_probs = self._arc_probs
        settled = _EMPTY_INT
        out = []
        previous = 0
        for cut in cuts:
            cut = int(cut)
            shell = order[previous:cut]
            previous = cut
            seeds = shell[best[shell] < 1.0]
            if seeds.size:
                fresh = seeds[in_region[seeds] == 0]
                if fresh.size:
                    in_region[fresh] = 1
                    settled = np.concatenate((settled, fresh))
                best[seeds] = 1.0
            frontier = seeds
            while frontier.size:
                starts = arc_indptr[frontier]
                lengths = arc_indptr[frontier + 1] - starts
                arc_index = _concat_ranges(starts, lengths)
                if arc_index.size == 0:
                    break
                targets = arc_heads[arc_index]
                products = np.repeat(best[frontier], lengths) * arc_probs[arc_index]
                keep = products >= threshold
                targets = targets[keep]
                products = products[keep]
                keep = products > best[targets]
                targets = targets[keep]
                products = products[keep]
                if targets.size == 0:
                    break
                # Per-target maximum: sort by (target, product), take the
                # last entry of each target run.
                grouping = np.lexsort((products, targets))
                targets = targets[grouping]
                products = products[grouping]
                last = np.nonzero(np.append(targets[1:] != targets[:-1], True))[0]
                targets = targets[last]
                products = products[last]
                fresh = targets[in_region[targets] == 0]
                if fresh.size:
                    in_region[fresh] = 1
                    settled = np.concatenate((settled, fresh))
                best[targets] = products
                frontier = targets
            if settled.size:
                out.append(np.sort(best[settled])[::-1])
            else:
                out.append(_EMPTY_FLOAT)
        if settled.size:
            best[settled] = 0.0
            in_region[settled] = 0
        return out


def ball_aggregates_batch(
    workspace: VectorWorkspace,
    centres,
    max_radius: int,
    thresholds,
    num_bits: int,
    keyword_bits,
    supports,
):
    """Algorithm 2 bodies for a *block* of centres, as one array program.

    Returns a list of ``{radius: RadiusAggregates}`` dicts aligned with
    ``centres``.  Per-centre kernels cost too much numpy dispatch when
    balls are a few dozen vertices, so the offline pass batches across
    centres instead: centre ``b`` works on flat keys ``b * n + vertex``,
    which keeps every slot's state disjoint while BFS, shell scans and the
    propagation fixpoint each run as a handful of whole-block operations.
    Frontier compaction and per-target maxima use scatter + rescan
    (``np.maximum.at`` and flat masks) rather than sorting — an order of
    magnitude cheaper at these sizes.

    Per slot, the computation is exactly the stdlib ``_ball_aggregates``:
    slots never interact (keys are partitioned by ``b``), the per-slot
    fixpoint is the one :meth:`VectorWorkspace.nested_propagation_arrays`
    documents, per-shell keyword ORs accumulate the same bit masks, and
    per-threshold score bounds are sequential ``np.cumsum`` prefix sums
    over the unique descending ordering of each slot's value multiset — so
    every output int and float matches the scalar pass bit for bit.
    """
    from repro.index.precompute import RadiusAggregates
    from repro.keywords.bitvector import BitVector

    n = workspace.n
    num_slots = len(centres)
    num_keys = num_slots * n
    indptr = workspace._np_indptr
    heads = workspace._np_indices
    arc_edge = workspace._views["arc_edge"]
    threshold = thresholds[0]  # thresholds are ascending; truncate at min
    # Arcs with p < theta can never pass the product filter (labels are
    # <= 1 and products only shrink), so drop them from the relaxation
    # CSR once for the whole block.
    arc_indptr, arc_heads, arc_probs, row_max = workspace._thresholded_arcs(
        threshold
    )

    # ---- batched BFS: shells[d] holds the keys first reached at depth d.
    # Frontier dedup is a scatter into ``dist`` plus a flat rescan; the
    # rescan returns keys ascending, i.e. slot-major per-depth shells.
    centre_keys = (
        np.arange(num_slots, dtype=np.int64) * n
        + np.asarray(centres, dtype=np.int64)
    )
    dist = np.full(num_keys, -1, dtype=np.int8)
    dist[centre_keys] = 0
    shells = [centre_keys]
    frontier = centre_keys
    for depth in range(1, max_radius + 1):
        vertex = frontier % n
        base = frontier - vertex
        starts = indptr[vertex]
        lengths = indptr[vertex + 1] - starts
        neighbour_keys = np.repeat(base, lengths) + heads[_concat_ranges(starts, lengths)]
        neighbour_keys = neighbour_keys[dist[neighbour_keys] < 0]
        if neighbour_keys.size == 0:
            shells.extend([_EMPTY_INT] * (max_radius - depth + 1))
            break
        dist[neighbour_keys] = depth
        frontier = np.flatnonzero(dist == depth)
        shells.append(frontier)

    # ---- shell-incremental keyword OR and support upper bound (batched
    # per-slot maxima).  Bit vectors that fit an int64 OR-scatter in one
    # pass; wider ones accumulate in Python ints.
    bound_accumulator = np.zeros(num_slots, dtype=np.int64)
    bits_per_radius = []
    bound_per_radius = []
    narrow_bits = num_bits < 64
    if narrow_bits:
        keyword_bits_np = np.asarray(keyword_bits, dtype=np.int64)
        bits_accumulator = np.zeros(num_slots, dtype=np.int64)
    else:
        bits_accumulator = [0] * num_slots
    for radius in range(1, max_radius + 1):
        shell = shells[radius]
        if radius == 1:  # the centre itself folds in at radius 1
            shell = np.concatenate((shells[0], shell))
        if shell.size:
            vertex = shell % n
            base = shell - vertex
            slot = base // n
            if narrow_bits:
                np.bitwise_or.at(bits_accumulator, slot, keyword_bits_np[vertex])
            else:
                for s, member in zip(slot.tolist(), vertex.tolist()):
                    bits_accumulator[s] |= keyword_bits[member]
            # Edge (m, w) belongs to ball_r exactly when both hop
            # distances are <= r; scanning each new member's arcs against
            # already-distanced endpoints sees every ball edge at the
            # first radius that contains it.
            starts = indptr[vertex]
            lengths = indptr[vertex + 1] - starts
            arc_index = _concat_ranges(starts, lengths)
            arc_base = np.repeat(base, lengths)
            endpoint_depth = dist[arc_base + heads[arc_index]]
            inside = (endpoint_depth >= 0) & (endpoint_depth <= radius)
            if inside.any():
                np.maximum.at(
                    bound_accumulator,
                    np.repeat(slot, lengths)[inside],
                    supports[arc_edge[arc_index[inside]]],
                )
        if narrow_bits:
            bits_per_radius.append(bits_accumulator.tolist())
        else:
            bits_per_radius.append(list(bits_accumulator))
        bound_per_radius.append(bound_accumulator.copy())

    # ---- chained per-radius propagation: one whole-block fixpoint per
    # radius, labels carried into the next (the incremental-seeding scheme
    # of the scalar kernel, run for every slot at once).
    best = np.zeros(num_keys, dtype=np.float64)
    in_region = np.zeros(num_keys, dtype=bool)
    improved = np.zeros(num_keys, dtype=bool)
    values_per_radius = []
    for radius in range(1, max_radius + 1):
        seeds = shells[radius]
        if radius == 1:
            seeds = np.concatenate((shells[0], seeds))
        seeds = seeds[best[seeds] < 1.0]
        in_region[seeds] = True
        best[seeds] = 1.0
        frontier = seeds
        seed_round = True
        while frontier.size:
            vertex = frontier % n
            if seed_round:
                # Every frontier label is exactly 1.0: products are the
                # arc probabilities themselves (multiplying by 1.0 is
                # exact), all >= threshold by CSR construction.
                seed_round = False
                starts = arc_indptr[vertex]
                lengths = arc_indptr[vertex + 1] - starts
                arc_index = _concat_ranges(starts, lengths)
                if arc_index.size == 0:
                    break
                targets = (
                    np.repeat(frontier - vertex, lengths) + arc_heads[arc_index]
                )
                products = arc_probs[arc_index]
                keep = products > best[targets]
            else:
                # A key whose label cannot clear the threshold through even
                # its best arc emits nothing: labels are <= 1 and IEEE
                # multiplication is monotone, so ``label * p <= label *
                # row_max < threshold`` for every arc.  Dropping those keys
                # (and then sub-threshold products, before the expensive
                # target gather) removes the bulk of the confirmation
                # rounds' work without changing a single relaxation.
                labels = best[frontier]
                viable = labels * row_max[vertex] >= threshold
                frontier = frontier[viable]
                if frontier.size == 0:
                    break
                vertex = vertex[viable]
                labels = labels[viable]
                starts = arc_indptr[vertex]
                lengths = arc_indptr[vertex + 1] - starts
                arc_index = _concat_ranges(starts, lengths)
                if arc_index.size == 0:
                    break
                products = np.repeat(labels, lengths) * arc_probs[arc_index]
                passing = products >= threshold
                products = products[passing]
                if products.size == 0:
                    break
                targets = (
                    np.repeat(frontier - vertex, lengths) + arc_heads[arc_index]
                )[passing]
                keep = products > best[targets]
            targets = targets[keep]
            if targets.size == 0:
                break
            products = products[keep]
            # Scatter-max per target key (same floats as any per-group
            # max), then rescan the touched mask for the next frontier.
            improved[targets] = True
            np.maximum.at(best, targets, products)
            in_region[targets] = True
            frontier = np.flatnonzero(improved)
            improved[frontier] = False
        # Snapshot per-slot settled values; ``flatnonzero`` keys ascend,
        # so the block is already slot-major and each slot's multiset is
        # sorted descending in the assembly below.
        settled = np.flatnonzero(in_region)
        boundaries = np.searchsorted(
            settled, np.arange(num_slots + 1, dtype=np.int64) * n
        )
        values_per_radius.append((best[settled], boundaries))

    # ---- per-centre assembly: prefix-sum score bounds per threshold.
    thresholds_np = np.asarray(thresholds, dtype=np.float64)
    num_thresholds = len(thresholds)
    empty_sums = [0.0] * num_thresholds
    results = []
    for slot in range(num_slots):
        per_radius = {}
        for radius in range(1, max_radius + 1):
            all_values, boundaries = values_per_radius[radius - 1]
            values = all_values[boundaries[slot] : boundaries[slot + 1]]
            if values.size:
                ascending = np.sort(values)
                descending = ascending[::-1]
                running = np.cumsum(descending)
                sums = [
                    float(running[count - 1]) if count else 0.0
                    for count in (
                        values.size
                        - np.searchsorted(ascending, thresholds_np, "left")
                    ).tolist()
                ]
            else:
                sums = empty_sums
            per_radius[radius] = RadiusAggregates(
                radius=radius,
                bitvector=BitVector(bits_per_radius[radius - 1][slot], num_bits),
                support_upper_bound=int(bound_per_radius[radius - 1][slot]),
                score_bounds=tuple(zip(thresholds, sums)),
            )
        results.append(per_radius)
    return results
