"""``DeltaCSR``: a mutable overlay over a frozen :class:`CSRGraph`.

The fast backend's snapshot used to be frozen-only: any dynamic update
invalidated it and the next query paid a full ``freeze()``.  ``DeltaCSR``
makes the snapshot *mutable* without rewriting the CSR buffers:

* **deletions** tombstone the edge id (a per-edge dirty byte); tombstoned
  arcs are skipped wherever arcs are iterated;
* **insertions** go to an append-only *spill*: per-vertex overflow arc lists
  plus parallel overlay-edge arrays, with edge ids continuing past the base
  snapshot's — ids are **stable**: a base edge keeps its id until deleted,
  deleted ids are retired (never reused), re-inserting the same endpoints
  yields a fresh id;
* **new vertices** are interned into the shared
  :class:`~repro.fastgraph.vertex_table.VertexTable` and live entirely in
  the spill.

The overlay implements the same :class:`~repro.graph.core.GraphCore`
protocol as the reference :class:`~repro.graph.core.AdjacencyCore`, so the
dynamic layer and the :class:`~repro.fastgraph.kernels.CSRWorkspace` kernels
run over it unchanged.  Every mutation appends the touched vertices to
:attr:`mutation_log`, which lets workspaces re-derive only the rows that
changed (see :meth:`~repro.fastgraph.kernels.CSRWorkspace.sync`).

Dirt and compaction
-------------------
Each edit makes the overlay a little less CSR-like: tombstones waste scans,
spill arcs live outside the contiguous buffers.  :meth:`dirt_ratio` measures
that — retired tombstones plus overlay arcs relative to the live edge count —
and :meth:`compact` folds everything back into a pure :class:`CSRGraph`.
Compaction preserves the arc order a re-``freeze()`` of the equivalently
mutated reference graph would produce (dict deletion keeps relative order,
re-insertion appends — exactly tombstone + spill), so ``compact()`` is
bit-identical to ``freeze(mutated_graph)``.  The engine compacts
automatically once the ratio exceeds ``EngineConfig.compact_dirt_ratio``,
which makes the overlay's extra scan cost amortized O(1) per edit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.exceptions import GraphError
from repro.fastgraph.csr import _FLOAT, _INT, CSRGraph
from array import array

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dynamic.updates import UpdateBatch
    from repro.graph.social_network import VertexId


class DeltaCSR:
    """A :class:`CSRGraph` plus an edit overlay (see the module docstring)."""

    __slots__ = (
        "base",
        "name",
        "table",
        "_num_vertices",
        "_base_edges",
        "_dead_base",
        "_num_dead_base",
        "_extra_u",
        "_extra_v",
        "_extra_puv",
        "_extra_pvu",
        "_extra_dead",
        "_num_live_extra",
        "_spill",
        "_rows",
        "_extra_keywords",
        "_p_fwd",
        "_p_rev",
        "mutation_log",
    )

    def __init__(self, base: CSRGraph) -> None:
        self.base = base
        self.name = base.name
        self.table = base.table
        self._num_vertices = base.num_vertices
        self._base_edges = base.num_edges
        self._dead_base = bytearray(self._base_edges)
        self._num_dead_base = 0
        # Overlay edges: id = _base_edges + position (retired ids keep their slot).
        self._extra_u: list[int] = []
        self._extra_v: list[int] = []
        self._extra_puv: list[float] = []
        self._extra_pvu: list[float] = []
        self._extra_dead = bytearray()
        self._num_live_extra = 0
        #: Per-vertex overflow arcs ``(head, edge_id)`` in insertion order.
        self._spill: list[list[tuple[int, int]]] = [[] for _ in range(self._num_vertices)]
        #: Lazily-built live ``{neighbour: edge id}`` rows, then maintained.
        self._rows: list[Optional[dict[int, int]]] = [None] * self._num_vertices
        self._extra_keywords: list[frozenset] = []
        # Per-base-edge directional probabilities, indexed by edge id:
        # _p_fwd[e] is p(edge_u -> edge_v), _p_rev[e] the reverse.  One pass
        # over the arcs fills both (each edge owns exactly two arcs).
        self._p_fwd = array(_FLOAT, bytes(8 * self._base_edges))
        self._p_rev = array(_FLOAT, bytes(8 * self._base_edges))
        indptr, indices = base.indptr, base.indices
        prob_out, arc_edge, edge_u = base.prob_out, base.arc_edge, base.edge_u
        for u in range(self._num_vertices):
            for a in range(indptr[u], indptr[u + 1]):
                edge_id = arc_edge[a]
                if u == edge_u[edge_id]:
                    self._p_fwd[edge_id] = prob_out[a]
                else:
                    self._p_rev[edge_id] = prob_out[a]
        #: Vertices whose arc set changed, in mutation order (never trimmed;
        #: workspaces keep an offset into it — see ``CSRWorkspace.sync``).
        self.mutation_log: list[int] = []

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Live undirected edges (base minus tombstones plus live overlay)."""
        return self._base_edges - self._num_dead_base + self._num_live_extra

    @property
    def num_retired_edges(self) -> int:
        """Edge ids retired by deletions (base tombstones + dead overlay)."""
        return self._num_dead_base + (len(self._extra_u) - self._num_live_extra)

    @property
    def num_overlay_edges(self) -> int:
        """Overlay (spilled) edges ever inserted, live or since retired."""
        return len(self._extra_u)

    def dirt_ratio(self) -> float:
        """How far the overlay has drifted from a pure CSR.

        Retired tombstones plus overlay arcs, relative to the live edge
        count; 0.0 for a pristine snapshot.  The engine compacts once this
        exceeds ``EngineConfig.compact_dirt_ratio``.
        """
        live = self.num_edges
        if live <= 0:
            return float(self._num_dead_base + len(self._extra_u))
        return (self._num_dead_base + len(self._extra_u)) / live

    @property
    def is_dirty(self) -> bool:
        """Whether any edit has been applied since (or overlaying) the base."""
        return bool(self._num_dead_base or self._extra_u or self._num_vertices > self.base.num_vertices)

    # ------------------------------------------------------------------ #
    # GraphCore read access
    # ------------------------------------------------------------------ #
    def _edge_alive(self, edge_id: int) -> bool:
        if edge_id < self._base_edges:
            return not self._dead_base[edge_id]
        return not self._extra_dead[edge_id - self._base_edges]

    def degree(self, vertex: int) -> int:
        return len(self.neighbor_row(vertex))

    def neighbor_row(self, vertex: int) -> Mapping[int, int]:
        row = self._rows[vertex]
        if row is None:
            row = {}
            base = self.base
            if vertex < base.num_vertices:
                dead = self._dead_base
                indices, arc_edge = base.indices, base.arc_edge
                for a in range(base.indptr[vertex], base.indptr[vertex + 1]):
                    edge_id = arc_edge[a]
                    if not dead[edge_id]:
                        row[indices[a]] = edge_id
            for head, edge_id in self._spill[vertex]:
                if self._edge_alive(edge_id):
                    row[head] = edge_id
            self._rows[vertex] = row
        return row

    def arcs(self, vertex: int) -> Iterator[tuple[int, float, float, int]]:
        base = self.base
        if vertex < base.num_vertices:
            dead = self._dead_base
            indices, arc_edge = base.indices, base.arc_edge
            prob_out, prob_in = base.prob_out, base.prob_in
            for a in range(base.indptr[vertex], base.indptr[vertex + 1]):
                edge_id = arc_edge[a]
                if not dead[edge_id]:
                    yield indices[a], prob_out[a], prob_in[a], edge_id
        offset = self._base_edges
        for head, edge_id in self._spill[vertex]:
            if not self._extra_dead[edge_id - offset]:
                position = edge_id - offset
                if self._extra_u[position] == vertex:
                    yield head, self._extra_puv[position], self._extra_pvu[position], edge_id
                else:
                    yield head, self._extra_pvu[position], self._extra_puv[position], edge_id

    def probability(self, tail: int, head: int) -> float:
        edge_id = self.neighbor_row(tail)[head]
        if edge_id < self._base_edges:
            if self.base.edge_u[edge_id] == tail:
                return self._p_fwd[edge_id]
            return self._p_rev[edge_id]
        position = edge_id - self._base_edges
        if self._extra_u[position] == tail:
            return self._extra_puv[position]
        return self._extra_pvu[position]

    def live_edge_ids(self) -> Iterator[int]:
        dead = self._dead_base
        for edge_id in range(self._base_edges):
            if not dead[edge_id]:
                yield edge_id
        offset = self._base_edges
        for position in range(len(self._extra_u)):
            if not self._extra_dead[position]:
                yield offset + position

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        if edge_id < self._base_edges:
            return self.base.edge_u[edge_id], self.base.edge_v[edge_id]
        position = edge_id - self._base_edges
        return self._extra_u[position], self._extra_v[position]

    def edge_key(self, edge_id: int) -> frozenset:
        u, v = self.edge_endpoints(edge_id)
        id_of = self.table.id_of
        return frozenset((id_of(u), id_of(v)))

    def keywords_of(self, vertex: int) -> frozenset:
        base_n = self.base.num_vertices
        if vertex < base_n:
            return self.base.keywords[vertex]
        return self._extra_keywords[vertex - base_n]

    # ------------------------------------------------------------------ #
    # GraphCore edit tracking
    # ------------------------------------------------------------------ #
    def note_insert(
        self,
        u: "VertexId",
        v: "VertexId",
        p_uv: float,
        p_vu: float,
        keywords_u: frozenset = frozenset(),
        keywords_v: frozenset = frozenset(),
    ) -> int:
        for vertex, keywords in ((u, keywords_u), (v, keywords_v)):
            if vertex not in self.table:
                index = self.table.intern(vertex)
                self._spill.append([])
                self._rows.append({})
                self._extra_keywords.append(frozenset(keywords))
                self._num_vertices += 1
                self.mutation_log.append(index)
        index_of = self.table.index_of
        u_int, v_int = index_of(u), index_of(v)
        edge_id = self._base_edges + len(self._extra_u)
        self._extra_u.append(u_int)
        self._extra_v.append(v_int)
        self._extra_puv.append(p_uv)
        self._extra_pvu.append(p_vu)
        self._extra_dead.append(0)
        self._num_live_extra += 1
        self._spill[u_int].append((v_int, edge_id))
        self._spill[v_int].append((u_int, edge_id))
        for vertex, head in ((u_int, v_int), (v_int, u_int)):
            row = self._rows[vertex]
            if row is not None:
                row[head] = edge_id
        self.mutation_log.append(u_int)
        self.mutation_log.append(v_int)
        return edge_id

    def note_delete(self, u: "VertexId", v: "VertexId") -> int:
        index_of = self.table.index_of
        u_int, v_int = index_of(u), index_of(v)
        edge_id = self.neighbor_row(u_int).get(v_int)
        if edge_id is None:
            raise GraphError(
                f"cannot tombstone missing edge ({u!r}, {v!r}) in DeltaCSR overlay"
            )
        if edge_id < self._base_edges:
            self._dead_base[edge_id] = 1
            self._num_dead_base += 1
        else:
            self._extra_dead[edge_id - self._base_edges] = 1
            self._num_live_extra -= 1
        for vertex, head in ((u_int, v_int), (v_int, u_int)):
            row = self._rows[vertex]
            if row is not None:
                row.pop(head, None)
        self.mutation_log.append(u_int)
        self.mutation_log.append(v_int)
        return edge_id

    def replay(self, batch: "UpdateBatch") -> None:
        """Apply a validated edit script to the overlay alone.

        Spawn-mode serving workers use this to rebuild the parent's overlay
        from the serialized edit log: freeze the base graph, wrap it, replay.
        Probabilities are resolved exactly as
        :meth:`~repro.dynamic.updates.UpdateBatch.apply_to` resolves them.
        """
        from repro.dynamic.updates import INSERT

        for update in batch:
            if update.op == INSERT:
                p_uv, p_vu = update.resolved_probabilities()
                self.note_insert(
                    update.u, update.v, p_uv, p_vu,
                    keywords_u=update.keywords_u, keywords_v=update.keywords_v,
                )
            else:
                self.note_delete(update.u, update.v)

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def compact(self) -> CSRGraph:
        """Fold the overlay back into a pure :class:`CSRGraph`.

        The result is bit-identical — buffers included — to freezing the
        equivalently mutated reference graph: per-vertex arc order is the
        base order minus tombstones plus spill in insertion order (matching
        dict-deletion/-append semantics), and edge ids are renumbered in the
        same first-encounter scan ``freeze()`` uses.  Edge ids therefore
        change across a compaction; holders of per-id state must re-bind
        (the engine re-binds its truss state and workspaces).
        """
        n = self._num_vertices
        indptr = array(_INT, [0] * (n + 1))
        indices_list: list[int] = []
        prob_out_list: list[float] = []
        prob_in_list: list[float] = []
        arc_edge_list: list[int] = []
        edge_u_list: list[int] = []
        edge_v_list: list[int] = []
        new_ids: dict[int, int] = {}
        for u in range(n):
            for head, p_out, p_in, old_id in self.arcs(u):
                new_id = new_ids.get(old_id)
                if new_id is None:
                    new_id = len(edge_u_list)
                    new_ids[old_id] = new_id
                    key = (u, head) if u < head else (head, u)
                    edge_u_list.append(key[0])
                    edge_v_list.append(key[1])
                indices_list.append(head)
                prob_out_list.append(p_out)
                prob_in_list.append(p_in)
                arc_edge_list.append(new_id)
            indptr[u + 1] = len(indices_list)
        keywords = tuple(self.base.keywords) + tuple(self._extra_keywords)
        return CSRGraph(
            name=self.name,
            table=self.table,
            indptr=indptr,
            indices=array(_INT, indices_list),
            prob_out=array(_FLOAT, prob_out_list),
            prob_in=array(_FLOAT, prob_in_list),
            arc_edge=array(_INT, arc_edge_list),
            edge_u=array(_INT, edge_u_list),
            edge_v=array(_INT, edge_v_list),
            keywords=keywords,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaCSR(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, dirt={self.dirt_ratio():.3f})"
        )


def overlay_from_edit_log(base_graph, edit_log) -> DeltaCSR:
    """Rebuild a parent's overlay from its serialized base graph + edit log.

    ``base_graph`` is the reference graph as of the overlay's base snapshot
    and ``edit_log`` the list of edit-script JSON documents applied since.
    Used by spawn-mode serving workers (see
    :class:`~repro.serve.batch.BatchQueryEngine`), which receive both in
    their rebuild payload instead of re-freezing the mutated graph.
    """
    from repro.dynamic.updates import UpdateBatch
    from repro.fastgraph.csr import freeze

    overlay = DeltaCSR(freeze(base_graph))
    for document in edit_log:
        overlay.replay(UpdateBatch.from_json(document))
    return overlay
