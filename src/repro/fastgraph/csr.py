"""Compact CSR mirror of a :class:`~repro.graph.social_network.SocialNetwork`.

The adjacency is stored in standard compressed-sparse-row form over the dense
ints of a :class:`~repro.fastgraph.vertex_table.VertexTable`:

* ``indptr[u] .. indptr[u + 1]`` delimits the *arcs* (directed half-edges)
  leaving vertex ``u``;
* ``indices[a]`` is the head of arc ``a``;
* ``prob_out[a]`` is ``p_{u,v}`` (tail activates head) and ``prob_in[a]`` is
  ``p_{v,u}`` for arc ``a = (u -> v)``;
* ``arc_edge[a]`` is the id of the undirected structural edge the arc belongs
  to (each edge owns exactly two arcs), and ``edge_u``/``edge_v`` map an edge
  id back to its endpoint ints.

Everything lives in stdlib :class:`array.array` buffers — compact, picklable
and cheap to hand to worker processes.  When numpy is installed (detected
once at import, :data:`NUMPY_AVAILABLE`) the buffers are additionally exposed
zero-copy as ndarrays via :meth:`CSRGraph.as_numpy`.  The kernels in
:mod:`repro.fastgraph.kernels` are stdlib-only so the library's
no-dependency guarantee holds; when numpy is importable the vectorised
kernel tier (:mod:`repro.fastgraph.vectorised`) runs the same kernels as
array programs over these views — bit-identical outputs, selected through
the ``kernel_tier`` engine knob (see ``docs/backends.md``).

Neighbour order inside a row follows the source graph's adjacency insertion
order, which keeps :meth:`CSRGraph.thaw` a faithful round-trip.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro.exceptions import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.social_network import SocialNetwork

try:  # Optional fast path, auto-detected once at import.
    import numpy as _np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None
    NUMPY_AVAILABLE = False

#: numpy's version string, or ``None`` when numpy is not installed
#: (surfaced by ``engine.describe()`` / ``/v1/health`` next to the active
#: kernel tier).
NUMPY_VERSION = _np.__version__ if NUMPY_AVAILABLE else None

from repro.fastgraph.vertex_table import VertexTable

#: array typecodes: signed 64-bit ints for ids, doubles for probabilities.
_INT = "q"
_FLOAT = "d"


class CSRGraph:
    """An immutable array-backed snapshot of a social network.

    Build one with :func:`freeze` (or ``SocialNetwork.freeze()``); convert
    back with :meth:`thaw`.  Instances are read-only: the dynamic layer
    never edits a ``CSRGraph`` in place — it wraps one in a mutable
    :class:`~repro.fastgraph.delta.DeltaCSR` overlay (tombstones + spill)
    and folds the overlay back into a fresh ``CSRGraph`` when it compacts
    (see ``docs/backends.md``).
    """

    __slots__ = (
        "name",
        "table",
        "indptr",
        "indices",
        "prob_out",
        "prob_in",
        "arc_edge",
        "edge_u",
        "edge_v",
        "keywords",
    )

    def __init__(
        self,
        name: str,
        table: VertexTable,
        indptr: array,
        indices: array,
        prob_out: array,
        prob_in: array,
        arc_edge: array,
        edge_u: array,
        edge_v: array,
        keywords: tuple,
    ) -> None:
        self.name = name
        self.table = table
        self.indptr = indptr
        self.indices = indices
        self.prob_out = prob_out
        self.prob_in = prob_in
        self.arc_edge = arc_edge
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.keywords = keywords

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """``|V|`` of the snapshot."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """``|E|`` (undirected structural edges) of the snapshot."""
        return len(self.edge_u)

    @property
    def num_arcs(self) -> int:
        """Number of directed half-edges (``2 |E|``)."""
        return len(self.indices)

    #: Frozen snapshots never mutate (the :class:`GraphCore` sync contract;
    #: mutable cores append touched vertices here).
    mutation_log: tuple = ()

    def degree(self, vertex: int) -> int:
        """Structural degree of dense vertex ``vertex``."""
        return self.indptr[vertex + 1] - self.indptr[vertex]

    def neighbors(self, vertex: int) -> array:
        """The neighbour ints of dense vertex ``vertex`` (a slice copy)."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def arcs(self, vertex: int):
        """Out-arcs of ``vertex`` as ``(head, p_out, p_in, edge_id)`` tuples.

        The :class:`~repro.graph.core.GraphCore` arc-iteration surface shared
        with :class:`~repro.fastgraph.delta.DeltaCSR` and
        :class:`~repro.graph.core.AdjacencyCore`; kernels and workspaces
        consume any of the three through it.
        """
        indices, prob_out, prob_in = self.indices, self.prob_out, self.prob_in
        arc_edge = self.arc_edge
        for a in range(self.indptr[vertex], self.indptr[vertex + 1]):
            yield indices[a], prob_out[a], prob_in[a], arc_edge[a]

    def edge_endpoints(self, edge_id: int) -> tuple:
        """The dense endpoint ints ``(u, v)`` of ``edge_id`` (``u < v``)."""
        return self.edge_u[edge_id], self.edge_v[edge_id]

    def edge_key(self, edge_id: int) -> frozenset:
        """The reference-style ``frozenset`` key of ``edge_id`` (original ids)."""
        id_of = self.table.id_of
        return frozenset((id_of(self.edge_u[edge_id]), id_of(self.edge_v[edge_id])))

    def keywords_of(self, vertex: int) -> frozenset:
        """Keyword set of dense vertex ``vertex``."""
        return self.keywords[vertex]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def thaw(self) -> "SocialNetwork":
        """Materialise a mutable :class:`SocialNetwork` equal to this snapshot.

        The result has the same vertex ids, keyword sets, structural edges
        and per-direction probabilities as the graph this snapshot was frozen
        from (vertex iteration order is preserved; neighbour order within a
        vertex may differ, which no public API depends on).  The dynamic
        layer uses this to drop back to the reference representation.
        """
        from repro.graph.social_network import SocialNetwork

        graph = SocialNetwork(name=self.name)
        id_of = self.table.id_of
        for index in range(self.num_vertices):
            graph.add_vertex(id_of(index), self.keywords[index])
        indptr, indices = self.indptr, self.indices
        prob_out, prob_in = self.prob_out, self.prob_in
        for u in range(self.num_vertices):
            u_id = id_of(u)
            for a in range(indptr[u], indptr[u + 1]):
                v = indices[a]
                if v > u or not graph.has_edge(u_id, id_of(v)):
                    graph.add_edge(u_id, id_of(v), prob_out[a], prob_in[a])
        return graph

    def as_numpy(self) -> dict:
        """Return the CSR buffers as zero-copy numpy arrays.

        Requires numpy (:data:`NUMPY_AVAILABLE`); the returned dict maps
        field names (``indptr``, ``indices``, ``prob_out``, ``prob_in``,
        ``arc_edge``, ``edge_u``, ``edge_v``) to ndarrays sharing memory
        with the stdlib buffers.

        Raises
        ------
        GraphError
            If numpy is not installed.
        """
        if not NUMPY_AVAILABLE:  # pragma: no cover - exercised only without numpy
            raise GraphError(
                "numpy is not installed; the CSR buffers are stdlib array.array "
                "objects (install numpy to get zero-copy ndarray views)"
            )
        return {
            "indptr": _np.frombuffer(self.indptr, dtype=_np.int64),
            "indices": _np.frombuffer(self.indices, dtype=_np.int64),
            "prob_out": _np.frombuffer(self.prob_out, dtype=_np.float64),
            "prob_in": _np.frombuffer(self.prob_in, dtype=_np.float64),
            "arc_edge": _np.frombuffer(self.arc_edge, dtype=_np.int64),
            "edge_u": _np.frombuffer(self.edge_u, dtype=_np.int64),
            "edge_v": _np.frombuffer(self.edge_v, dtype=_np.int64),
        }


def freeze(graph: "SocialNetwork") -> CSRGraph:
    """Freeze ``graph`` into a :class:`CSRGraph` snapshot.

    Interning is deterministic (vertex iteration order), so freezing an
    unchanged graph twice yields snapshots with identical tables and
    buffers.  Cost is ``O(|V| + |E|)``.
    """
    table = VertexTable(graph.vertices())
    n = len(table)
    adjacency = graph.adjacency()
    index_of = table.index_of

    indptr = array(_INT, [0] * (n + 1))
    degrees = [0] * n
    for u_id, neighbours in adjacency.items():
        degrees[index_of(u_id)] = len(neighbours)
    total = 0
    for u in range(n):
        indptr[u] = total
        total += degrees[u]
    indptr[n] = total

    indices = array(_INT, [0] * total)
    prob_out = array(_FLOAT, [0.0] * total)
    prob_in = array(_FLOAT, [0.0] * total)
    arc_edge = array(_INT, [0] * total)
    edge_u_list: list[int] = []
    edge_v_list: list[int] = []
    edge_ids: dict[tuple[int, int], int] = {}

    prob = graph._prob  # internal read-only access; freeze is a graph method
    cursor = list(indptr[:n])
    for u_id, neighbours in adjacency.items():
        u = index_of(u_id)
        position = cursor[u]
        for v_id in neighbours:
            v = index_of(v_id)
            key = (u, v) if u < v else (v, u)
            edge_id = edge_ids.get(key)
            if edge_id is None:
                edge_id = len(edge_u_list)
                edge_ids[key] = edge_id
                edge_u_list.append(key[0])
                edge_v_list.append(key[1])
            indices[position] = v
            prob_out[position] = prob[(u_id, v_id)]
            prob_in[position] = prob[(v_id, u_id)]
            arc_edge[position] = edge_id
            position += 1
        cursor[u] = position

    keywords = tuple(graph.keywords(table.id_of(i)) for i in range(n))
    return CSRGraph(
        name=graph.name,
        table=table,
        indptr=indptr,
        indices=indices,
        prob_out=prob_out,
        prob_in=prob_in,
        arc_edge=arc_edge,
        edge_u=array(_INT, edge_u_list),
        edge_v=array(_INT, edge_v_list),
        keywords=keywords,
    )
