"""Offline pre-computation (Algorithm 2) on the array backend.

:func:`fast_precompute` is the ``backend="fast"`` implementation behind
:func:`repro.index.precompute.precompute`.  It produces a
:class:`~repro.index.precompute.PrecomputedData` that is bit-for-bit
identical to the reference pass — same trussness and support ints, same
keyword bit vectors, same score-bound floats — while doing strictly less
work per centre:

* one CSR BFS to ``r_max`` per centre, shared by all radii;
* keyword signatures are OR-aggregated *incrementally* over the nested hop
  balls (only the shell new at radius ``r`` is scanned) instead of
  re-aggregating every ball from scratch;
* the support upper bound is likewise an incremental max over per-arc
  global supports (an array lookup), where the reference allocates and
  hashes a ``frozenset`` edge key per ball edge per radius;
* influence score bounds run the workspace max-product Dijkstra
  (:meth:`~repro.fastgraph.kernels.CSRWorkspace.propagate`), summing in pop
  order — which is descending, hence a bit-reproducible float sum.

The incremental aggregations are exact, not approximate: hop balls are
nested in the radius, OR and max are monotone, and supports are measured in
the full graph, so shell-by-shell accumulation visits every contributing
member/edge exactly once.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import GraphError
from repro.fastgraph.csr import freeze
from repro.fastgraph.kernels import (
    make_workspace,
    supports_as_dict,
)
from repro.graph.social_network import SocialNetwork
from repro.keywords.bitvector import BitVector


def fast_precompute(
    graph: SocialNetwork,
    max_radius: int,
    thresholds: Sequence[float],
    num_bits: int,
    vertices: Iterable | None = None,
    frozen=None,
    kernel_tier: str = "auto",
):
    """Run the offline pre-computation over a frozen snapshot of ``graph``.

    Parameters and result match
    :func:`repro.index.precompute.precompute`; see the module docstring for
    the equivalence argument.  Pass ``frozen`` (a ``CSRGraph`` of the same
    graph) to reuse an existing snapshot instead of freezing again.
    ``kernel_tier`` selects the stdlib or vectorised kernels
    (:func:`~repro.fastgraph.kernels.make_workspace`); both produce the
    same bytes.  Callers normally go through
    ``precompute(..., backend="fast")`` rather than calling this directly.
    """
    # Deferred import: repro.index.precompute routes its fast backend here,
    # so the result types cannot be imported at module level.
    from repro.index.precompute import PrecomputedData, VertexAggregates

    if max_radius < 1:
        raise GraphError(f"max_radius must be >= 1, got {max_radius}")
    ordered_thresholds = tuple(sorted(set(float(t) for t in thresholds)))
    if not ordered_thresholds:
        raise GraphError("at least one influence threshold is required")
    for theta in ordered_thresholds:
        if not 0.0 <= theta < 1.0:
            raise GraphError(f"influence thresholds must be in [0, 1), got {theta}")

    csr = frozen if frozen is not None else freeze(graph)
    data = PrecomputedData(
        max_radius=max_radius,
        thresholds=ordered_thresholds,
        num_bits=num_bits,
    )
    workspace = make_workspace(csr, kernel_tier)
    supports = workspace.edge_supports()
    # ``tolist()`` on both tiers: Python ints from here on, so the
    # serialised index never carries numpy scalars.
    support_list = supports.tolist()
    data.global_edge_support = supports_as_dict(csr, support_list)
    _, vertex_truss = workspace.truss_peel(supports)
    if hasattr(vertex_truss, "tolist"):
        vertex_truss = vertex_truss.tolist()

    keyword_bits = [
        BitVector.from_keywords(keywords, num_bits).bits for keywords in csr.keywords
    ]

    index_of = csr.table.index_of
    id_of = csr.table.id_of
    if vertices is None:
        centres = range(csr.num_vertices)
    else:
        centres = [index_of(vertex) for vertex in vertices]

    if workspace.vector_ready:
        per_radius_list = _vector_ball_aggregates(
            workspace, list(centres), max_radius, ordered_thresholds, num_bits,
            keyword_bits, supports,
        )
        per_radius_pairs = zip(centres, per_radius_list)
    else:
        workspace.ensure_entries()
        # Per-vertex (edge support, neighbour) pairs, sorted by descending
        # support so the shell scan below can stop at the first entry that
        # cannot beat the running maximum.
        support_arcs = [
            tuple(
                sorted(
                    (
                        (support_list[edge_id], head)
                        for edge_id, head in workspace.edge_arcs[u]
                    ),
                    reverse=True,
                )
            )
            for u in range(csr.num_vertices)
        ]
        per_radius_pairs = (
            (
                centre,
                _ball_aggregates(
                    workspace, centre, max_radius, ordered_thresholds, num_bits,
                    keyword_bits.__getitem__, support_arcs.__getitem__,
                ),
            )
            for centre in centres
        )

    for centre, per_radius in per_radius_pairs:
        data.vertex_aggregates[id_of(centre)] = VertexAggregates(
            vertex=id_of(centre),
            keyword_bitvector=BitVector(keyword_bits[centre], num_bits),
            per_radius=per_radius,
            center_trussness=vertex_truss[centre],
        )
    return data


#: Memory cap for one batched offline block: the batch kernel keeps three
#: dense per-(centre, vertex) state arrays, so a block holds at most this
#: many slots x vertices entries (~17 bytes each => ~70 MB peak).
_VECTOR_BLOCK_ENTRIES = 4_000_000


def _vector_ball_aggregates(
    workspace, centres, max_radius, thresholds, num_bits, keyword_bits, supports
):
    """Run the batched vector Algorithm 2 over ``centres`` in blocks.

    Returns per-centre ``{radius: RadiusAggregates}`` dicts in order.
    Blocks cap the dense per-(centre, vertex) scratch of
    :func:`~repro.fastgraph.vectorised.ball_aggregates_batch`; results are
    independent per centre, so blocking changes nothing but peak memory.
    """
    import numpy as np

    from repro.fastgraph.vectorised import ball_aggregates_batch

    supports_np = np.asarray(supports, dtype=np.int64)
    block = max(1, _VECTOR_BLOCK_ENTRIES // max(workspace.n, 1))
    results = []
    for start in range(0, len(centres), block):
        results.extend(
            ball_aggregates_batch(
                workspace, centres[start : start + block], max_radius,
                thresholds, num_bits, keyword_bits, supports_np,
            )
        )
    return results


def _ball_aggregates(
    workspace, centre, max_radius, thresholds, num_bits, bits_of, support_arcs_of
):
    """The per-centre body of Algorithm 2 on the array backend.

    One BFS ball, shell-incremental OR/max aggregation, and the chained
    per-radius propagation, returning ``{radius: RadiusAggregates}``.
    Shared — float for float — by the full offline pass
    (:func:`fast_precompute`, eager per-vertex tables behind the accessors)
    and the incremental refresh (:func:`fast_refresh_records`, lazy caches),
    which is what keeps patched records bit-identical to a rebuild.

    ``bits_of(vertex)`` returns the vertex's keyword bits as an int;
    ``support_arcs_of(vertex)`` its ``(edge support, neighbour)`` pairs
    sorted descending.
    """
    from repro.index.precompute import RadiusAggregates

    smallest_theta = thresholds[0]
    num_thresholds = len(thresholds)
    dist = workspace.dist
    order = workspace.bfs_ball(centre, max_radius)
    position = 0
    ball_size = len(order)
    bits = 0
    support_bound = 0
    cuts: list[int] = []
    bits_per_radius: list[int] = []
    bound_per_radius: list[int] = []
    for radius in range(1, max_radius + 1):
        # Fold in the shell new at this radius (the centre itself folds
        # in at radius 1).  Edge (m, w) belongs to ball_r exactly when
        # both hop distances are <= r, so scanning each new member's
        # arcs against already-distanced endpoints sees every ball edge
        # at the first radius that contains it.
        while position < ball_size:
            member = order[position]
            if dist[member] > radius:
                break
            bits |= bits_of(member)
            for support, endpoint in support_arcs_of(member):
                if support <= support_bound:
                    break  # descending: nothing later can improve the max
                if 0 <= dist[endpoint] <= radius:
                    support_bound = support
            position += 1
        cuts.append(position)
        bits_per_radius.append(bits)
        bound_per_radius.append(support_bound)

    value_lists = workspace.nested_propagation_values(order, cuts, smallest_theta)
    per_radius: dict[int, RadiusAggregates] = {}
    for radius in range(1, max_radius + 1):
        # The values are descending — exactly the order the reference
        # pops them in — so each theta's reference sum (over all
        # cpp >= theta) is a prefix sum: one walk recovers every bound
        # with the same float additions.
        values = value_lists[radius - 1]
        sums = [0.0] * num_thresholds
        running = 0.0
        cursor = num_thresholds - 1
        for probability in values:
            while cursor >= 0 and probability < thresholds[cursor]:
                sums[cursor] = running
                cursor -= 1
            if cursor < 0:
                break
            running += probability
        while cursor >= 0:
            sums[cursor] = running
            cursor -= 1
        per_radius[radius] = RadiusAggregates(
            radius=radius,
            bitvector=BitVector(bits_per_radius[radius - 1], num_bits),
            support_upper_bound=bound_per_radius[radius - 1],
            score_bounds=tuple(zip(thresholds, sums)),
        )
    return per_radius


def fast_refresh_records(core, workspace, data, vertices, truss_state) -> int:
    """Recompute the records of ``vertices`` in place on the fast backend.

    The incremental counterpart of :func:`fast_precompute`: the same
    per-centre loop (one BFS, shell-incremental OR/max aggregation, chained
    per-radius propagation), but run over a *mutable* core — normally a
    :class:`~repro.fastgraph.delta.DeltaCSR` overlay patched in place by the
    dynamic layer — against the supports and trussness the
    :class:`~repro.dynamic.truss_maintenance.IncrementalTrussState` maintains
    exactly, instead of re-deriving them from scratch.  Because the inputs
    are exact and the per-centre arithmetic is shared, the refreshed records
    are bit-identical to both a reference refresh and a full fast rebuild
    (the cross-backend dynamic suite enforces this).

    Parameters
    ----------
    core:
        The engine's current fast core (``CSRGraph`` or ``DeltaCSR``).
    workspace:
        A :class:`~repro.fastgraph.kernels.CSRWorkspace` over ``core``;
        synced here before use.
    data:
        The live :class:`~repro.index.precompute.PrecomputedData`; records
        are replaced in ``data.vertex_aggregates``.
    vertices:
        Centre vertices (original ids) whose records to refresh.
    truss_state:
        The engine's incremental truss state (supports by edge id, vertex
        trussness).

    Returns
    -------
    int
        Number of records refreshed.
    """
    from repro.index.precompute import VertexAggregates

    workspace.sync()
    workspace.ensure_entries()  # the scalar refresh sweeps the entry tuples
    num_bits = data.num_bits
    index_of = core.table.index_of
    supports_by_id = truss_state.supports_by_edge_id()
    edge_arcs = workspace.edge_arcs

    # Lazy per-vertex caches shared across the (overlapping) hop balls of
    # one refresh call; both mirror the eager tables of the full pass.
    keyword_bits: dict[int, int] = {}
    support_arcs: dict[int, tuple] = {}

    def bits_of(member: int) -> int:
        bits = keyword_bits.get(member)
        if bits is None:
            bits = BitVector.from_keywords(core.keywords_of(member), num_bits).bits
            keyword_bits[member] = bits
        return bits

    def support_arcs_of(member: int) -> tuple:
        arcs = support_arcs.get(member)
        if arcs is None:
            arcs = tuple(
                sorted(
                    (
                        (supports_by_id[edge_id], head)
                        for edge_id, head in edge_arcs[member]
                    ),
                    reverse=True,
                )
            )
            support_arcs[member] = arcs
        return arcs

    refreshed = 0
    for vertex_id in vertices:
        centre = index_of(vertex_id)
        per_radius = _ball_aggregates(
            workspace, centre, data.max_radius, data.thresholds, num_bits,
            bits_of, support_arcs_of,
        )
        data.vertex_aggregates[vertex_id] = VertexAggregates(
            vertex=vertex_id,
            keyword_bitvector=BitVector(bits_of(centre), num_bits),
            per_radius=per_radius,
            center_trussness=truss_state.trussness_of_vertex(vertex_id),
        )
        refreshed += 1
    return refreshed
