"""Array-based graph kernels over dense ints.

Each kernel mirrors a reference implementation exactly — same floats, same
ints — but runs over the CSR buffers of a
:class:`~repro.fastgraph.csr.CSRGraph` instead of dict-of-dicts adjacency:

* :func:`edge_supports_csr` — stamp-based triangle counting
  (vs :func:`repro.truss.support.edge_support`);
* :func:`truss_decomposition_csr` — bucket peel over int edge ids
  (vs :func:`repro.truss.decomposition.truss_decomposition`);
* :class:`CSRWorkspace` ``.bfs_ball`` — hop balls with stamp reset
  (vs :func:`repro.graph.traversal.bfs_distances`);
* :class:`CSRWorkspace` ``.propagate`` / :func:`community_propagation_csr` —
  truncated multi-source max-product Dijkstra
  (vs :func:`repro.influence.propagation.community_propagation`).

Why the float outputs are bit-identical, not merely close: max-product
Dijkstra relaxes with the same operation (``settled(parent) * p(edge)``) in
both backends, so the candidate value set per vertex is identical and its
maximum is too, regardless of tie-breaking.  Sums over propagation results
(score bounds, influential scores) iterate in pop order, which Dijkstra
guarantees is non-increasing in probability — a descending ordering of a
multiset is unique, so the floating-point sum is reproduced exactly.  The
cross-backend property suite (``tests/fastgraph``) enforces all of this.

Scratch buffers live in a :class:`CSRWorkspace` and are reset in
``O(touched)`` after each call, so per-centre kernels cost proportional to
the region they visit, not to ``|V|``.

The kernels here are the **stdlib tier** — pure Python, no dependencies.
When numpy is importable, :func:`make_workspace` returns a
:class:`~repro.fastgraph.vectorised.VectorWorkspace` instead, which
re-implements the same kernels as numpy array programs over the zero-copy
``CSRGraph.as_numpy()`` views with bit-identical outputs (the **vector
tier**; see ``docs/backends.md`` for the tier matrix and the bit-identity
argument).
"""

from __future__ import annotations

from array import array
from heapq import heapify, heappop, heappush
from typing import Iterable, Optional

from repro.exceptions import GraphError
from repro.fastgraph.csr import CSRGraph
from repro.influence.propagation import InfluencedCommunity
from repro.truss.decomposition import TrussDecomposition


# --------------------------------------------------------------------------- #
# triangle / support counting
# --------------------------------------------------------------------------- #
def edge_supports_csr(csr: CSRGraph, lists: Optional[tuple] = None) -> array:
    """Return ``sup(e)`` for every undirected edge id of ``csr``.

    Stamp-based counting: for each vertex ``u`` (ascending), mark ``N(u)``
    in a stamp array, then for each neighbour ``v > u`` count the marked
    members of ``N(v)``.  Each edge is counted exactly once, with no set or
    tuple allocation in the inner loop.

    ``lists`` is an optional pre-materialised ``(indptr, indices, arc_edge)``
    triple of Python lists (``CSRWorkspace.csr_lists``); repeated callers
    pass it to skip the O(|E|) buffer-to-list conversion per call.
    """
    n = csr.num_vertices
    if lists is None:
        lists = (csr.indptr.tolist(), csr.indices.tolist(), csr.arc_edge.tolist())
    indptr, indices, arc_edge = lists
    supports = [0] * csr.num_edges
    marker = [-1] * n
    for u in range(n):
        start, end = indptr[u], indptr[u + 1]
        for a in range(start, end):
            marker[indices[a]] = u
        for a in range(start, end):
            v = indices[a]
            if v <= u:
                continue
            count = 0
            for b in range(indptr[v], indptr[v + 1]):
                if marker[indices[b]] == u:
                    count += 1
            supports[arc_edge[a]] = count
    return array("q", supports)


def supports_as_dict(csr: CSRGraph, supports: Iterable[int]) -> dict:
    """Convert a per-edge-id support sequence to the reference dict form.

    The result is keyed by ``frozenset((u, v))`` over original vertex ids,
    matching :func:`repro.truss.support.edge_support` exactly.
    """
    id_of = csr.table.id_of
    edge_u = csr.edge_u
    edge_v = csr.edge_v
    return {
        frozenset((id_of(edge_u[e]), id_of(edge_v[e]))): value
        for e, value in enumerate(supports)
    }


# --------------------------------------------------------------------------- #
# truss decomposition
# --------------------------------------------------------------------------- #
def truss_peel(
    csr: CSRGraph,
    supports: Optional[Iterable[int]] = None,
    lists: Optional[tuple] = None,
):
    """Peel ``csr`` bottom-up; return per-edge and per-vertex trussness lists.

    The peel is the same algorithm as the reference decomposition — lowest
    remaining support first, trussness ``s + 2`` clamped monotonically — but
    runs over int edge ids with list buckets and lazy stale entries instead
    of frozenset-keyed dicts of sets.  ``lists`` is the same optional
    pre-materialised ``(indptr, indices, arc_edge)`` triple
    :func:`edge_supports_csr` takes.
    """
    n = csr.num_vertices
    m = csr.num_edges
    if lists is None:
        lists = (csr.indptr.tolist(), csr.indices.tolist(), csr.arc_edge.tolist())
    if supports is None:
        supports = edge_supports_csr(csr, lists)
    current = list(supports)
    edge_u = csr.edge_u.tolist()
    edge_v = csr.edge_v.tolist()

    # Neighbour -> edge-id maps; shrink as edges peel off.
    adjacency: list[dict[int, int]] = [{} for _ in range(n)]
    indptr, indices, arc_edge = lists
    for u in range(n):
        row = adjacency[u]
        for a in range(indptr[u], indptr[u + 1]):
            row[indices[a]] = arc_edge[a]

    max_support = max(current, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_support + 1)]
    for e in range(m):
        buckets[current[e]].append(e)

    edge_truss = [0] * m
    removed = bytearray(m)
    pointer = 0
    k_floor = 2
    remaining = m
    while remaining:
        while pointer <= max_support and not buckets[pointer]:
            pointer += 1
        if pointer > max_support:
            break
        e = buckets[pointer].pop()
        if removed[e] or current[e] != pointer:
            continue  # stale bucket entry; the live one sits in a lower bucket
        support = pointer
        if support + 2 > k_floor:
            k_floor = support + 2
        edge_truss[e] = k_floor
        removed[e] = 1
        remaining -= 1

        u, v = edge_u[e], edge_v[e]
        row_u, row_v = adjacency[u], adjacency[v]
        del row_u[v]
        del row_v[u]
        small, big = (row_u, row_v) if len(row_u) <= len(row_v) else (row_v, row_u)
        for w, e1 in small.items():
            e2 = big.get(w)
            if e2 is None:
                continue
            for other in (e1, e2):
                if removed[other]:
                    continue
                old = current[other]
                if old > support:
                    current[other] = old - 1
                    buckets[old - 1].append(other)

    vertex_truss = [2] * n
    for e in range(m):
        trussness = edge_truss[e]
        u, v = edge_u[e], edge_v[e]
        if trussness > vertex_truss[u]:
            vertex_truss[u] = trussness
        if trussness > vertex_truss[v]:
            vertex_truss[v] = trussness
    return edge_truss, vertex_truss


def truss_decomposition_csr(
    csr: CSRGraph, supports: Optional[Iterable[int]] = None
) -> TrussDecomposition:
    """Full truss decomposition of ``csr`` in the reference result type.

    Values are identical to
    :func:`repro.truss.decomposition.truss_decomposition` on the thawed
    graph (trussness is a graph invariant, independent of peel tie-breaks).
    """
    edge_truss, vertex_truss = truss_peel(csr, supports)
    id_of = csr.table.id_of
    edge_u, edge_v = csr.edge_u, csr.edge_v
    edge_trussness = {
        frozenset((id_of(edge_u[e]), id_of(edge_v[e]))): edge_truss[e]
        for e in range(csr.num_edges)
    }
    vertex_trussness = {id_of(v): vertex_truss[v] for v in range(csr.num_vertices)}
    return TrussDecomposition(
        edge_trussness=edge_trussness, vertex_trussness=vertex_trussness
    )


# --------------------------------------------------------------------------- #
# per-centre workspace: BFS balls and max-product propagation
# --------------------------------------------------------------------------- #
class CSRWorkspace:
    """Reusable scratch state for the per-centre kernels.

    One workspace amortises the per-vertex arc extraction of a graph core
    and owns the stamp arrays (hop distances, best probabilities, settled
    flags), which are cleaned up after each call in time proportional to the
    vertices touched.  A workspace is single-threaded; create one per worker.

    The core may be a frozen :class:`~repro.fastgraph.csr.CSRGraph` or a
    mutable :class:`~repro.fastgraph.delta.DeltaCSR` overlay — anything with
    ``num_vertices`` and ``arcs(u)`` (the :class:`~repro.graph.core.GraphCore`
    read surface).  For mutable cores, :meth:`sync` re-derives exactly the
    per-vertex entries whose arcs changed since the last sync, using the
    core's ``mutation_log``; a workspace therefore survives dynamic updates
    without being rebuilt from scratch.
    """

    __slots__ = (
        "core", "n",
        "neighbor_ints", "ranked_arcs", "edge_arcs", "_entries_ready",
        "dist", "order", "_best", "_popped", "_log_offset", "_lists",
    )

    #: Whether this workspace currently runs the vectorised kernel tier
    #: (overridden by :class:`~repro.fastgraph.vectorised.VectorWorkspace`).
    vector_ready = False

    #: Subclasses whose primary kernels never read the per-vertex entry
    #: tuples set this to defer their construction to the first fallback
    #: that does (:meth:`ensure_entries`).
    _defer_entries = False

    def __init__(self, core) -> None:
        self.core = core
        self._lists = None
        self.n = core.num_vertices
        #: Per-vertex neighbour tuples in arc order (BFS, shell scans).
        self.neighbor_ints: list[tuple] = []
        #: Per-vertex ``(p_out, neighbour)`` tuples sorted by descending
        #: probability, so a relaxation sweep can stop at the first product
        #: below the threshold (everything after is smaller still).  Arcs
        #: with ``p == 0`` can never contribute and are dropped outright,
        #: exactly as the reference skips them.
        self.ranked_arcs: list[tuple] = []
        #: Per-vertex ``(edge id, neighbour)`` tuples in arc order (the
        #: offline shell scans look supports up by edge id).
        self.edge_arcs: list[tuple] = []
        self._entries_ready = False
        if not self._defer_entries:
            self.ensure_entries()
        #: Hop distances of the most recent :meth:`bfs_ball` (-1 = unreached).
        self.dist = [-1] * self.n
        #: Visit order of the most recent :meth:`bfs_ball`.
        self.order: list[int] = []
        self._best = [0.0] * self.n
        self._popped = bytearray(self.n)
        self._log_offset = len(getattr(core, "mutation_log", ()))

    def ensure_entries(self) -> None:
        """Materialise the per-vertex entry tuples (no-op once built).

        The stdlib tier builds them during construction.  The vector tier
        defers them — its whole-graph and batched offline kernels read the
        numpy views instead — and calls this from every path that sweeps
        :attr:`neighbor_ints` / :attr:`ranked_arcs` / :attr:`edge_arcs`.
        """
        if self._entries_ready:
            return
        self._entries_ready = True
        for u in range(self.n):
            neighbors, ranked, edges = self._vertex_entries(u)
            self.neighbor_ints.append(neighbors)
            self.ranked_arcs.append(ranked)
            self.edge_arcs.append(edges)

    def _vertex_entries(self, vertex: int) -> tuple[tuple, tuple, tuple]:
        neighbors: list[int] = []
        ranked: list[tuple[float, int]] = []
        edges: list[tuple[int, int]] = []
        for head, p_out, _, edge_id in self.core.arcs(vertex):
            neighbors.append(head)
            edges.append((edge_id, head))
            if p_out > 0.0:
                ranked.append((p_out, head))
        ranked.sort(reverse=True)
        return tuple(neighbors), tuple(ranked), tuple(edges)

    def csr_lists(self) -> tuple:
        """The core's ``(indptr, indices, arc_edge)`` buffers as Python lists.

        Materialised once and cached, so repeated support/peel kernel calls
        stop paying the O(|E|) buffer-to-list conversion each time.  Only
        meaningful over a frozen :class:`~repro.fastgraph.csr.CSRGraph`
        core; a mutable overlay has no stable CSR layout to materialise.
        """
        if not isinstance(self.core, CSRGraph):
            raise GraphError(
                "CSR buffer lists need a frozen CSRGraph core; compact the "
                f"overlay first (core is {type(self.core).__name__})"
            )
        if self._lists is None:
            core = self.core
            self._lists = (
                core.indptr.tolist(),
                core.indices.tolist(),
                core.arc_edge.tolist(),
            )
        return self._lists

    def edge_supports(self):
        """Per-edge-id supports of the (frozen) core — tier-polymorphic.

        The stdlib tier returns an ``array('q')``; the vectorised tier an
        ``int64`` ndarray.  Values are identical; consumers treat the result
        as an opaque int sequence.
        """
        return edge_supports_csr(self.core, self.csr_lists())

    def truss_peel(self, supports=None):
        """Truss-peel the (frozen) core — tier-polymorphic.

        Returns ``(edge_truss, vertex_truss)`` int sequences, identical
        across tiers (trussness is a graph invariant).
        """
        return truss_peel(self.core, supports, self.csr_lists())

    def rebind(self, core) -> None:
        """Adopt a core whose live arcs currently equal this workspace's.

        Used when the engine wraps a pristine snapshot into a
        :class:`~repro.fastgraph.delta.DeltaCSR` overlay: the arc sets are
        identical at that moment, so every derived entry carries over and
        only the mutation-log cursor resets.
        """
        self.core = core
        self._log_offset = len(getattr(core, "mutation_log", ()))

    def sync(self) -> int:
        """Absorb the core's mutations since the last sync; return the count.

        Re-derives the per-vertex entries of every vertex in the core's
        ``mutation_log`` tail (deduplicated) and grows the stamp arrays for
        newly interned vertices — O(touched arcs), not O(graph).  Frozen
        cores have an empty log, so this is a no-op for them.
        """
        log = getattr(self.core, "mutation_log", ())
        if len(log) <= self._log_offset:
            return 0
        self.ensure_entries()
        dirty = set(log[self._log_offset:])
        self._log_offset = len(log)
        grown = self.core.num_vertices
        while self.n < grown:
            self.neighbor_ints.append(())
            self.ranked_arcs.append(())
            self.edge_arcs.append(())
            self.dist.append(-1)
            self._best.append(0.0)
            self._popped.append(0)
            self.n += 1
        for vertex in dirty:
            neighbors, ranked, edges = self._vertex_entries(vertex)
            self.neighbor_ints[vertex] = neighbors
            self.ranked_arcs[vertex] = ranked
            self.edge_arcs[vertex] = edges
        return len(dirty)

    def bfs_ball(self, source: int, max_depth: int) -> list[int]:
        """BFS from ``source`` to ``max_depth`` hops.

        Returns the visit order (non-decreasing hop distance); distances are
        readable from :attr:`dist` until the next call, which resets only
        the entries the previous call touched.
        """
        dist = self.dist
        for vertex in self.order:
            dist[vertex] = -1
        neighbor_ints = self.neighbor_ints
        order = [source]
        dist[source] = 0
        head = 0
        while head < len(order):
            vertex = order[head]
            head += 1
            depth = dist[vertex]
            if depth >= max_depth:
                continue
            next_depth = depth + 1
            for neighbour in neighbor_ints[vertex]:
                if dist[neighbour] < 0:
                    dist[neighbour] = next_depth
                    order.append(neighbour)
        self.order = order
        return order

    def propagate(self, seeds, threshold: float) -> list:
        """Truncated multi-source max-product Dijkstra from ``seeds``.

        Returns ``(vertex, probability)`` pairs in pop order (probability
        non-increasing), the same value sequence — up to reordering of equal
        probabilities, which no consumer can observe — as the reference
        :func:`~repro.influence.propagation.community_propagation`.

        Three exact work reducers over the reference loop:

        * seeds settle up front at probability 1 (nothing can beat 1), so
          they never enter the heap;
        * relaxations sweep :attr:`ranked_arcs` and *stop* at the first
          product below the threshold — the arcs are probability-sorted, so
          every later product is below it too;
        * pushes dominated by an already-pushed better probability are
          skipped (``best`` tracks the max pushed per vertex).

        None of this changes any settled value: the settled probability of a
        vertex is the maximum over stepwise path products from the seeds,
        and each reducer only drops candidates that are provably not the
        maximum (or reorders the sweep within one vertex).
        """
        best = self._best
        popped = self._popped
        ranked_arcs = self.ranked_arcs
        seeds = list(seeds)
        touched = list(seeds)
        result = []
        for seed in seeds:
            best[seed] = 1.0
            popped[seed] = 1
            result.append((seed, 1.0))
        heap = []
        for seed in seeds:
            for edge_probability, neighbour in ranked_arcs[seed]:
                if edge_probability < threshold:
                    break
                if popped[neighbour] or edge_probability <= best[neighbour]:
                    continue
                if best[neighbour] == 0.0:
                    touched.append(neighbour)
                best[neighbour] = edge_probability
                heap.append((-edge_probability, neighbour))
        heapify(heap)
        while heap:
            negative_probability, vertex = heappop(heap)
            if popped[vertex]:
                continue
            popped[vertex] = 1
            probability = -negative_probability
            result.append((vertex, probability))
            for edge_probability, neighbour in ranked_arcs[vertex]:
                next_probability = probability * edge_probability
                if next_probability < threshold:
                    break
                if popped[neighbour] or next_probability <= best[neighbour]:
                    continue
                if best[neighbour] == 0.0:
                    touched.append(neighbour)
                best[neighbour] = next_probability
                heappush(heap, (-next_probability, neighbour))
        for vertex in touched:
            best[vertex] = 0.0
            popped[vertex] = 0
        return result

    def nested_propagation_values(self, order, cuts, threshold: float) -> list:
        """Propagation value lists for a nested family of seed balls.

        ``order`` is a BFS visit order and ``cuts`` the prefix lengths that
        delimit the balls (one per radius, non-decreasing).  For each cut
        this returns the propagation probabilities of the ball's influenced
        community, **sorted descending** — exactly the value sequence the
        reference pops, so prefix sums over it are bit-identical.

        Instead of re-running the full multi-source Dijkstra per ball, the
        labels of ball ``r`` are carried into ball ``r + 1``: they form a
        max-product fixpoint (no relaxation over them can improve), so when
        the shell vertices new at ``r + 1`` become seeds at probability 1,
        only vertices whose label *strictly improves* can affect anything —
        the incremental pass relaxes those alone.  Every label still equals
        the maximum stepwise path product from the current seed set, which
        is what makes the values identical to a fresh run.
        """
        best = self._best
        in_region = self._popped
        ranked_arcs = self.ranked_arcs
        settled: list[int] = []
        out = []
        previous_cut = 0
        for cut in cuts:
            heap = []
            for position in range(previous_cut, cut):
                seed = order[position]
                if best[seed] < 1.0:
                    if not in_region[seed]:
                        in_region[seed] = 1
                        settled.append(seed)
                    best[seed] = 1.0
                    heap.append((-1.0, seed))
            previous_cut = cut
            heapify(heap)
            while heap:
                negative_probability, vertex = heappop(heap)
                probability = -negative_probability
                if probability < best[vertex]:
                    continue  # superseded by a later improvement
                for edge_probability, neighbour in ranked_arcs[vertex]:
                    next_probability = probability * edge_probability
                    if next_probability < threshold:
                        break
                    if next_probability <= best[neighbour]:
                        continue
                    if not in_region[neighbour]:
                        in_region[neighbour] = 1
                        settled.append(neighbour)
                    best[neighbour] = next_probability
                    heappush(heap, (-next_probability, neighbour))
            out.append(sorted((best[vertex] for vertex in settled), reverse=True))
        for vertex in settled:
            best[vertex] = 0.0
            in_region[vertex] = 0
        return out


def bfs_hop_ball(csr: CSRGraph, source: int, radius: int) -> dict[int, int]:
    """Return ``{vertex int: hop distance}`` for the ``radius``-ball of ``source``.

    Convenience wrapper allocating a fresh workspace; batch callers should
    hold a :class:`CSRWorkspace` and use :meth:`CSRWorkspace.bfs_ball`.
    """
    if radius < 0:
        raise GraphError(f"radius must be non-negative, got {radius}")
    if not 0 <= source < csr.num_vertices:
        raise GraphError(f"vertex int {source!r} is outside [0, {csr.num_vertices})")
    workspace = CSRWorkspace(csr)
    order = workspace.bfs_ball(source, radius)
    dist = workspace.dist
    return {vertex: dist[vertex] for vertex in order}


def community_propagation_csr(
    csr: CSRGraph,
    seed_vertices: Iterable,
    threshold: float,
    workspace: Optional[CSRWorkspace] = None,
) -> InfluencedCommunity:
    """``calculate_influence(g, theta)`` over the CSR snapshot.

    Drop-in equivalent of
    :func:`repro.influence.propagation.community_propagation`: takes and
    returns *original* vertex ids, and produces identical ``cpp`` values and
    an identical influential score.  Pass a shared ``workspace`` when
    scoring many communities against one snapshot.
    """
    seeds = frozenset(seed_vertices)
    if not seeds:
        raise GraphError("seed community must contain at least one vertex")
    if not 0.0 <= threshold < 1.0:
        raise GraphError(f"influence threshold must be in [0, 1), got {threshold}")
    index_of = csr.table.index_of
    seed_ints = [index_of(vertex) for vertex in seeds]
    if workspace is None:
        workspace = CSRWorkspace(csr)
    pairs = workspace.propagate(seed_ints, threshold)
    id_of = csr.table.id_of
    cpp = {id_of(vertex): probability for vertex, probability in pairs}
    return InfluencedCommunity(seed_vertices=seeds, cpp=cpp, threshold=threshold)


# --------------------------------------------------------------------------- #
# kernel tiers
# --------------------------------------------------------------------------- #
#: Valid values of the ``kernel_tier`` engine knob.
KERNEL_TIERS = ("auto", "stdlib", "vector")


def resolve_kernel_tier(kernel_tier: str = "auto") -> str:
    """Resolve the ``kernel_tier`` knob to a concrete tier.

    ``"auto"`` picks ``"vector"`` when numpy is importable and ``"stdlib"``
    otherwise; an explicit ``"vector"`` without numpy raises (the caller
    asked for something the environment cannot provide), and an explicit
    ``"stdlib"`` always wins — the opt-out for bisecting or benchmarking.
    """
    from repro.fastgraph.csr import NUMPY_AVAILABLE

    if kernel_tier not in KERNEL_TIERS:
        raise GraphError(
            f"kernel_tier must be one of {KERNEL_TIERS}, got {kernel_tier!r}"
        )
    if kernel_tier == "auto":
        return "vector" if NUMPY_AVAILABLE else "stdlib"
    if kernel_tier == "vector" and not NUMPY_AVAILABLE:
        raise GraphError(
            "kernel_tier 'vector' requires numpy (pip install "
            "'repro-topl-icde[fast]'); use 'auto' to fall back silently"
        )
    return kernel_tier


def make_workspace(core, kernel_tier: str = "auto") -> CSRWorkspace:
    """Build the kernel workspace for ``core`` on the configured tier.

    The vector tier needs a frozen :class:`~repro.fastgraph.csr.CSRGraph`
    (the array programs read the CSR buffers directly); any other core — in
    particular a mutable :class:`~repro.fastgraph.delta.DeltaCSR` overlay —
    gets the stdlib workspace, the *compact-before-vectorise* rule: dirty
    overlays run stdlib kernels until the engine folds them back into a
    pure CSR, at which point the next workspace build is vectorised again.
    """
    if resolve_kernel_tier(kernel_tier) == "vector" and isinstance(core, CSRGraph):
        from repro.fastgraph.vectorised import VectorWorkspace

        return VectorWorkspace(core)
    return CSRWorkspace(core)
