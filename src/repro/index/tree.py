"""Construction of the tree index ``I`` (Section V-B).

The builder sorts vertices by a blend of their pre-computed support and score
bounds (as described in the paper's "Index Construction" paragraph), packs
them into leaves of ``leaf_capacity`` vertices, and then groups nodes bottom-up
with fanout ``gamma`` until a single root remains.  Sorting by the blended key
places vertices with similar bounds in the same subtree, which sharpens the
aggregate bounds and therefore the index-level pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import IndexStateError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.index.node import EntryAggregates, IndexNode, LeafVertexEntry, make_internal, make_leaf
from repro.index.precompute import PrecomputedData, precompute

#: Default fanout gamma of non-leaf nodes.
DEFAULT_FANOUT = 8
#: Default number of vertices per leaf node.
DEFAULT_LEAF_CAPACITY = 16


@dataclass
class TreeIndex:
    """The tree index ``I`` over a social network.

    Attributes
    ----------
    root:
        Root :class:`IndexNode` (``None`` only for empty graphs).
    precomputed:
        The offline pre-computation the index was built from; the online
        algorithm also consults it for community-level pruning.
    fanout:
        Maximum number of children per non-leaf node.
    leaf_capacity:
        Maximum number of vertices per leaf node.
    """

    root: IndexNode | None
    precomputed: PrecomputedData
    fanout: int = DEFAULT_FANOUT
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY
    num_nodes: int = field(default=0)

    @property
    def max_radius(self) -> int:
        """The largest radius the index supports."""
        return self.precomputed.max_radius

    @property
    def thresholds(self) -> tuple[float, ...]:
        """The pre-selected influence thresholds."""
        return self.precomputed.thresholds

    def height(self) -> int:
        """Height of the tree (0 for a single leaf, -1 for an empty index)."""
        if self.root is None:
            return -1
        return self.root.height()

    def num_vertices(self) -> int:
        """Number of vertices stored in the index."""
        if self.root is None:
            return 0
        return self.root.subtree_size()

    def vertex_aggregates(self, vertex: VertexId):
        """Return the pre-computed record of ``vertex``."""
        try:
            return self.precomputed.aggregates_of(vertex)
        except KeyError:
            raise IndexStateError(f"vertex {vertex!r} is not covered by the index") from None

    def validate_radius(self, radius: int) -> None:
        """Raise when a query radius exceeds the pre-computed maximum."""
        self.precomputed.validate_radius(radius)

    def describe(self) -> dict:
        """Return a summary of the index shape (used by reports and tests)."""
        return {
            "num_vertices": self.num_vertices(),
            "num_nodes": self.num_nodes,
            "height": self.height(),
            "fanout": self.fanout,
            "leaf_capacity": self.leaf_capacity,
            "max_radius": self.max_radius,
            "thresholds": list(self.thresholds),
        }


def _ranking_key(aggregates: EntryAggregates, max_radius: int) -> float:
    """Blend of the support and score bounds used to sort vertices before packing."""
    radius_aggregates = aggregates.per_radius[max_radius]
    score = radius_aggregates.score_bounds[0][1] if radius_aggregates.score_bounds else 0.0
    return (radius_aggregates.support_upper_bound + score) / 2.0


def build_tree_index(
    graph: SocialNetwork,
    precomputed: PrecomputedData | None = None,
    fanout: int = DEFAULT_FANOUT,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    **precompute_kwargs,
) -> TreeIndex:
    """Build the tree index over ``graph``.

    Parameters
    ----------
    graph:
        The social network to index.
    precomputed:
        An existing offline pre-computation; when omitted, :func:`precompute`
        is run with ``precompute_kwargs`` (``max_radius``, ``thresholds``,
        ``num_bits``).
    fanout:
        Maximum children per non-leaf node (``gamma``), at least 2.
    leaf_capacity:
        Maximum vertices per leaf, at least 1.
    """
    if fanout < 2:
        raise IndexStateError(f"fanout must be >= 2, got {fanout}")
    if leaf_capacity < 1:
        raise IndexStateError(f"leaf_capacity must be >= 1, got {leaf_capacity}")
    if precomputed is None:
        precomputed = precompute(graph, **precompute_kwargs)

    entries = [
        LeafVertexEntry(vertex=vertex, aggregates=aggregates)
        for vertex, aggregates in precomputed.vertex_aggregates.items()
    ]
    if not entries:
        return TreeIndex(
            root=None,
            precomputed=precomputed,
            fanout=fanout,
            leaf_capacity=leaf_capacity,
            num_nodes=0,
        )

    entries.sort(
        key=lambda entry: _ranking_key(entry.entry, precomputed.max_radius), reverse=True
    )

    next_node_id = 0
    leaves: list[IndexNode] = []
    for start in range(0, len(entries), leaf_capacity):
        chunk = entries[start:start + leaf_capacity]
        leaves.append(make_leaf(chunk, node_id=next_node_id))
        next_node_id += 1

    level = leaves
    while len(level) > 1:
        next_level: list[IndexNode] = []
        for start in range(0, len(level), fanout):
            chunk = level[start:start + fanout]
            if len(chunk) == 1:
                next_level.append(chunk[0])
            else:
                next_level.append(make_internal(chunk, node_id=next_node_id))
                next_node_id += 1
        level = next_level

    root = level[0]
    return TreeIndex(
        root=root,
        precomputed=precomputed,
        fanout=fanout,
        leaf_capacity=leaf_capacity,
        num_nodes=root.count_nodes(),
    )
