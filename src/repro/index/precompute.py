"""Offline pre-computation (Algorithm 2).

For every vertex ``v_i`` and every radius ``r`` in ``[1, r_max]`` the offline
phase computes the aggregates used by the pruning rules:

* ``v_i.BV_r`` — the OR of the keyword signatures of every vertex within
  ``r`` hops of ``v_i``;
* ``v_i.ub_sup_r`` — the maximum edge-support upper bound over the edges of
  ``hop(v_i, r)`` (edge supports measured in the full graph, which upper
  bounds the support inside any candidate community, per the discussion after
  Lemma 2);
* ``(sigma_z, theta_z)`` pairs — the influential score of ``hop(v_i, r)``
  itself at each pre-selected threshold ``theta_z``, which upper bounds the
  score of any seed community contained in ``hop(v_i, r)``.

The result is a :class:`PrecomputedData` object consumed by the tree-index
builder and (for the community-level pruning rules) by the online algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.traversal import bfs_distances
from repro.influence.propagation import community_propagation
from repro.keywords.bitvector import DEFAULT_NUM_BITS, BitVector
from repro.truss.decomposition import truss_decomposition
from repro.truss.support import edge_support

#: Default maximum radius for which aggregates are pre-computed (Table III
#: explores r in {1, 2, 3}).
DEFAULT_MAX_RADIUS = 3
#: Default pre-selected influence thresholds theta_1 < ... < theta_m
#: (Table III explores theta in {0.1, 0.2, 0.3}).
DEFAULT_THRESHOLDS = (0.1, 0.2, 0.3)


@dataclass(frozen=True)
class RadiusAggregates:
    """Aggregates of one vertex for one radius ``r``."""

    radius: int
    bitvector: BitVector
    support_upper_bound: int
    score_bounds: tuple[tuple[float, float], ...]  # ascending (theta_z, sigma_z)

    def score_bound_for(self, theta: float) -> float:
        """Return the applicable ``sigma_z`` for an online threshold ``theta``."""
        best = float("inf")
        best_theta = None
        for theta_z, sigma_z in self.score_bounds:
            if theta_z <= theta and (best_theta is None or theta_z > best_theta):
                best_theta = theta_z
                best = sigma_z
        return best


@dataclass(frozen=True)
class VertexAggregates:
    """The pre-computed record ``v_i.R`` of one vertex (all radii).

    ``center_trussness`` is the trussness of the vertex in the full graph — a
    tighter (still sound) form of the support upper bound of Lemma 2: any
    k-truss seed community centred at the vertex contains at least one of its
    incident edges, whose support inside the community cannot exceed its
    trussness in ``G``.  A centre with trussness below ``k`` can therefore be
    pruned without extracting anything (this is the same signal the ATindex
    baseline indexes offline; see DESIGN.md).
    """

    vertex: VertexId
    keyword_bitvector: BitVector
    per_radius: dict  # radius -> RadiusAggregates
    center_trussness: int = 2

    def for_radius(self, radius: int) -> RadiusAggregates:
        """Return the aggregates for ``radius`` (raises ``KeyError`` if absent)."""
        return self.per_radius[radius]


@dataclass
class PrecomputedData:
    """The output of the offline phase for a whole graph."""

    max_radius: int
    thresholds: tuple[float, ...]
    num_bits: int
    vertex_aggregates: dict = field(default_factory=dict)  # vertex -> VertexAggregates
    global_edge_support: dict = field(default_factory=dict)  # frozenset edge -> support

    def aggregates_of(self, vertex: VertexId) -> VertexAggregates:
        """Return the pre-computed record of ``vertex``."""
        return self.vertex_aggregates[vertex]

    def num_vertices(self) -> int:
        return len(self.vertex_aggregates)

    def supported_radii(self) -> range:
        """Radii for which aggregates exist."""
        return range(1, self.max_radius + 1)

    def validate_radius(self, radius: int) -> None:
        """Raise when an online query uses a radius larger than pre-computed."""
        if radius < 1 or radius > self.max_radius:
            raise GraphError(
                f"radius {radius} is outside the pre-computed range [1, {self.max_radius}]"
            )


def compute_vertex_record(
    graph: SocialNetwork,
    vertex: VertexId,
    max_radius: int,
    thresholds: tuple[float, ...],
    num_bits: int,
    edge_supports: dict,
    keyword_vector_of,
    center_trussness: int,
) -> VertexAggregates:
    """Compute the pre-computed record of one centre vertex (Algorithm 2 body).

    Shared by the full offline pass below and by the incremental refresh in
    :mod:`repro.dynamic.maintenance` — one code path guarantees the patched
    aggregates are bit-for-bit identical to a fresh pre-computation.

    ``keyword_vector_of`` maps a vertex to its keyword :class:`BitVector`
    (a dict lookup in the full pass, an on-demand builder in the refresh);
    ``edge_supports`` holds supports measured in the full graph.
    """
    adjacency = graph.adjacency()
    smallest_theta = thresholds[0]
    distances = bfs_distances(graph, vertex, max_depth=max_radius)
    per_radius: dict[int, RadiusAggregates] = {}
    # Influence propagation once at the smallest threshold for the largest
    # radius is NOT reusable across radii (the seed set changes), so we
    # propagate per radius but reuse one propagation for all thresholds.
    for radius in range(1, max_radius + 1):
        members = [v for v, d in distances.items() if d <= radius]
        member_set = frozenset(members)

        bitvector = BitVector.empty(num_bits)
        for member in members:
            bitvector = bitvector | keyword_vector_of(member)

        support_bound = 0
        for member in members:
            for neighbour in adjacency[member]:
                if neighbour in member_set:
                    support = edge_supports.get(frozenset((member, neighbour)), 0)
                    if support > support_bound:
                        support_bound = support

        influenced = community_propagation(graph, member_set, smallest_theta)
        score_bounds = tuple(
            (theta, sum(p for p in influenced.cpp.values() if p >= theta))
            for theta in thresholds
        )
        per_radius[radius] = RadiusAggregates(
            radius=radius,
            bitvector=bitvector,
            support_upper_bound=support_bound,
            score_bounds=score_bounds,
        )
    return VertexAggregates(
        vertex=vertex,
        keyword_bitvector=keyword_vector_of(vertex),
        per_radius=per_radius,
        center_trussness=center_trussness,
    )


def precompute(
    graph: SocialNetwork,
    max_radius: int = DEFAULT_MAX_RADIUS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    num_bits: int = DEFAULT_NUM_BITS,
    vertices: Iterable[VertexId] | None = None,
    backend: str = "reference",
    frozen=None,
    kernel_tier: str = "auto",
) -> PrecomputedData:
    """Run the offline pre-computation (Algorithm 2) over ``graph``.

    Parameters
    ----------
    graph:
        The social network ``G``.
    max_radius:
        ``r_max`` — aggregates are produced for every radius ``1..r_max``.
    thresholds:
        The pre-selected influence thresholds ``theta_1 < ... < theta_m``.
    num_bits:
        Width of the keyword bit vectors.
    vertices:
        Optional subset of centre vertices to pre-compute (defaults to all).
        Restricting the set is used by tests and by incremental re-builds.
    backend:
        ``"reference"`` runs the dict-based pass below; ``"fast"`` delegates
        to :func:`repro.fastgraph.offline.fast_precompute`, which produces a
        bit-identical result over an array snapshot of ``graph``.
    frozen:
        Optional pre-built CSR snapshot of ``graph`` for the ``fast``
        backend (the engine passes the one it will also serve queries
        from, so the graph is frozen once per epoch).  Ignored on the
        reference backend.
    kernel_tier:
        Fast backend only: which kernel tier runs the pass — ``"auto"``
        (vectorised when numpy is importable), ``"stdlib"`` or
        ``"vector"``.  Both tiers are bit-identical.  Ignored on the
        reference backend.

    Returns
    -------
    PrecomputedData
    """
    if backend == "fast":
        # Deferred import; repro.fastgraph.offline imports this module's
        # result types.
        from repro.fastgraph.offline import fast_precompute

        return fast_precompute(
            graph,
            max_radius=max_radius,
            thresholds=thresholds,
            num_bits=num_bits,
            vertices=vertices,
            frozen=frozen,
            kernel_tier=kernel_tier,
        )
    if backend != "reference":
        raise GraphError(f"backend must be 'reference' or 'fast', got {backend!r}")
    if max_radius < 1:
        raise GraphError(f"max_radius must be >= 1, got {max_radius}")
    ordered_thresholds = tuple(sorted(set(float(t) for t in thresholds)))
    if not ordered_thresholds:
        raise GraphError("at least one influence threshold is required")
    for theta in ordered_thresholds:
        if not 0.0 <= theta < 1.0:
            raise GraphError(f"influence thresholds must be in [0, 1), got {theta}")

    data = PrecomputedData(
        max_radius=max_radius,
        thresholds=ordered_thresholds,
        num_bits=num_bits,
    )

    # Per-vertex keyword signatures, global edge supports and the truss
    # decomposition are shared by every radius, so compute them once.
    keyword_vectors = {
        v: BitVector.from_keywords(graph.keywords(v), num_bits) for v in graph.vertices()
    }
    data.global_edge_support = edge_support(graph)
    decomposition = truss_decomposition(graph)

    centre_vertices = list(vertices) if vertices is not None else list(graph.vertices())

    for vertex in centre_vertices:
        data.vertex_aggregates[vertex] = compute_vertex_record(
            graph,
            vertex,
            max_radius=max_radius,
            thresholds=ordered_thresholds,
            num_bits=num_bits,
            edge_supports=data.global_edge_support,
            keyword_vector_of=keyword_vectors.__getitem__,
            center_trussness=decomposition.trussness_of_vertex(vertex),
        )
    return data
