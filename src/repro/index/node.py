"""Tree-index node structures (Section V-B).

The index ``I`` is a balanced tree over the graph's vertices.  Leaf nodes hold
vertices together with their pre-computed records ``v_i.R``; non-leaf nodes
hold child entries whose aggregates are the element-wise combination of the
children:

* aggregated keyword bit vector — OR of the children's vectors;
* maximum edge-support upper bound — max of the children's bounds;
* per-threshold maximum influential score upper bound — max of the children's
  bounds per ``theta_z``.

The same :class:`EntryAggregates` structure describes both a leaf vertex and a
non-leaf entry, which keeps the pruning code uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.precompute import RadiusAggregates, VertexAggregates
from repro.keywords.bitvector import BitVector


@dataclass(frozen=True)
class EntryAggregates:
    """Aggregates of an index entry for every pre-computed radius.

    ``trussness_bound`` is the maximum centre-vertex trussness over every
    vertex below the entry — an entry whose bound is below the query's ``k``
    cannot contain any valid candidate centre (index-level form of the
    tightened support pruning).
    """

    per_radius: dict  # radius -> RadiusAggregates
    trussness_bound: int = 2

    def bitvector(self, radius: int) -> BitVector:
        """Aggregated keyword signature for ``radius``."""
        return self.per_radius[radius].bitvector

    def support_bound(self, radius: int) -> int:
        """Maximum edge-support upper bound for ``radius``."""
        return self.per_radius[radius].support_upper_bound

    def score_bounds(self, radius: int) -> tuple:
        """``(theta_z, sigma_z)`` pairs for ``radius``."""
        return self.per_radius[radius].score_bounds

    def score_bound_for(self, radius: int, theta: float) -> float:
        """Applicable score bound for an online threshold ``theta``."""
        return self.per_radius[radius].score_bound_for(theta)

    @classmethod
    def from_vertex(cls, aggregates: VertexAggregates) -> "EntryAggregates":
        """Wrap the pre-computed record of a single vertex."""
        return cls(
            per_radius=dict(aggregates.per_radius),
            trussness_bound=aggregates.center_trussness,
        )

    @classmethod
    def combine(cls, entries: list["EntryAggregates"]) -> "EntryAggregates":
        """Combine child aggregates into a parent entry (OR / max / max)."""
        if not entries:
            raise ValueError("cannot combine an empty list of entries")
        radii = sorted(entries[0].per_radius)
        combined: dict[int, RadiusAggregates] = {}
        for radius in radii:
            bitvector = entries[0].per_radius[radius].bitvector
            support_bound = 0
            thresholds = [theta for theta, _ in entries[0].per_radius[radius].score_bounds]
            best_scores = {theta: 0.0 for theta in thresholds}
            for entry in entries:
                radius_aggregates = entry.per_radius[radius]
                bitvector = bitvector | radius_aggregates.bitvector
                if radius_aggregates.support_upper_bound > support_bound:
                    support_bound = radius_aggregates.support_upper_bound
                for theta, sigma in radius_aggregates.score_bounds:
                    if sigma > best_scores.get(theta, 0.0):
                        best_scores[theta] = sigma
            combined[radius] = RadiusAggregates(
                radius=radius,
                bitvector=bitvector,
                support_upper_bound=support_bound,
                score_bounds=tuple((theta, best_scores[theta]) for theta in thresholds),
            )
        trussness_bound = max(entry.trussness_bound for entry in entries)
        return cls(per_radius=combined, trussness_bound=trussness_bound)


@dataclass
class IndexNode:
    """A node of the tree index.

    A node is a *leaf* when it holds vertices directly (``vertices`` is
    non-empty and ``children`` empty), and a *non-leaf* otherwise.  Both kinds
    carry :class:`EntryAggregates` summarising everything below them.
    """

    aggregates: EntryAggregates
    vertices: tuple = ()
    children: tuple = ()
    node_id: int = 0

    @property
    def is_leaf(self) -> bool:
        """``True`` for leaf nodes."""
        return not self.children

    def subtree_vertices(self) -> list:
        """Return every vertex stored in this subtree (used by tests/serialisation)."""
        if self.is_leaf:
            return list(self.vertices)
        collected: list = []
        for child in self.children:
            collected.extend(child.subtree_vertices())
        return collected

    def subtree_size(self) -> int:
        """Number of vertices stored in the subtree."""
        if self.is_leaf:
            return len(self.vertices)
        return sum(child.subtree_size() for child in self.children)

    def height(self) -> int:
        """Height of the subtree (leaves have height 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.height() for child in self.children)

    def count_nodes(self) -> int:
        """Total number of nodes in the subtree, including this one."""
        if self.is_leaf:
            return 1
        return 1 + sum(child.count_nodes() for child in self.children)


@dataclass
class LeafVertexEntry:
    """A vertex stored in a leaf node together with its pre-computed record."""

    vertex: object
    aggregates: VertexAggregates
    entry: EntryAggregates = field(init=False)

    def __post_init__(self) -> None:
        self.entry = EntryAggregates.from_vertex(self.aggregates)


def make_leaf(entries: list[LeafVertexEntry], node_id: int) -> IndexNode:
    """Build a leaf node from vertex entries."""
    aggregates = EntryAggregates.combine([entry.entry for entry in entries])
    return IndexNode(
        aggregates=aggregates,
        vertices=tuple(entry.vertex for entry in entries),
        children=(),
        node_id=node_id,
    )


def make_internal(children: list[IndexNode], node_id: int) -> IndexNode:
    """Build a non-leaf node from child nodes."""
    aggregates = EntryAggregates.combine([child.aggregates for child in children])
    return IndexNode(
        aggregates=aggregates,
        vertices=(),
        children=tuple(children),
        node_id=node_id,
    )
