"""Offline pre-computation (Algorithm 2) and the tree index (Section V-B)."""

from repro.index.precompute import (
    DEFAULT_MAX_RADIUS,
    DEFAULT_THRESHOLDS,
    PrecomputedData,
    RadiusAggregates,
    VertexAggregates,
    precompute,
)
from repro.index.node import EntryAggregates, IndexNode, LeafVertexEntry, make_internal, make_leaf
from repro.index.tree import DEFAULT_FANOUT, DEFAULT_LEAF_CAPACITY, TreeIndex, build_tree_index
from repro.index.serialization import (
    load_index,
    precomputed_from_dict,
    precomputed_to_dict,
    save_index,
)

__all__ = [
    "DEFAULT_MAX_RADIUS",
    "DEFAULT_THRESHOLDS",
    "PrecomputedData",
    "RadiusAggregates",
    "VertexAggregates",
    "precompute",
    "EntryAggregates",
    "IndexNode",
    "LeafVertexEntry",
    "make_internal",
    "make_leaf",
    "DEFAULT_FANOUT",
    "DEFAULT_LEAF_CAPACITY",
    "TreeIndex",
    "build_tree_index",
    "load_index",
    "precomputed_from_dict",
    "precomputed_to_dict",
    "save_index",
]
