"""Persisting the offline pre-computation and tree index to disk.

Re-running Algorithm 2 on every process start would defeat the purpose of an
offline phase, so the pre-computed data (and the index shape parameters) can
be saved to a JSON document and reloaded later.  The tree itself is rebuilt
from the pre-computed data on load — reconstruction is deterministic and much
smaller than serialising every node — so a round trip yields an identical
index.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import SerializationError
from repro.graph.io import atomic_open
from repro.index.precompute import PrecomputedData, RadiusAggregates, VertexAggregates
from repro.index.tree import TreeIndex, build_tree_index
from repro.keywords.bitvector import BitVector

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Public alias of the on-disk index format version; surfaced by
#: :meth:`repro.core.engine.InfluentialCommunityEngine.describe` and the
#: service ``/v1/health`` endpoint so operators can see which index schema
#: a running process writes.
INDEX_FORMAT_VERSION = _FORMAT_VERSION


def _vertex_to_token(vertex) -> list:
    """Encode a vertex id with its type so ints and strings round-trip."""
    if isinstance(vertex, bool):
        raise SerializationError("boolean vertex ids are not supported")
    if isinstance(vertex, int):
        return ["int", vertex]
    if isinstance(vertex, str):
        return ["str", vertex]
    raise SerializationError(
        f"only int and str vertex ids can be serialised, got {type(vertex).__name__}"
    )


def _vertex_from_token(token) -> object:
    kind, value = token
    if kind == "int":
        return int(value)
    if kind == "str":
        return str(value)
    raise SerializationError(f"unknown vertex token kind {kind!r}")


def precomputed_to_dict(data: PrecomputedData) -> dict:
    """Serialise :class:`PrecomputedData` into a JSON-compatible dict."""
    vertices = []
    for vertex, aggregates in data.vertex_aggregates.items():
        radii = []
        for radius in sorted(aggregates.per_radius):
            record = aggregates.per_radius[radius]
            radii.append(
                {
                    "radius": radius,
                    "bitvector": record.bitvector.bits,
                    "support_upper_bound": record.support_upper_bound,
                    "score_bounds": [[theta, sigma] for theta, sigma in record.score_bounds],
                }
            )
        vertices.append(
            {
                "vertex": _vertex_to_token(vertex),
                "keyword_bitvector": aggregates.keyword_bitvector.bits,
                "center_trussness": aggregates.center_trussness,
                "radii": radii,
            }
        )
    edge_supports = [
        {"u": _vertex_to_token(u), "v": _vertex_to_token(v), "support": support}
        for edge, support in data.global_edge_support.items()
        for u, v in [tuple(edge)]
    ]
    return {
        "format_version": _FORMAT_VERSION,
        "max_radius": data.max_radius,
        "thresholds": list(data.thresholds),
        "num_bits": data.num_bits,
        "vertices": vertices,
        "edge_supports": edge_supports,
    }


def precomputed_from_dict(payload: dict) -> PrecomputedData:
    """Deserialise :class:`PrecomputedData` from :func:`precomputed_to_dict` output."""
    try:
        version = payload["format_version"]
        if version != _FORMAT_VERSION:
            raise SerializationError(f"unsupported precomputed-data format version {version}")
        num_bits = payload["num_bits"]
        data = PrecomputedData(
            max_radius=payload["max_radius"],
            thresholds=tuple(payload["thresholds"]),
            num_bits=num_bits,
        )
        for record in payload["vertices"]:
            vertex = _vertex_from_token(record["vertex"])
            per_radius = {}
            for radius_record in record["radii"]:
                radius = radius_record["radius"]
                per_radius[radius] = RadiusAggregates(
                    radius=radius,
                    bitvector=BitVector(radius_record["bitvector"], num_bits),
                    support_upper_bound=radius_record["support_upper_bound"],
                    score_bounds=tuple(
                        (float(theta), float(sigma))
                        for theta, sigma in radius_record["score_bounds"]
                    ),
                )
            data.vertex_aggregates[vertex] = VertexAggregates(
                vertex=vertex,
                keyword_bitvector=BitVector(record["keyword_bitvector"], num_bits),
                per_radius=per_radius,
                center_trussness=record.get("center_trussness", 2),
            )
        for edge_record in payload.get("edge_supports", []):
            u = _vertex_from_token(edge_record["u"])
            v = _vertex_from_token(edge_record["v"])
            data.global_edge_support[frozenset((u, v))] = edge_record["support"]
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed precomputed-data document: {exc}") from exc
    return data


def save_index(index: TreeIndex, path: PathLike) -> None:
    """Save an index (its pre-computed data and shape parameters) to ``path``."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "fanout": index.fanout,
        "leaf_capacity": index.leaf_capacity,
        "precomputed": precomputed_to_dict(index.precomputed),
    }
    with atomic_open(path) as handle:
        json.dump(payload, handle)


def load_index(graph, path: PathLike) -> TreeIndex:
    """Load an index saved by :func:`save_index` and rebuild the tree over ``graph``."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"index file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        precomputed = precomputed_from_dict(payload["precomputed"])
        fanout = payload["fanout"]
        leaf_capacity = payload["leaf_capacity"]
    except KeyError as exc:
        raise SerializationError(f"malformed index document: missing {exc}") from exc
    return build_tree_index(
        graph, precomputed=precomputed, fanout=fanout, leaf_capacity=leaf_capacity
    )
