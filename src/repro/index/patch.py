"""In-place patching of a built tree index after a dynamic update.

Instead of re-packing every vertex, the patcher rebuilds only the aggregates
along the leaf-to-root paths of the vertices whose pre-computed records
changed, and appends brand-new vertices to existing leaves (or a fresh leaf
under the root when they are full).  The resulting tree may *group* vertices
differently from a from-scratch build — the builder sorts by a ranking key
that patched records would shift — but every node aggregate is the exact
combination of the records below it, so the index-level pruning stays sound
and patched query answers match a freshly built index bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import IndexStateError
from repro.graph.social_network import VertexId
from repro.index.node import EntryAggregates, IndexNode, LeafVertexEntry, make_internal, make_leaf
from repro.index.tree import TreeIndex


def _collect_structure(index: TreeIndex):
    """Walk the tree once: vertex -> leaf node, id(node) -> parent node."""
    leaf_of: dict[VertexId, IndexNode] = {}
    parent_of: dict[int, IndexNode] = {}
    stack = [index.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            for vertex in node.vertices:
                leaf_of[vertex] = node
        else:
            for child in node.children:
                parent_of[id(child)] = node
                stack.append(child)
    return leaf_of, parent_of


def _recompute_aggregates(node: IndexNode, records: dict) -> None:
    """Recompute one node's aggregates from its vertices or children."""
    if node.is_leaf:
        entries = [
            LeafVertexEntry(vertex=vertex, aggregates=records[vertex]).entry
            for vertex in node.vertices
        ]
    else:
        entries = [child.aggregates for child in node.children]
    node.aggregates = EntryAggregates.combine(entries)


def patch_tree_index(
    index: TreeIndex,
    changed_vertices: Iterable[VertexId] = (),
    added_vertices: Sequence[VertexId] = (),
) -> int:
    """Refresh ``index`` in place after its pre-computed records changed.

    Parameters
    ----------
    index:
        The live index; ``index.precomputed.vertex_aggregates`` must already
        hold the refreshed records (see
        :func:`repro.dynamic.maintenance.refresh_vertex_aggregates`).
    changed_vertices:
        Vertices already in the tree whose records were refreshed.
    added_vertices:
        Vertices new to the graph, to be appended to the tree (in order).

    Returns
    -------
    int
        Number of tree nodes whose aggregates were recomputed.
    """
    records = index.precomputed.vertex_aggregates
    added = list(added_vertices)
    for vertex in added:
        if vertex not in records:
            raise IndexStateError(
                f"new vertex {vertex!r} has no pre-computed record to index"
            )

    if index.root is None:
        if not added:
            return 0
        entries = [LeafVertexEntry(vertex=vertex, aggregates=records[vertex]) for vertex in added]
        leaves = [
            make_leaf(entries[start:start + index.leaf_capacity], node_id=position)
            for position, start in enumerate(range(0, len(entries), index.leaf_capacity))
        ]
        root = leaves[0] if len(leaves) == 1 else make_internal(leaves, node_id=len(leaves))
        index.root = root
        index.num_nodes = root.count_nodes()
        return index.num_nodes

    leaf_of, parent_of = _collect_structure(index)
    dirty: dict[int, IndexNode] = {}

    for vertex in changed_vertices:
        leaf = leaf_of.get(vertex)
        if leaf is None:
            raise IndexStateError(f"vertex {vertex!r} is not covered by the index")
        dirty[id(leaf)] = leaf

    spare: IndexNode | None = None
    for vertex in added:
        # Reuse the last spare leaf across appends; re-scan only once full.
        if spare is None or len(spare.vertices) >= index.leaf_capacity:
            spare = _leaf_with_capacity(index, leaf_of, parent_of)
        spare.vertices = spare.vertices + (vertex,)
        leaf_of[vertex] = spare
        dirty[id(spare)] = spare

    patched = 0
    current = dirty
    while current:
        parents: dict[int, IndexNode] = {}
        for node in current.values():
            _recompute_aggregates(node, records)
            patched += 1
            parent = parent_of.get(id(node))
            if parent is not None:
                parents[id(parent)] = parent
        current = parents
    return patched


def _leaf_with_capacity(
    index: TreeIndex,
    leaf_of: dict,
    parent_of: dict,
) -> IndexNode:
    """Find (or create) a leaf with room for one more vertex.

    Preference order: the shallowest right-most leaf with spare capacity —
    found by walking leaves once — otherwise a new leaf hung off the root
    (promoting a leaf-root to an internal node first).  The root's fanout may
    temporarily exceed ``gamma``; a damage-triggered rebuild restores the
    packed shape.
    """
    spare = None
    stack = [index.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            if len(node.vertices) < index.leaf_capacity:
                spare = node
                break
        else:
            stack.extend(node.children)
    if spare is not None:
        return spare

    placeholder = EntryAggregates(per_radius={}, trussness_bound=2)
    new_leaf = IndexNode(
        aggregates=placeholder, vertices=(), children=(), node_id=index.num_nodes
    )
    root = index.root
    if root.is_leaf:
        new_root = IndexNode(
            aggregates=root.aggregates,
            vertices=(),
            children=(root, new_leaf),
            node_id=index.num_nodes + 1,
        )
        parent_of[id(root)] = new_root
        parent_of[id(new_leaf)] = new_root
        index.root = new_root
        index.num_nodes += 2
    else:
        root.children = root.children + (new_leaf,)
        parent_of[id(new_leaf)] = root
        index.num_nodes += 1
    return new_leaf
