"""repro — Top-L Most Influential Community Detection over social networks.

A from-scratch reproduction of *"Top-L Most Influential Community Detection
Over Social Networks"* (ICDE 2024): the TopL-ICDE problem, its diversified
variant DTopL-ICDE, the pruning strategies and tree index of the paper, plus
every substrate they rest on (k-truss / k-core decomposition, the MIA
influence model, synthetic social-network generators and dataset stand-ins).

Quick start
-----------
>>> from repro import InfluentialCommunityEngine, make_topl_query
>>> from repro.graph import datasets
>>> graph = datasets.uni(num_vertices=400, rng=1)
>>> engine = InfluentialCommunityEngine.build(graph)
>>> result = engine.topl(make_topl_query({"movies"}, k=3, radius=2, theta=0.2, top_l=3))
>>> len(result) <= 3
True
"""

from repro._version import __version__
from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.maintenance import UpdateReport
from repro.dynamic.updates import EdgeUpdate, UpdateBatch, random_update_batch
from repro.exceptions import (
    DatasetError,
    DynamicUpdateError,
    GraphError,
    IndexStateError,
    InvalidProbabilityError,
    MalformedRequestError,
    QueryParameterError,
    ReproError,
    ScenarioError,
    SerializationError,
    ServiceRequestError,
    ServingError,
    SessionExistsError,
    StoreFormatError,
    UnknownSessionError,
    UnsupportedSchemaVersionError,
    VertexNotFoundError,
)
from repro.fastgraph import CSRGraph, VertexTable
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.index.tree import TreeIndex, build_tree_index
from repro.pruning.stats import PruningConfig
from repro.query.params import DTopLQuery, TopLQuery, make_dtopl_query, make_topl_query
from repro.query.results import DTopLResult, SeedCommunity, TopLResult
from repro.query.topl import TopLProcessor, topl_icde
from repro.query.dtopl import DTopLProcessor, dtopl_icde
from repro.serve.batch import BatchQueryEngine, BatchResult, BatchStatistics, ServingConfig
from repro.serve.cache import LRUCache
from repro.service.facade import CommunityService
from repro.service.gateway import ServiceGateway

__all__ = [
    "EngineConfig",
    "InfluentialCommunityEngine",
    "EdgeUpdate",
    "UpdateBatch",
    "UpdateReport",
    "random_update_batch",
    "DatasetError",
    "DynamicUpdateError",
    "GraphError",
    "IndexStateError",
    "InvalidProbabilityError",
    "MalformedRequestError",
    "QueryParameterError",
    "ReproError",
    "ScenarioError",
    "SerializationError",
    "ServiceRequestError",
    "ServingError",
    "SessionExistsError",
    "StoreFormatError",
    "UnknownSessionError",
    "UnsupportedSchemaVersionError",
    "VertexNotFoundError",
    "CSRGraph",
    "VertexTable",
    "SocialNetwork",
    "SubgraphView",
    "TreeIndex",
    "build_tree_index",
    "PruningConfig",
    "DTopLQuery",
    "TopLQuery",
    "make_dtopl_query",
    "make_topl_query",
    "DTopLResult",
    "SeedCommunity",
    "TopLResult",
    "TopLProcessor",
    "topl_icde",
    "DTopLProcessor",
    "dtopl_icde",
    "BatchQueryEngine",
    "BatchResult",
    "BatchStatistics",
    "ServingConfig",
    "LRUCache",
    "CommunityService",
    "ServiceGateway",
    "__version__",
]
