"""Packing and opening engine state through the store container.

:func:`pack_store` lays the frozen offline phase out as container sections;
:func:`open_store` reconstructs a :class:`~repro.fastgraph.csr.CSRGraph`
whose numeric buffers are ``memoryview`` casts **into the store mmap**
(zero-copy; a heap fallback reads the file once instead), rebuilds the
pre-computed records in dense vertex order and re-derives the tree index.

Section map (version 1)
-----------------------
``meta``
    JSON: shape counts, thresholds, generation, engine epoch, packing
    :class:`~repro.core.config.EngineConfig`.
``indptr`` / ``indices`` / ``prob_out`` / ``prob_in`` / ``arc_edge`` /
``edge_u`` / ``edge_v``
    The CSR buffers, int64/float64.
``edge_support``
    int64[E]: global edge support per edge id (mirrors
    ``PrecomputedData.global_edge_support``).
``vertex_ids`` / ``keywords``
    JSON: the VertexTable interning order and per-vertex keyword sets
    (typed tokens, the :mod:`repro.index.serialization` idiom).
``kw_bits`` / ``trussness``
    Per-vertex keyword bit vectors (``bv_bytes`` each) and centre trussness
    (int64[n]).
``bv_r{r}`` / ``sup_r{r}`` / ``score_r{r}`` for each radius ``r``
    Per-radius aggregates: hop-ball bit vectors, support upper bounds
    (int64[n]) and score bounds (float64[n*m], sigma per threshold; the
    thetas live once in ``meta``).

Determinism: interning follows the graph's vertex iteration order, records
are laid out in that dense order and reconstruction re-inserts them in the
same order, so a store round trip rebuilds bit-identical aggregates and —
because :func:`~repro.index.tree.build_tree_index` sorts stably — an
identical tree.
"""

from __future__ import annotations

import dataclasses
import json
from array import array
from pathlib import Path
from typing import Union

from repro.exceptions import SerializationError, StoreFormatError
from repro.fastgraph.csr import _FLOAT, _INT, CSRGraph, freeze
from repro.fastgraph.vertex_table import VertexTable
from repro.index.precompute import PrecomputedData, RadiusAggregates, VertexAggregates
from repro.index.serialization import _vertex_from_token, _vertex_to_token
from repro.index.tree import build_tree_index
from repro.keywords.bitvector import BitVector
from repro.store.container import FORMAT_VERSION, RawStore, write_container

PathLike = Union[str, Path]


def _bv_bytes(num_bits: int) -> int:
    return (num_bits + 7) // 8


def _pack_bitvectors(bits_list, num_bits: int) -> bytes:
    width = _bv_bytes(num_bits)
    return b"".join(bits.to_bytes(width, "little") for bits in bits_list)


def _keyword_token(keyword) -> list:
    # Keywords share the vertex-id token idiom (typed int/str round trip).
    return _vertex_to_token(keyword)


class StoreHandle:
    """An opened store: reconstructed engine inputs + provenance.

    Attributes
    ----------
    csr:
        The :class:`CSRGraph` whose buffers view the store file (mmap mode)
        or the heap copy.  Read-only; the dynamic layer wraps it in a
        :class:`~repro.fastgraph.delta.DeltaCSR` overlay unchanged.
    graph:
        A thawed mutable :class:`~repro.graph.social_network.SocialNetwork`
        equal to the packed graph (the reference representation every layer
        above the kernels consumes).
    precomputed / index:
        The offline phase, reconstructed bit-identically.
    config:
        The :class:`EngineConfig` the store was packed with.
    info:
        Provenance dict: ``path``, ``format_version``, ``file_size``,
        ``residency`` (``"mmap"`` or ``"heap"``), ``generation``, ``epoch``.
    """

    def __init__(self, raw, csr, graph, precomputed, index, config, info) -> None:
        self._raw = raw  # keeps the mmap pages alive as long as the handle
        self.csr = csr
        self.graph = graph
        self.precomputed = precomputed
        self.index = index
        self.config = config
        self.info = info

    def provenance(self) -> dict:
        """The storage-provenance block surfaced by ``describe()``/health."""
        return {"store_backed": True, **self.info}


# --------------------------------------------------------------------------- #
# packing
# --------------------------------------------------------------------------- #
def pack_store(engine, path: PathLike, generation: int = 0) -> dict:
    """Pack ``engine``'s graph + offline phase into a store file at ``path``.

    Works for any engine state: the graph is re-frozen deterministically
    (for a dirty fast engine this equals ``DeltaCSR.compact()``, which is
    proven bit-identical to freezing the mutated reference graph) and the
    index records are taken as they currently stand, so a store packed after
    incremental updates reopens to exactly the current answers.

    Returns the writer's info dict (path / format_version / file_size /
    sections) extended with ``generation``.
    """
    csr = freeze(engine.graph)
    precomputed = engine.index.precomputed
    config = engine.config
    n, num_edges = csr.num_vertices, csr.num_edges
    thresholds = tuple(precomputed.thresholds)
    max_radius = precomputed.max_radius
    num_bits = precomputed.num_bits
    id_of = csr.table.id_of

    if len(precomputed.vertex_aggregates) != n:
        raise SerializationError(
            f"cannot pack store: index covers {len(precomputed.vertex_aggregates)} "
            f"vertices but the graph has {n}"
        )
    if len(precomputed.global_edge_support) != num_edges:
        raise SerializationError(
            f"cannot pack store: {len(precomputed.global_edge_support)} edge-support "
            f"entries for {num_edges} edges"
        )

    records = []
    for index in range(n):
        vertex = id_of(index)
        record = precomputed.vertex_aggregates.get(vertex)
        if record is None:
            raise SerializationError(
                f"cannot pack store: vertex {vertex!r} has no pre-computed record"
            )
        records.append(record)

    edge_support = array(_INT, bytes(8 * num_edges))
    for edge_id in range(num_edges):
        key = frozenset((id_of(csr.edge_u[edge_id]), id_of(csr.edge_v[edge_id])))
        support = precomputed.global_edge_support.get(key)
        if support is None:
            raise SerializationError(
                f"cannot pack store: edge {sorted(map(repr, key))} has no support entry"
            )
        edge_support[edge_id] = support

    meta = {
        "name": csr.name,
        "num_vertices": n,
        "num_edges": num_edges,
        "num_arcs": csr.num_arcs,
        "max_radius": max_radius,
        "thresholds": list(thresholds),
        "num_bits": num_bits,
        "bv_bytes": _bv_bytes(num_bits),
        "fanout": engine.index.fanout,
        "leaf_capacity": engine.index.leaf_capacity,
        "generation": int(generation),
        "epoch": engine.epoch,
        "config": dataclasses.asdict(config),
    }
    vertex_ids = [_vertex_to_token(id_of(index)) for index in range(n)]
    keywords = [
        sorted((_keyword_token(keyword) for keyword in csr.keywords[index]))
        for index in range(n)
    ]

    sections = [
        ("meta", json.dumps(meta).encode("utf-8")),
        ("indptr", _buffer_bytes(csr.indptr)),
        ("indices", _buffer_bytes(csr.indices)),
        ("prob_out", _buffer_bytes(csr.prob_out)),
        ("prob_in", _buffer_bytes(csr.prob_in)),
        ("arc_edge", _buffer_bytes(csr.arc_edge)),
        ("edge_u", _buffer_bytes(csr.edge_u)),
        ("edge_v", _buffer_bytes(csr.edge_v)),
        ("edge_support", edge_support.tobytes()),
        ("vertex_ids", json.dumps(vertex_ids).encode("utf-8")),
        ("keywords", json.dumps(keywords).encode("utf-8")),
        ("kw_bits", _pack_bitvectors(
            (record.keyword_bitvector.bits for record in records), num_bits
        )),
        ("trussness", array(
            _INT, (record.center_trussness for record in records)
        ).tobytes()),
    ]
    for radius in range(1, max_radius + 1):
        bv_bits = []
        supports = array(_INT, bytes(8 * n))
        scores = array(_FLOAT, bytes(8 * n * len(thresholds)))
        for index, record in enumerate(records):
            per_radius = record.per_radius.get(radius)
            if per_radius is None:
                raise SerializationError(
                    f"cannot pack store: vertex {id_of(index)!r} has no radius-"
                    f"{radius} aggregates"
                )
            bv_bits.append(per_radius.bitvector.bits)
            supports[index] = per_radius.support_upper_bound
            bound_thetas = tuple(theta for theta, _ in per_radius.score_bounds)
            if bound_thetas != thresholds:
                raise SerializationError(
                    f"cannot pack store: vertex {id_of(index)!r} radius {radius} "
                    f"score-bound thresholds {bound_thetas} != index thresholds "
                    f"{thresholds}"
                )
            base = index * len(thresholds)
            for z, (_, sigma) in enumerate(per_radius.score_bounds):
                scores[base + z] = sigma
        sections.append((f"bv_r{radius}", _pack_bitvectors(bv_bits, num_bits)))
        sections.append((f"sup_r{radius}", supports.tobytes()))
        sections.append((f"score_r{radius}", scores.tobytes()))

    info = write_container(path, sections)
    info["generation"] = int(generation)
    return info


def _buffer_bytes(buffer) -> bytes:
    # array.array and memoryview both expose .tobytes(); a store-backed
    # engine can therefore be re-packed (checkpointed) without special cases.
    return buffer.tobytes()


# --------------------------------------------------------------------------- #
# opening
# --------------------------------------------------------------------------- #
def open_store(path: PathLike, mmap: bool = True, verify: bool = True) -> StoreHandle:
    """Open a store file into a :class:`StoreHandle`.

    ``mmap=True`` (default) maps the file read-only and reconstructs every
    numeric buffer as a zero-copy ``memoryview`` cast into the mapping —
    opening cost is flat in the buffer sizes and worker processes attaching
    to the same file share physical pages.  ``mmap=False`` reads the file
    into heap memory once instead (same views over a private copy).

    ``verify=False`` skips the per-section CRC pass (structure and bounds
    are always validated); the default verifies.
    """
    raw = RawStore.open(path, use_mmap=mmap, verify=verify)
    try:
        return _reconstruct(raw)
    except StoreFormatError:
        raise
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        raise StoreFormatError(f"{path}: malformed store payload: {exc}") from exc


def _reconstruct(raw: RawStore) -> StoreHandle:
    from repro.core.config import EngineConfig

    meta = raw.json_section("meta")
    n = int(meta["num_vertices"])
    num_edges = int(meta["num_edges"])
    num_arcs = int(meta["num_arcs"])
    if num_arcs != 2 * num_edges:
        raise StoreFormatError(
            f"{raw.path}: meta declares {num_arcs} arcs for {num_edges} edges"
        )
    max_radius = int(meta["max_radius"])
    thresholds = tuple(float(theta) for theta in meta["thresholds"])
    num_bits = int(meta["num_bits"])
    width = _bv_bytes(num_bits)
    if int(meta["bv_bytes"]) != width:
        raise StoreFormatError(
            f"{raw.path}: meta bv_bytes {meta['bv_bytes']} != {width} for "
            f"num_bits {num_bits}"
        )

    vertex_tokens = raw.json_section("vertex_ids")
    if len(vertex_tokens) != n:
        raise StoreFormatError(
            f"{raw.path}: vertex_ids holds {len(vertex_tokens)} entries, expected {n}"
        )
    table = VertexTable(_vertex_from_token(token) for token in vertex_tokens)
    keyword_tokens = raw.json_section("keywords")
    if len(keyword_tokens) != n:
        raise StoreFormatError(
            f"{raw.path}: keywords holds {len(keyword_tokens)} entries, expected {n}"
        )
    keywords = tuple(
        frozenset(_vertex_from_token(token) for token in tokens)
        for tokens in keyword_tokens
    )

    csr = CSRGraph(
        name=meta.get("name", "store"),
        table=table,
        indptr=raw.typed_section("indptr", _INT, n + 1),
        indices=raw.typed_section("indices", _INT, num_arcs),
        prob_out=raw.typed_section("prob_out", _FLOAT, num_arcs),
        prob_in=raw.typed_section("prob_in", _FLOAT, num_arcs),
        arc_edge=raw.typed_section("arc_edge", _INT, num_arcs),
        edge_u=raw.typed_section("edge_u", _INT, num_edges),
        edge_v=raw.typed_section("edge_v", _INT, num_edges),
        keywords=keywords,
    )
    if n and (csr.indptr[0] != 0 or csr.indptr[n] != num_arcs):
        raise StoreFormatError(
            f"{raw.path}: indptr endpoints ({csr.indptr[0]}, {csr.indptr[n]}) "
            f"do not match {num_arcs} arcs"
        )
    graph = csr.thaw()

    id_of = table.id_of
    kw_bits = _unpack_bitvectors(raw, "kw_bits", n, width)
    trussness = raw.typed_section("trussness", _INT, n)
    per_radius_sections = {}
    for radius in range(1, max_radius + 1):
        per_radius_sections[radius] = (
            _unpack_bitvectors(raw, f"bv_r{radius}", n, width),
            raw.typed_section(f"sup_r{radius}", _INT, n),
            raw.typed_section(f"score_r{radius}", _FLOAT, n * len(thresholds)),
        )

    precomputed = PrecomputedData(
        max_radius=max_radius, thresholds=thresholds, num_bits=num_bits
    )
    m = len(thresholds)
    for index in range(n):
        vertex = id_of(index)
        per_radius = {}
        for radius in range(1, max_radius + 1):
            bv, supports, scores = per_radius_sections[radius]
            base = index * m
            per_radius[radius] = RadiusAggregates(
                radius=radius,
                bitvector=BitVector(bv[index], num_bits),
                support_upper_bound=supports[index],
                score_bounds=tuple(
                    (thresholds[z], scores[base + z]) for z in range(m)
                ),
            )
        precomputed.vertex_aggregates[vertex] = VertexAggregates(
            vertex=vertex,
            keyword_bitvector=BitVector(kw_bits[index], num_bits),
            per_radius=per_radius,
            center_trussness=trussness[index],
        )
    edge_support = raw.typed_section("edge_support", _INT, num_edges)
    for edge_id in range(num_edges):
        key = frozenset((id_of(csr.edge_u[edge_id]), id_of(csr.edge_v[edge_id])))
        precomputed.global_edge_support[key] = edge_support[edge_id]

    tree = build_tree_index(
        graph,
        precomputed=precomputed,
        fanout=int(meta["fanout"]),
        leaf_capacity=int(meta["leaf_capacity"]),
    )
    config_payload = dict(meta["config"])
    config_payload["thresholds"] = tuple(config_payload.get("thresholds", thresholds))
    config = EngineConfig(**config_payload)
    info = {
        "path": str(raw.path),
        "format_version": raw.format_version,
        "file_size": raw.file_size,
        "residency": raw.residency,
        "generation": int(meta.get("generation", 0)),
        "epoch": int(meta.get("epoch", 0)),
    }
    return StoreHandle(raw, csr, graph, precomputed, tree, config, info)


def _unpack_bitvectors(raw: RawStore, name: str, count: int, width: int) -> list:
    view = raw.section(name)
    if len(view) != count * width:
        raise StoreFormatError(
            f"{raw.path}: section {name!r} holds {len(view)} bytes, expected "
            f"{count * width} ({count} bit vectors of {width} bytes)"
        )
    return [
        int.from_bytes(view[position * width : (position + 1) * width], "little")
        for position in range(count)
    ]
