"""The store container format: magic + header + section table + aligned blobs.

Layout (all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     8  magic  b"REPROSTO"
         8     4  format_version  (u32)
        12     4  flags           (u32, reserved, 0)
        16     8  total_size      (u64, must equal the file size)
        24     4  section_count   (u32)
        28     4  padding         (zero)
        32   40*N section table: name (16 bytes, zero-padded ASCII),
                  offset (u64), length (u64), crc32 (u32), padding (u32)
         …        section payloads, each aligned to a 64-byte boundary

Sections are opaque byte runs at this layer; :mod:`repro.store.arena` gives
them meaning.  The 64-byte alignment means a ``memoryview`` over one mmap can
be ``.cast()`` into int64/float64 views of any section without copying.

Every way a file can be structurally unusable raises the typed
:class:`~repro.exceptions.StoreFormatError` — the reader validates magic,
version, declared-vs-actual size, section-table bounds and (by default)
per-section CRC32 before any payload is interpreted, so corruption can never
surface as a struct unpack crash or silently garbled buffers.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Union

from repro.exceptions import StoreFormatError
from repro.graph.io import atomic_open

PathLike = Union[str, Path]

#: File magic: 8 bytes, never changes across versions.
MAGIC = b"REPROSTO"
#: Current container format version (bump on any incompatible layout change).
FORMAT_VERSION = 1
#: Section payloads start on multiples of this (keeps int64/float64 casts
#: aligned and plays nicely with cache lines / page boundaries).
ALIGNMENT = 64

_HEADER = struct.Struct("<8sIIQII")  # magic, version, flags, total_size, count, pad
_TOC_ENTRY = struct.Struct("<16sQQII")  # name, offset, length, crc32, pad
HEADER_SIZE = _HEADER.size
TOC_ENTRY_SIZE = _TOC_ENTRY.size

#: Hard sanity cap on the section count (a corrupt header cannot make the
#: reader allocate an absurd table).
_MAX_SECTIONS = 4096


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _encode_name(name: str) -> bytes:
    raw = name.encode("ascii")
    if not raw or len(raw) > 16:
        raise StoreFormatError(f"section name {name!r} must be 1..16 ASCII bytes")
    return raw.ljust(16, b"\x00")


def write_container(path: PathLike, sections: list) -> dict:
    """Write ``sections`` (ordered ``(name, bytes)`` pairs) as a store file.

    The write is atomic (temp file + ``os.replace`` via
    :func:`repro.graph.io.atomic_open`): a crash mid-write leaves any
    pre-existing store untouched.  Returns a small info dict
    (``path`` / ``format_version`` / ``file_size`` / ``sections``).
    """
    names = [name for name, _ in sections]
    if len(set(names)) != len(names):
        raise StoreFormatError(f"duplicate section names in {names}")
    toc_end = HEADER_SIZE + TOC_ENTRY_SIZE * len(sections)
    entries = []
    cursor = toc_end
    for name, payload in sections:
        offset = _align(cursor)
        entries.append((name, offset, len(payload), zlib.crc32(payload)))
        cursor = offset + len(payload)
    total_size = cursor
    with atomic_open(path, mode="wb") as handle:
        handle.write(
            _HEADER.pack(MAGIC, FORMAT_VERSION, 0, total_size, len(sections), 0)
        )
        for name, offset, length, crc in entries:
            handle.write(_TOC_ENTRY.pack(_encode_name(name), offset, length, crc, 0))
        position = toc_end
        for (_, payload), (_, offset, _, _) in zip(sections, entries):
            handle.write(b"\x00" * (offset - position))
            handle.write(payload)
            position = offset + len(payload)
    return {
        "path": str(path),
        "format_version": FORMAT_VERSION,
        "file_size": total_size,
        "sections": len(sections),
    }


class RawStore:
    """A validated, opened store container (sections still opaque bytes).

    Holds the backing buffer — an ``mmap`` (``residency == "mmap"``) or the
    file's bytes read into memory (``residency == "heap"``) — plus the parsed
    section table.  Zero-copy slices come from :meth:`section`; every slice
    keeps the mapping alive through its ``memoryview``.
    """

    def __init__(self, path, buffer, mm, residency: str, sections: dict) -> None:
        self.path = Path(path)
        self.buffer = buffer  # memoryview over the whole file
        self._mm = mm  # the mmap object (None in heap mode); keeps pages alive
        self.residency = residency
        self.sections = sections  # name -> (offset, length, crc32)
        self.file_size = len(buffer)
        self.format_version = FORMAT_VERSION

    # ------------------------------------------------------------------ #
    # opening / validation
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: PathLike, use_mmap: bool = True, verify: bool = True) -> "RawStore":
        path = Path(path)
        if not path.exists():
            raise StoreFormatError(f"store file not found: {path}")
        file_size = os.path.getsize(path)
        if file_size < HEADER_SIZE:
            raise StoreFormatError(
                f"{path}: truncated store ({file_size} bytes, header needs {HEADER_SIZE})"
            )
        mm = None
        if use_mmap:
            with path.open("rb") as handle:
                mm = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            buffer = memoryview(mm)
        else:
            buffer = memoryview(path.read_bytes())
        try:
            sections = cls._parse(path, buffer, file_size)
            if verify:
                for name, (offset, length, crc) in sections.items():
                    actual = zlib.crc32(buffer[offset : offset + length])
                    if actual != crc:
                        raise StoreFormatError(
                            f"{path}: checksum mismatch in section {name!r} "
                            f"(stored {crc:#010x}, computed {actual:#010x})"
                        )
        except BaseException:
            buffer.release()
            if mm is not None:
                mm.close()
            raise
        return cls(path, buffer, mm, "mmap" if use_mmap else "heap", sections)

    @staticmethod
    def _parse(path: Path, buffer: memoryview, file_size: int) -> dict:
        magic, version, _flags, total_size, count, _pad = _HEADER.unpack_from(buffer, 0)
        if magic != MAGIC:
            raise StoreFormatError(
                f"{path}: not a repro store (magic {magic!r}, expected {MAGIC!r})"
            )
        if version != FORMAT_VERSION:
            raise StoreFormatError(
                f"{path}: unsupported store format version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        if total_size != file_size:
            raise StoreFormatError(
                f"{path}: header declares {total_size} bytes but the file has "
                f"{file_size} (truncated or trailing garbage)"
            )
        if count > _MAX_SECTIONS:
            raise StoreFormatError(f"{path}: implausible section count {count}")
        toc_end = HEADER_SIZE + TOC_ENTRY_SIZE * count
        if toc_end > file_size:
            raise StoreFormatError(
                f"{path}: section table ({count} entries) overruns the file"
            )
        sections: dict[str, tuple[int, int, int]] = {}
        for position in range(count):
            raw_name, offset, length, crc, _ = _TOC_ENTRY.unpack_from(
                buffer, HEADER_SIZE + TOC_ENTRY_SIZE * position
            )
            try:
                name = raw_name.rstrip(b"\x00").decode("ascii")
            except UnicodeDecodeError as exc:
                raise StoreFormatError(
                    f"{path}: section {position} has a non-ASCII name"
                ) from exc
            if not name or name in sections:
                raise StoreFormatError(
                    f"{path}: empty or duplicate section name at entry {position}"
                )
            if offset < toc_end or offset + length > file_size:
                raise StoreFormatError(
                    f"{path}: section {name!r} [{offset}, {offset + length}) "
                    f"lies outside the file (size {file_size})"
                )
            sections[name] = (offset, length, crc)
        return sections

    # ------------------------------------------------------------------ #
    # section access
    # ------------------------------------------------------------------ #
    def section(self, name: str) -> memoryview:
        """Zero-copy byte view of section ``name``."""
        try:
            offset, length, _ = self.sections[name]
        except KeyError:
            raise StoreFormatError(
                f"{self.path}: store has no section {name!r} "
                f"(present: {sorted(self.sections)})"
            ) from None
        return self.buffer[offset : offset + length]

    def typed_section(self, name: str, typecode: str, expected_items: int) -> memoryview:
        """Section ``name`` cast to ``typecode`` ('q' or 'd'), length-checked."""
        view = self.section(name)
        itemsize = 8  # both typecodes are 64-bit
        if len(view) != expected_items * itemsize:
            raise StoreFormatError(
                f"{self.path}: section {name!r} holds {len(view)} bytes, "
                f"expected {expected_items * itemsize} ({expected_items} x {typecode})"
            )
        return view.cast(typecode)

    def json_section(self, name: str):
        """Section ``name`` parsed as UTF-8 JSON."""
        view = self.section(name)
        try:
            return json.loads(bytes(view).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"{self.path}: section {name!r} is not valid JSON: {exc}"
            ) from exc


def inspect_store(path: PathLike) -> dict:
    """Structural summary of a store file (header, section table, meta).

    Validates the container structure and checksums; raises
    :class:`~repro.exceptions.StoreFormatError` on any problem.
    """
    raw = RawStore.open(path, use_mmap=False, verify=True)
    meta = raw.json_section("meta") if "meta" in raw.sections else {}
    return {
        "path": str(raw.path),
        "format_version": raw.format_version,
        "file_size": raw.file_size,
        "sections": [
            {"name": name, "offset": offset, "length": length, "crc32": f"{crc:#010x}"}
            for name, (offset, length, crc) in raw.sections.items()
        ],
        "meta": meta,
    }


def verify_store(path: PathLike) -> dict:
    """Fully verify a store: structure, checksums *and* payload decode.

    Beyond :func:`inspect_store` this also reconstructs the graph and index
    records (heap mode), so a store that verifies clean is guaranteed to
    open.  Returns a summary dict; raises
    :class:`~repro.exceptions.StoreFormatError` on any problem.
    """
    from repro.store.arena import open_store

    handle = open_store(path, mmap=False, verify=True)
    return {
        "path": str(path),
        "ok": True,
        "format_version": FORMAT_VERSION,
        "file_size": handle.info["file_size"],
        "generation": handle.info["generation"],
        "num_vertices": handle.csr.num_vertices,
        "num_edges": handle.csr.num_edges,
        "index": handle.index.describe(),
    }
