"""``repro.store`` — persistent binary index + mmap shared arena.

The JSON serialisation layers (:mod:`repro.graph.io`,
:mod:`repro.index.serialization`) make graphs and indexes *portable*, but a
cold start through them still pays to parse the whole document and re-intern
every object.  This package stores the frozen offline phase in a versioned,
checksummed binary container instead:

* the :class:`~repro.fastgraph.csr.CSRGraph` buffers (indptr / indices /
  per-direction probabilities / edge ids),
* the :class:`~repro.fastgraph.vertex_table.VertexTable` interning and the
  per-vertex keyword sets,
* the pre-computed index records (keyword bit vectors, support and score
  bounds per radius, centre trussness, global edge supports),

laid out 64-byte aligned so every numeric buffer reconstructs as a
**zero-copy view over a single ``mmap``** (stdlib ``memoryview`` casts; numpy
``frombuffer`` views work on the same buffers when numpy is present).
Opening a store therefore skips the offline phase entirely, worker processes
attach to the same physical pages instead of each rebuilding a private copy,
and a crash mid-write can never corrupt a store (the writer goes through
:func:`repro.graph.io.atomic_open`).

Public surface
--------------
:func:`pack_store`
    Freeze an engine's graph + index records into a store file.
:func:`open_store`
    Open a store file into a :class:`StoreHandle` (csr / graph / index /
    config), mmap-backed by default with a heap fallback.
:func:`inspect_store` / :func:`verify_store`
    Structural and checksum inspection (also exposed as
    ``repro store inspect|verify``).

Every structural problem — truncation, foreign magic, unsupported version,
checksum mismatch, out-of-bounds section table — raises the typed
:class:`repro.exceptions.StoreFormatError` (wire code ``STORE_FORMAT_INVALID``).
"""

from repro.store.container import (
    FORMAT_VERSION,
    MAGIC,
    inspect_store,
    verify_store,
)
from repro.store.arena import StoreHandle, open_store, pack_store

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "StoreHandle",
    "inspect_store",
    "open_store",
    "pack_store",
    "verify_store",
]
