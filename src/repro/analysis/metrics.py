"""Community quality metrics.

The paper evaluates result *meaningfulness* (RQ3) qualitatively through the
Figure 5 case study; downstream users typically also want quantitative
quality measures for the communities a query returns.  This module provides
the standard ones, computed against the parent social network:

* structural cohesion — internal density, minimum internal degree, minimum
  edge support, conductance of the community cut;
* query relevance — keyword coverage of the community and of its influenced
  users;
* influence efficiency — influential score per seed member (the
  coupons-per-user view used by the case-study bench).

All functions accept a :class:`~repro.query.results.SeedCommunity` (or a raw
vertex set) plus the graph, and return plain floats/dicts so the results are
easy to tabulate with :func:`repro.workloads.reporting.format_table`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.social_network import SocialNetwork
from repro.graph.subgraph import SubgraphView
from repro.query.results import SeedCommunity
from repro.truss.support import edge_support


def _vertex_set(community) -> frozenset:
    if isinstance(community, SeedCommunity):
        return community.vertices
    return frozenset(community)


def internal_density(graph: SocialNetwork, community) -> float:
    """Return the edge density of the community's induced subgraph (0..1)."""
    vertices = _vertex_set(community)
    size = len(vertices)
    if size < 2:
        return 0.0
    view = SubgraphView(graph, vertices)
    possible = size * (size - 1) / 2
    return view.num_edges() / possible


def minimum_internal_degree(graph: SocialNetwork, community) -> int:
    """Return the smallest degree of a member inside the community."""
    vertices = _vertex_set(community)
    if not vertices:
        return 0
    view = SubgraphView(graph, vertices)
    return min(view.degree(v) for v in vertices)


def minimum_edge_support(graph: SocialNetwork, community) -> int:
    """Return the smallest edge support inside the community.

    For a community satisfying the k-truss constraint this is at least
    ``k - 2`` over the edges of the spanning truss; measured here over *all*
    induced edges, it quantifies how far the community is from a clique.
    """
    vertices = _vertex_set(community)
    view = SubgraphView(graph, vertices)
    supports = edge_support(view)
    return min(supports.values(), default=0)


def conductance(graph: SocialNetwork, community) -> float:
    """Return the conductance of the community cut (lower = better separated).

    Defined as ``cut / min(vol(S), vol(V - S))`` where ``cut`` counts edges
    leaving the community and ``vol`` sums degrees.  Returns 0 for empty or
    whole-graph communities.
    """
    vertices = _vertex_set(community)
    if not vertices or len(vertices) >= graph.num_vertices():
        return 0.0
    cut = 0
    volume_inside = 0
    for vertex in vertices:
        if not graph.has_vertex(vertex):
            raise GraphError(f"community vertex {vertex!r} is not in the graph")
        volume_inside += graph.degree(vertex)
        cut += sum(1 for neighbour in graph.neighbors(vertex) if neighbour not in vertices)
    volume_outside = 2 * graph.num_edges() - volume_inside
    denominator = min(volume_inside, volume_outside)
    if denominator == 0:
        return 0.0
    return cut / denominator


def keyword_coverage(graph: SocialNetwork, community, keywords: Iterable[str]) -> float:
    """Return the fraction of community members carrying at least one query keyword."""
    vertices = _vertex_set(community)
    if not vertices:
        return 0.0
    query = frozenset(keywords)
    matching = sum(1 for vertex in vertices if graph.keywords(vertex) & query)
    return matching / len(vertices)


def influenced_keyword_coverage(
    graph: SocialNetwork, community: SeedCommunity, keywords: Iterable[str]
) -> float:
    """Return the fraction of *influenced* users carrying a query keyword.

    Useful for judging whether the influence lands on users plausibly
    interested in the promoted topics; requires a scored
    :class:`SeedCommunity` (the influenced community is part of it).
    """
    query = frozenset(keywords)
    influenced = community.influenced.influenced_only
    if not influenced:
        return 0.0
    matching = sum(1 for vertex in influenced if graph.keywords(vertex) & query)
    return matching / len(influenced)


def influence_efficiency(community: SeedCommunity) -> float:
    """Return the influential score per seed member (``sigma(g) / |V(g)|``)."""
    if not len(community):
        return 0.0
    return community.score / len(community)


@dataclass(frozen=True)
class CommunityQualityReport:
    """All quality metrics of one community, bundled for tabular reporting."""

    center: object
    size: int
    score: float
    density: float
    min_internal_degree: int
    min_edge_support: int
    conductance: float
    keyword_coverage: float
    influence_efficiency: float

    def as_row(self) -> dict:
        """Return a flat dict for :func:`repro.workloads.reporting.format_table`."""
        return {
            "center": self.center,
            "size": self.size,
            "score": round(self.score, 3),
            "density": round(self.density, 3),
            "min_deg": self.min_internal_degree,
            "min_sup": self.min_edge_support,
            "conductance": round(self.conductance, 3),
            "kw_coverage": round(self.keyword_coverage, 3),
            "score_per_member": round(self.influence_efficiency, 3),
        }


def quality_report(
    graph: SocialNetwork, community: SeedCommunity, keywords: Iterable[str]
) -> CommunityQualityReport:
    """Compute every quality metric for one scored community."""
    return CommunityQualityReport(
        center=community.center,
        size=len(community),
        score=community.score,
        density=internal_density(graph, community),
        min_internal_degree=minimum_internal_degree(graph, community),
        min_edge_support=minimum_edge_support(graph, community),
        conductance=conductance(graph, community),
        keyword_coverage=keyword_coverage(graph, community, keywords),
        influence_efficiency=influence_efficiency(community),
    )
