"""Comparing query results across methods, parameters, or runs.

Used by the effectiveness analyses (and handy when validating changes to the
algorithms): overlap structure of a result set, agreement between two
rankings, and precision against a reference (e.g. brute-force) answer.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.query.results import SeedCommunity, TopLResult


def jaccard(first: frozenset, second: frozenset) -> float:
    """Return the Jaccard similarity of two vertex sets (1.0 for two empty sets)."""
    if not first and not second:
        return 1.0
    union = first | second
    if not union:
        return 1.0
    return len(first & second) / len(union)


def seed_overlap_matrix(communities: Sequence[SeedCommunity]) -> list[list[float]]:
    """Return the pairwise Jaccard matrix of the communities' *seed* vertex sets."""
    size = len(communities)
    matrix = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            matrix[i][j] = jaccard(communities[i].vertices, communities[j].vertices)
    return matrix


def influence_overlap_matrix(communities: Sequence[SeedCommunity]) -> list[list[float]]:
    """Return the pairwise Jaccard matrix of the communities' *influenced* vertex sets.

    High off-diagonal values are exactly the redundancy DTopL-ICDE is designed
    to avoid; `examples/diversified_campaign.py` prints this matrix.
    """
    size = len(communities)
    matrix = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            matrix[i][j] = jaccard(
                communities[i].influenced.vertices, communities[j].influenced.vertices
            )
    return matrix


@dataclass(frozen=True)
class RankingAgreement:
    """Agreement between two top-L rankings of communities."""

    matched: int
    expected: int
    precision: float
    score_gap: float

    def as_row(self) -> dict:
        return {
            "matched": self.matched,
            "expected": self.expected,
            "precision": round(self.precision, 4),
            "score_gap": round(self.score_gap, 6),
        }


def compare_rankings(result: TopLResult, reference: TopLResult) -> RankingAgreement:
    """Compare a result against a reference ranking (typically brute force).

    ``precision`` is the fraction of reference communities (by vertex set)
    that also appear in ``result``; ``score_gap`` is the largest absolute
    difference between the two score lists, position by position (0 when the
    rankings agree on scores).
    """
    reference_sets = {community.vertices for community in reference}
    result_sets = {community.vertices for community in result}
    matched = len(reference_sets & result_sets)
    expected = len(reference_sets)
    precision = matched / expected if expected else 1.0
    gaps = [
        abs(a - b)
        for a, b in zip(sorted(result.scores, reverse=True), sorted(reference.scores, reverse=True))
    ]
    length_difference = abs(len(result.scores) - len(reference.scores))
    score_gap = max(gaps, default=0.0) if not length_difference else float("inf")
    return RankingAgreement(
        matched=matched, expected=expected, precision=precision, score_gap=score_gap
    )


def coverage_gain_curve(communities: Sequence[SeedCommunity]) -> list[float]:
    """Return the cumulative diversity score after adding each community in order.

    The curve is concave for any ordering (submodularity); plotting it for the
    TopL-ICDE ranking vs the DTopL-ICDE selection visualises how much reach
    the diversified selection buys earlier.
    """
    best: dict = {}
    curve: list[float] = []
    total = 0.0
    for community in communities:
        for vertex, probability in community.influenced.cpp.items():
            covered = best.get(vertex, 0.0)
            if probability > covered:
                total += probability - covered
                best[vertex] = probability
        curve.append(total)
    return curve
