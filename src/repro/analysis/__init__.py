"""Result analysis: community quality metrics and cross-method comparisons."""

from repro.analysis.metrics import (
    CommunityQualityReport,
    conductance,
    influence_efficiency,
    influenced_keyword_coverage,
    internal_density,
    keyword_coverage,
    minimum_edge_support,
    minimum_internal_degree,
    quality_report,
)
from repro.analysis.comparison import (
    RankingAgreement,
    compare_rankings,
    coverage_gain_curve,
    influence_overlap_matrix,
    jaccard,
    seed_overlap_matrix,
)

__all__ = [
    "CommunityQualityReport",
    "conductance",
    "influence_efficiency",
    "influenced_keyword_coverage",
    "internal_density",
    "keyword_coverage",
    "minimum_edge_support",
    "minimum_internal_degree",
    "quality_report",
    "RankingAgreement",
    "compare_rankings",
    "coverage_gain_curve",
    "influence_overlap_matrix",
    "jaccard",
    "seed_overlap_matrix",
]
