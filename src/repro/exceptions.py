"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate *which*
subsystem rejected the input: graph construction, query parameters, index
state, or dataset loading.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph operation receives structurally invalid input."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class InvalidProbabilityError(GraphError):
    """Raised when an edge propagation probability is outside ``[0, 1]``."""

    def __init__(self, value: float) -> None:
        super().__init__(f"propagation probability must be in [0, 1], got {value!r}")
        self.value = value


class QueryParameterError(ReproError):
    """Raised when TopL-ICDE / DTopL-ICDE query parameters are invalid."""


class IndexError_(ReproError):
    """Raised when the tree index is queried in an inconsistent state.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`; exported as ``IndexStateError`` from the package root.
    """


IndexStateError = IndexError_


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, loaded, or parsed."""


class SerializationError(ReproError):
    """Raised when an index or graph cannot be serialised or deserialised."""


class StoreFormatError(SerializationError):
    """Raised when a ``repro.store`` container is structurally invalid.

    Covers every way a store file can be unusable — truncation, a foreign
    magic, an unsupported format version, a checksum mismatch, or a section
    table pointing outside the file.  The store reader validates all of these
    up front so corruption surfaces as this typed error, never as a struct
    unpack crash or silently garbled buffers.
    """


class ServingError(ReproError):
    """Raised when the batch serving layer is misconfigured or misused."""


class DynamicUpdateError(ReproError):
    """Raised when an edge edit script is malformed or inapplicable.

    Edit scripts have sequential semantics, so validation simulates the whole
    script against the current graph before anything is mutated: a failing
    script leaves the engine untouched.
    """


class ScenarioError(ReproError):
    """Raised when a scenario specification is malformed or a gate fails.

    Scenario specs (see :mod:`repro.scenarios.spec`) are validated strictly —
    unknown sections or keys, out-of-domain values, and unloadable spec files
    all raise this; the pipeline also raises it when a scenario's declared
    gates (equivalence, non-degeneracy) do not hold.
    """


class ServiceRequestError(ReproError):
    """Raised when a request is rejected at the service API boundary.

    Subclasses distinguish *why* the boundary rejected it; each maps to a
    stable wire error code (see :mod:`repro.service.errors`).
    """


class MalformedRequestError(ServiceRequestError):
    """Raised when a request document cannot be parsed or fails validation."""


class UnsupportedSchemaVersionError(ServiceRequestError):
    """Raised when a request carries a ``schema_version`` this build cannot serve."""

    def __init__(self, version: object, supported: int) -> None:
        super().__init__(
            f"unsupported schema_version {version!r}; this build speaks {supported}"
        )
        self.version = version
        self.supported = supported


class UnknownSessionError(ServiceRequestError):
    """Raised when a request names a session the service does not host."""

    def __init__(self, session: str) -> None:
        super().__init__(f"unknown session {session!r}")
        self.session = session


class SessionExistsError(ServiceRequestError):
    """Raised when a build would overwrite an existing session without ``replace``."""

    def __init__(self, session: str) -> None:
        super().__init__(
            f"session {session!r} already exists (pass replace=true to rebuild it)"
        )
        self.session = session
