"""Community-level pruning rules (Lemmas 1–4).

These rules decide whether a candidate r-hop subgraph ``hop(v_i, r)`` (or any
candidate seed community) can be discarded without extracting and scoring a
seed community from it.  Every rule is *safe*: it only prunes candidates that
provably cannot contribute a top-L answer.

* **Keyword pruning** (Lemma 1): prune when a vertex of the candidate carries
  no query keyword.  At the candidate level we apply the practically useful
  form — the *centre* must carry a query keyword, and at least one vertex must
  do so — because vertices without query keywords are simply excluded from the
  seed community rather than invalidating the whole candidate.
* **Support pruning** (Lemma 2): prune when the candidate cannot contain an
  edge of support >= k - 2 (using pre-computed support upper bounds).
* **Radius pruning** (Lemma 3): prune vertices farther than ``r`` hops from
  the centre (structural; applied by working on ``hop(v_i, r)``).
* **Influential score pruning** (Lemma 4): prune when an upper bound of the
  candidate's influential score does not exceed the current L-th best score.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.social_network import SocialNetwork, VertexId
from repro.graph.subgraph import SubgraphView
from repro.graph.traversal import hop_distances_within
from repro.keywords.bitvector import BitVector


# --------------------------------------------------------------------------- #
# Lemma 1 — keyword pruning
# --------------------------------------------------------------------------- #
def center_has_query_keyword(
    graph: SocialNetwork, center: VertexId, keywords: frozenset
) -> bool:
    """Return ``True`` when the candidate centre carries a query keyword.

    A seed community contains its centre (Definition 2), so a centre without
    any query keyword can never seed a valid community — the candidate is
    pruned (Lemma 1 applied to the centre vertex).
    """
    return bool(graph.keywords(center) & keywords)


def keyword_prune_by_bitvector(candidate_bv: BitVector, query_bv: BitVector) -> bool:
    """Return ``True`` when the candidate can be pruned by its keyword signature.

    The candidate signature aggregates the keyword sets of every vertex in the
    candidate subgraph; a zero intersection with ``Q.BV`` proves that *no*
    vertex carries a query keyword, so no seed community can exist inside it.
    """
    return not candidate_bv.intersects(query_bv)


def has_any_query_keyword(view: SubgraphView, keywords: frozenset) -> bool:
    """Exact (non-hashed) version of the candidate-level keyword test."""
    return any(view.keywords(v) & keywords for v in view)


# --------------------------------------------------------------------------- #
# Lemma 2 — support pruning
# --------------------------------------------------------------------------- #
def support_prune(support_upper_bound: int, k: int) -> bool:
    """Return ``True`` when a candidate can be pruned by its support bound.

    ``support_upper_bound`` is the maximum edge-support upper bound inside the
    candidate subgraph.  If even that maximum is below ``k - 2``, no edge of a
    k-truss can exist inside the candidate (Lemma 2 / the ``v_i.ub_sup_r``
    aggregate of Algorithm 2).
    """
    return support_upper_bound < k - 2


def edge_support_prune(edge_bounds: Iterable[int], k: int) -> bool:
    """Return ``True`` when every edge bound is below ``k - 2`` (no qualifying edge)."""
    required = k - 2
    return all(bound < required for bound in edge_bounds)


def trussness_prune(center_trussness_bound: int, k: int) -> bool:
    """Tightened support pruning using the centre's trussness in the full graph.

    A k-truss seed community centred at ``v`` contains at least one edge
    incident to ``v`` whose support inside the community is at least ``k - 2``;
    that edge's trussness in ``G`` (and hence ``v``'s vertex trussness) is then
    at least ``k``.  A centre whose trussness bound is below ``k`` can be
    pruned.  At the index level the bound is the maximum trussness over the
    entry's subtree.
    """
    return center_trussness_bound < k


# --------------------------------------------------------------------------- #
# Lemma 3 — radius pruning
# --------------------------------------------------------------------------- #
def radius_violations(view: SubgraphView, center: VertexId, radius: int) -> frozenset:
    """Return the vertices of ``view`` farther than ``radius`` hops from ``center``.

    Distances are measured inside the view; the returned vertices can be
    removed from the candidate without losing any valid seed community
    (Lemma 3).
    """
    reachable = hop_distances_within(view, center, max_depth=radius)
    return frozenset(view.vertices) - frozenset(reachable)


def radius_prune(view: SubgraphView, center: VertexId, radius: int) -> bool:
    """Return ``True`` if the entire candidate violates the radius constraint.

    This only happens when the centre reaches *no* other vertex within the
    radius, i.e. the candidate cannot contain a non-trivial community.
    """
    reachable = hop_distances_within(view, center, max_depth=radius)
    return len(reachable) <= 1


# --------------------------------------------------------------------------- #
# Lemma 4 — influential score pruning
# --------------------------------------------------------------------------- #
def score_prune(score_upper_bound: float, current_lth_score: float) -> bool:
    """Return ``True`` when the candidate can be pruned by its score bound.

    ``current_lth_score`` is the smallest score among the L communities found
    so far (``-inf`` until L candidates exist).  A candidate whose upper bound
    does not exceed it cannot enter the top-L (Lemma 4).
    """
    return score_upper_bound <= current_lth_score


def select_score_bound(
    threshold_bounds: Iterable[tuple[float, float]], theta: float
) -> float:
    """Select the applicable pre-computed score bound for an online threshold.

    ``threshold_bounds`` is the pre-computed list of ``(theta_z, sigma_z)``
    pairs (ascending in ``theta_z``).  For an online ``theta`` in
    ``[theta_z, theta_{z+1})`` the paper uses ``sigma_z`` — the score at the
    largest pre-selected threshold not exceeding ``theta`` — as the upper
    bound.  When ``theta`` is smaller than every pre-selected threshold no
    finite bound applies and ``+inf`` is returned (never prune).
    """
    best = float("inf")
    best_theta = None
    for theta_z, sigma_z in threshold_bounds:
        if theta_z <= theta and (best_theta is None or theta_z > best_theta):
            best_theta = theta_z
            best = sigma_z
    return best
