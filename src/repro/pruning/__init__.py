"""Pruning strategies: community-level, index-level, and diversity-score rules."""

from repro.pruning.stats import ABLATION_CONFIGS, PruningConfig, PruningCounters
from repro.pruning.rules import (
    center_has_query_keyword,
    edge_support_prune,
    has_any_query_keyword,
    keyword_prune_by_bitvector,
    radius_prune,
    radius_violations,
    score_prune,
    select_score_bound,
    support_prune,
    trussness_prune,
)
from repro.pruning.index_rules import (
    entry_priority,
    index_keyword_prune,
    index_score_prune,
    index_support_prune,
)
from repro.pruning.diversity import (
    apply_to_coverage,
    coverage_map,
    diversity_prune,
    diversity_score,
    marginal_gain,
)

__all__ = [
    "ABLATION_CONFIGS",
    "PruningConfig",
    "PruningCounters",
    "center_has_query_keyword",
    "edge_support_prune",
    "has_any_query_keyword",
    "keyword_prune_by_bitvector",
    "radius_prune",
    "radius_violations",
    "score_prune",
    "select_score_bound",
    "support_prune",
    "trussness_prune",
    "entry_priority",
    "index_keyword_prune",
    "index_score_prune",
    "index_support_prune",
    "apply_to_coverage",
    "coverage_map",
    "diversity_prune",
    "diversity_score",
    "marginal_gain",
]
