"""Pruning configuration and statistics.

The ablation study (Figure 4) runs the online algorithm with different pruning
combinations — keyword only, keyword + support, keyword + support + score —
and reports both the number of pruned candidate communities and the wall-clock
time.  :class:`PruningConfig` toggles the individual rules and
:class:`PruningCounters` accumulates per-rule counts, which the query layer
exposes through :class:`repro.query.results.QueryStatistics`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PruningConfig:
    """Which pruning rules are active.

    The defaults enable everything (the full method of the paper).  Radius
    pruning is structural — it limits the candidate subgraph to ``hop(v, r)``
    — and is always applied; it has no toggle because disabling it would
    change the problem definition, not just the optimisation.
    """

    keyword: bool = True
    support: bool = True
    score: bool = True

    @classmethod
    def all_enabled(cls) -> "PruningConfig":
        """Full pruning stack (the paper's default method)."""
        return cls(keyword=True, support=True, score=True)

    @classmethod
    def keyword_only(cls) -> "PruningConfig":
        """Ablation level 1: keyword pruning only."""
        return cls(keyword=True, support=False, score=False)

    @classmethod
    def keyword_and_support(cls) -> "PruningConfig":
        """Ablation level 2: keyword + support pruning."""
        return cls(keyword=True, support=True, score=False)

    @classmethod
    def none_enabled(cls) -> "PruningConfig":
        """No optional pruning at all (used by brute-force comparisons)."""
        return cls(keyword=False, support=False, score=False)

    def label(self) -> str:
        """Human-readable name used in ablation reports."""
        parts = []
        if self.keyword:
            parts.append("keyword")
        if self.support:
            parts.append("support")
        if self.score:
            parts.append("score")
        return " + ".join(parts) if parts else "no pruning"


#: The three configurations of the Figure 4 ablation, in paper order.
ABLATION_CONFIGS = (
    PruningConfig.keyword_only(),
    PruningConfig.keyword_and_support(),
    PruningConfig.all_enabled(),
)


@dataclass
class PruningCounters:
    """Mutable per-query counters of pruned candidates, by rule."""

    keyword: int = 0
    support: int = 0
    radius: int = 0
    score: int = 0
    index_keyword: int = 0
    index_support: int = 0
    index_score: int = 0
    diversity: int = 0

    @property
    def community_level(self) -> int:
        """Candidates pruned at the community (leaf) level."""
        return self.keyword + self.support + self.radius + self.score

    @property
    def index_level(self) -> int:
        """Index entries pruned before their subtrees were visited."""
        return self.index_keyword + self.index_support + self.index_score

    @property
    def total(self) -> int:
        """All pruned candidates/entries."""
        return self.community_level + self.index_level + self.diversity

    def merge(self, other: "PruningCounters") -> None:
        """Accumulate another counter set into this one."""
        self.keyword += other.keyword
        self.support += other.support
        self.radius += other.radius
        self.score += other.score
        self.index_keyword += other.index_keyword
        self.index_support += other.index_support
        self.index_score += other.index_score
        self.diversity += other.diversity

    def as_dict(self) -> dict:
        """Return the counters as a flat dict."""
        return {
            "keyword": self.keyword,
            "support": self.support,
            "radius": self.radius,
            "score": self.score,
            "index_keyword": self.index_keyword,
            "index_support": self.index_support,
            "index_score": self.index_score,
            "diversity": self.diversity,
            "community_level": self.community_level,
            "index_level": self.index_level,
            "total": self.total,
        }
