"""Diversity score computation and pruning (Section VII, Lemma 9).

The DTopL-ICDE objective is the diversity score

    D(S) = sum_{v in V(G)} max_{g in S} cpp(g, v),

which is monotone and submodular in ``S``.  The greedy refinement therefore
admits CELF-style *lazy evaluation*: a community's previously computed
marginal gain ``Delta_g(S')`` for an older ``S' ⊆ S`` upper-bounds its current
gain ``Delta_g(S)``, so candidates whose stale bound already loses to the best
fresh gain need not be re-evaluated (Lemma 9).

The functions here operate on :class:`~repro.influence.propagation.InfluencedCommunity`
objects, whose ``cpp`` maps are exactly the per-community contributions the
diversity score aggregates.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.influence.propagation import InfluencedCommunity


def diversity_score(communities: Iterable[InfluencedCommunity]) -> float:
    """Return ``D(S)`` for a collection of influenced communities (Eq. 6).

    The per-vertex maxima are summed in sorted value order: the ``cpp`` maps
    iterate in backend-dependent discovery order, and float addition is not
    associative, so a naive sum could differ between backends in the last
    ulp.  The sorted multiset of contributions is backend-independent, which
    keeps the reported score bit-identical — the equivalence invariant.
    """
    return sum(sorted(coverage_map(communities).values()))


def coverage_map(communities: Iterable[InfluencedCommunity]) -> dict:
    """Return ``vertex -> max cpp`` over the given communities.

    The incremental greedy keeps this map up to date so marginal gains are
    computed in time proportional to the candidate's influenced community,
    not to the whole selection.
    """
    best: dict = {}
    for community in communities:
        for vertex, probability in community.cpp.items():
            if probability > best.get(vertex, 0.0):
                best[vertex] = probability
    return best


def marginal_gain(candidate: InfluencedCommunity, coverage: dict) -> float:
    """Return ``Delta_D_g(S) = D(S ∪ {g}) - D(S)`` given the coverage map of ``S``.

    Gains feed the greedy's selection heap, so like :func:`diversity_score`
    they are summed in sorted order to stay independent of the ``cpp``
    iteration order of the backend that produced the candidate.
    """
    improvements = []
    for vertex, probability in candidate.cpp.items():
        covered = coverage.get(vertex, 0.0)
        if probability > covered:
            improvements.append(probability - covered)
    return sum(sorted(improvements))


def apply_to_coverage(candidate: InfluencedCommunity, coverage: dict) -> dict:
    """Merge ``candidate`` into ``coverage`` in place and return it."""
    for vertex, probability in candidate.cpp.items():
        if probability > coverage.get(vertex, 0.0):
            coverage[vertex] = probability
    return coverage


def diversity_prune(stale_gain_bound: float, best_fresh_gain: float) -> bool:
    """Lemma 9: prune a candidate whose stale gain bound loses to a fresh gain.

    ``stale_gain_bound`` is the candidate's marginal gain computed against an
    *earlier* (subset) selection — by submodularity an upper bound on its
    current gain.  If it is already below the best gain computed against the
    *current* selection, the candidate cannot win this round.
    """
    return stale_gain_bound < best_fresh_gain


def is_monotone_increase(previous_score: float, new_score: float) -> bool:
    """Check the monotonicity property used in tests: adding a community never hurts."""
    return new_score >= previous_score - 1e-9
