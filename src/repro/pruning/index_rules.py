"""Index-level pruning rules (Lemmas 5–7).

A non-leaf index entry ``N_i`` aggregates, per radius ``r``, the keyword
signatures, support upper bounds and pre-computed score bounds of every vertex
under it.  A pruned entry discards its entire subtree, which is where the
index traversal gets its speed-up.

Every function takes the entry's aggregate values rather than the entry
object itself, so the rules are unit-testable without building an index.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.keywords.bitvector import BitVector
from repro.pruning.rules import select_score_bound


def index_keyword_prune(entry_bv: BitVector, query_bv: BitVector) -> bool:
    """Lemma 5: prune an entry whose aggregated signature misses every query bit.

    ``entry_bv`` is the OR of the r-hop signatures of every vertex under the
    entry; a zero AND with ``Q.BV`` proves no subtree vertex can contribute a
    keyword-qualified community.
    """
    return not entry_bv.intersects(query_bv)


def index_support_prune(entry_support_bound: int, k: int) -> bool:
    """Lemma 6: prune an entry whose maximum support bound is below ``k - 2``.

    The paper states the comparison as ``N_i.ub_sup_r < k``; since
    ``ub_sup_r`` bounds edge supports and a k-truss needs support ``k - 2``,
    the safe (and tighter-to-correctness) comparison is against ``k - 2``,
    which is what we use.
    """
    return entry_support_bound < k - 2


def index_score_prune(
    entry_threshold_bounds: Iterable[tuple[float, float]],
    theta: float,
    current_lth_score: float,
) -> bool:
    """Lemma 7: prune an entry whose score bound cannot beat the current L-th score.

    ``entry_threshold_bounds`` are the aggregated ``(theta_z, max sigma_z)``
    pairs of the entry; the applicable bound for the online ``theta`` is
    selected exactly like at the community level.
    """
    bound = select_score_bound(entry_threshold_bounds, theta)
    return bound <= current_lth_score


def entry_priority(
    entry_threshold_bounds: Iterable[tuple[float, float]], theta: float
) -> float:
    """Return the heap key of an index entry (its applicable score bound).

    Algorithm 3 visits entries in decreasing order of their influential score
    upper bound so that promising subtrees are explored first and the global
    termination test (``key <= sigma_L``) fires as early as possible.
    """
    return select_score_bound(entry_threshold_bounds, theta)
