"""CLI: the `repro scenario` subcommand (list / run / report / validate)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios.catalog import scenario_names
from repro.workloads.reporting import bench_envelope


def tiny_scenario_document(name="cli-tiny", **gate_overrides) -> dict:
    gates = {"require_equivalence": True, "min_nonempty_results": 1}
    gates.update(gate_overrides)
    return {
        "scenario": {"name": name, "seed": 5},
        "graph": {
            "recipe": "planted",
            "num_vertices": 90,
            "keyword_domain": 8,
            "params": {"communities": 3, "intra_probability": 0.3},
        },
        "probabilities": {"model": "weighted_cascade"},
        "trace": {"kind": "bursty", "operations": 6, "update_share": 0.2},
        "queries": {"theta": 0.05, "num_keywords": 3, "top_l": 2},
        "gates": gates,
    }


def test_scenario_list_prints_the_catalog(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_scenario_list_smoke_only(capsys):
    assert main(["scenario", "list", "--smoke"]) == 0
    out = capsys.readouterr().out
    smoke = set(scenario_names(smoke_only=True))
    for name in scenario_names():
        assert (name in out) == (name in smoke)


def test_scenario_run_spec_file_writes_valid_document(tmp_path, capsys):
    spec_path = tmp_path / "tiny.json"
    spec_path.write_text(json.dumps(tiny_scenario_document()))
    out_path = tmp_path / "BENCH_scenarios.json"
    assert (
        main(["scenario", "run", "--spec", str(spec_path), "--out", str(out_path)])
        == 0
    )
    out = capsys.readouterr().out
    assert "cli-tiny" in out and "equivalence=ok" in out
    document = json.loads(out_path.read_text())
    assert document["bench"] == "scenarios"
    assert document["equivalence"] is True
    assert main(["scenario", "validate", str(out_path)]) == 0

    # The written document replays through `scenario report`.
    assert main(["scenario", "report", str(out_path)]) == 0
    assert "cli-tiny" in capsys.readouterr().out


def test_scenario_run_gate_failure_exits_nonzero(tmp_path, capsys):
    spec_path = tmp_path / "failing.json"
    spec_path.write_text(
        json.dumps(tiny_scenario_document(min_nonempty_results=10_000))
    )
    assert main(["scenario", "run", "--spec", str(spec_path)]) == 2
    assert "gates failed" in capsys.readouterr().err

    out_path = tmp_path / "BENCH_failing.json"
    assert (
        main(
            [
                "scenario",
                "run",
                "--spec",
                str(spec_path),
                "--no-enforce-gates",
                "--out",
                str(out_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    # ... but `scenario report` still surfaces the failure.
    assert main(["scenario", "report", str(out_path)]) == 2


def test_scenario_run_rejects_unknown_name(capsys):
    assert main(["scenario", "run", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_scenario_validate_rejects_bad_document(tmp_path, capsys):
    good = tmp_path / "BENCH_good.json"
    good.write_text(
        json.dumps(bench_envelope("unit", seed=1, speedup_factor=1.0, equivalence=True))
    )
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"bench": "unit"}))
    assert main(["scenario", "validate", str(good)]) == 0
    assert main(["scenario", "validate", str(good), str(bad)]) == 2
    captured = capsys.readouterr()
    assert "BENCH_bad" in captured.err


def test_scenario_validate_with_no_documents_found(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["scenario", "validate"]) == 2
    assert "no BENCH_*.json" in capsys.readouterr().err


@pytest.mark.slow
def test_scenario_run_named_catalog_entry(tmp_path):
    out_path = tmp_path / "BENCH_one.json"
    assert (
        main(["scenario", "run", "bipartite-wc-churn", "--out", str(out_path)]) == 0
    )
    assert json.loads(out_path.read_text())["gates_passed"] is True
