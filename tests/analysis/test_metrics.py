"""Unit tests for community quality metrics."""

import pytest

from repro.analysis.metrics import (
    conductance,
    influence_efficiency,
    influenced_keyword_coverage,
    internal_density,
    keyword_coverage,
    minimum_edge_support,
    minimum_internal_degree,
    quality_report,
)
from repro.query.params import make_topl_query
from repro.query.topl import topl_icde


@pytest.fixture
def scored_clique(two_cliques_bridge):
    """The 'movies' clique of the shared fixture, scored at theta = 0.1."""
    query = make_topl_query({"movies"}, k=4, radius=1, theta=0.1, top_l=1)
    return topl_icde(two_cliques_bridge, query).best, query


class TestStructuralMetrics:
    def test_clique_density_is_one(self, two_cliques_bridge):
        assert internal_density(two_cliques_bridge, frozenset(range(4))) == pytest.approx(1.0)

    def test_density_of_sparse_set(self, two_cliques_bridge):
        # {0, 1, 4}: only the edge (0, 1) is present out of 3 possible.
        assert internal_density(two_cliques_bridge, {0, 1, 4}) == pytest.approx(1 / 3)

    def test_density_degenerate_inputs(self, two_cliques_bridge):
        assert internal_density(two_cliques_bridge, set()) == 0.0
        assert internal_density(two_cliques_bridge, {0}) == 0.0

    def test_minimum_internal_degree(self, two_cliques_bridge):
        assert minimum_internal_degree(two_cliques_bridge, frozenset(range(4))) == 3
        assert minimum_internal_degree(two_cliques_bridge, {0, 1, 4}) == 0
        assert minimum_internal_degree(two_cliques_bridge, set()) == 0

    def test_minimum_edge_support(self, two_cliques_bridge):
        assert minimum_edge_support(two_cliques_bridge, frozenset(range(4))) == 2
        assert minimum_edge_support(two_cliques_bridge, {3, 4, 5}) == 0

    def test_conductance_of_well_separated_clique(self, two_cliques_bridge):
        # Clique A has a single outgoing edge (3-4) over volume 13.
        value = conductance(two_cliques_bridge, frozenset(range(4)))
        assert value == pytest.approx(1 / 13)

    def test_conductance_edge_cases(self, two_cliques_bridge):
        assert conductance(two_cliques_bridge, set()) == 0.0
        everything = frozenset(two_cliques_bridge.vertices())
        assert conductance(two_cliques_bridge, everything) == 0.0

    def test_conductance_unknown_vertex_rejected(self, two_cliques_bridge):
        with pytest.raises(Exception):
            conductance(two_cliques_bridge, {0, 999})


class TestKeywordAndInfluenceMetrics:
    def test_keyword_coverage(self, two_cliques_bridge):
        assert keyword_coverage(two_cliques_bridge, frozenset(range(4)), {"movies"}) == 1.0
        assert keyword_coverage(two_cliques_bridge, {0, 4}, {"movies"}) == pytest.approx(0.5)
        assert keyword_coverage(two_cliques_bridge, set(), {"movies"}) == 0.0

    def test_result_communities_have_full_coverage(self, scored_clique, two_cliques_bridge):
        community, query = scored_clique
        assert keyword_coverage(two_cliques_bridge, community, query.keywords) == 1.0

    def test_influenced_keyword_coverage(self, scored_clique, two_cliques_bridge):
        community, _ = scored_clique
        # Influenced users outside the seed are the bridge/books vertices,
        # none of which carry "movies".
        assert influenced_keyword_coverage(
            two_cliques_bridge, community, {"movies"}
        ) == pytest.approx(0.0)
        assert influenced_keyword_coverage(
            two_cliques_bridge, community, {"books", "travel"}
        ) > 0.0

    def test_influence_efficiency(self, scored_clique):
        community, _ = scored_clique
        assert influence_efficiency(community) == pytest.approx(community.score / len(community))


class TestQualityReport:
    def test_report_row(self, scored_clique, two_cliques_bridge):
        community, query = scored_clique
        report = quality_report(two_cliques_bridge, community, query.keywords)
        row = report.as_row()
        assert row["size"] == 4
        assert row["density"] == pytest.approx(1.0)
        assert row["min_sup"] == 2
        assert row["kw_coverage"] == 1.0
        assert row["score_per_member"] > 1.0
