"""Unit tests for cross-method result comparison helpers."""

import pytest

from repro.analysis.comparison import (
    compare_rankings,
    coverage_gain_curve,
    influence_overlap_matrix,
    jaccard,
    seed_overlap_matrix,
)
from repro.pruning.diversity import diversity_score
from repro.query.baselines.bruteforce import bruteforce_topl
from repro.query.params import make_topl_query
from repro.query.topl import topl_icde


@pytest.fixture
def both_cliques(two_cliques_bridge):
    query = make_topl_query({"movies", "books"}, k=4, radius=1, theta=0.1, top_l=2)
    return topl_icde(two_cliques_bridge, query), query


class TestJaccard:
    def test_basic_values(self):
        assert jaccard(frozenset({1, 2}), frozenset({1, 2})) == 1.0
        assert jaccard(frozenset({1, 2}), frozenset({3})) == 0.0
        assert jaccard(frozenset({1, 2}), frozenset({2, 3})) == pytest.approx(1 / 3)
        assert jaccard(frozenset(), frozenset()) == 1.0


class TestOverlapMatrices:
    def test_seed_overlap(self, both_cliques):
        result, _ = both_cliques
        matrix = seed_overlap_matrix(list(result))
        assert matrix[0][0] == 1.0
        assert matrix[0][1] == 0.0  # disjoint cliques
        assert matrix[1][0] == matrix[0][1]

    def test_influence_overlap_larger_than_seed_overlap(self, both_cliques):
        result, _ = both_cliques
        seeds = seed_overlap_matrix(list(result))
        influence = influence_overlap_matrix(list(result))
        # The cliques share no seed vertices but do influence common users via
        # the bridge, so the influence overlap is at least the seed overlap.
        assert influence[0][1] >= seeds[0][1]


class TestCompareRankings:
    def test_identical_rankings(self, two_cliques_bridge, both_cliques):
        result, query = both_cliques
        reference = bruteforce_topl(two_cliques_bridge, query)
        agreement = compare_rankings(result, reference)
        assert agreement.precision == 1.0
        assert agreement.matched == agreement.expected == 2
        assert agreement.score_gap == pytest.approx(0.0)

    def test_partial_agreement(self, both_cliques):
        from repro.query.results import TopLResult

        result, _ = both_cliques
        truncated = TopLResult(communities=result.communities[:1])
        agreement = compare_rankings(truncated, result)
        assert agreement.matched == 1
        assert agreement.expected == 2
        assert agreement.precision == pytest.approx(0.5)
        assert agreement.score_gap == float("inf")

    def test_empty_reference(self):
        from repro.query.results import TopLResult

        empty = TopLResult(communities=())
        agreement = compare_rankings(empty, empty)
        assert agreement.precision == 1.0
        assert agreement.score_gap == 0.0


class TestCoverageGainCurve:
    def test_curve_is_monotone_and_matches_diversity_score(self, both_cliques):
        result, _ = both_cliques
        communities = list(result)
        curve = coverage_gain_curve(communities)
        assert len(curve) == len(communities)
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(
            diversity_score([community.influenced for community in communities])
        )

    def test_concavity_of_gains(self, both_cliques):
        result, _ = both_cliques
        communities = list(result)
        if len(communities) < 2:
            pytest.skip("need at least two communities")
        curve = coverage_gain_curve(communities)
        gains = [curve[0]] + [b - a for a, b in zip(curve, curve[1:])]
        assert all(later <= earlier + 1e-9 for earlier, later in zip(gains, gains[1:]))

    def test_empty_input(self):
        assert coverage_gain_curve([]) == []
