"""Unit tests for community-level propagation (cpp, g_inf, sigma)."""

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork
from repro.influence.propagation import (
    community_propagation,
    community_to_user_probability,
    influence_score_upper_bounds,
    influential_score,
)


@pytest.fixture
def chain_graph() -> SocialNetwork:
    """0 - 1 - 2 - 3 - 4 with probability 0.5 on every direction."""
    graph = SocialNetwork()
    for v in range(5):
        graph.add_vertex(v, {"movies"})
    for v in range(4):
        graph.add_edge(v, v + 1, 0.5)
    return graph


class TestCommunityPropagation:
    def test_seed_members_have_probability_one(self, chain_graph):
        influenced = community_propagation(chain_graph, {1, 2}, threshold=0.1)
        assert influenced.cpp_of(1) == 1.0
        assert influenced.cpp_of(2) == 1.0

    def test_cpp_values_on_chain(self, chain_graph):
        influenced = community_propagation(chain_graph, {0}, threshold=0.1)
        assert influenced.cpp_of(1) == pytest.approx(0.5)
        assert influenced.cpp_of(2) == pytest.approx(0.25)
        assert influenced.cpp_of(3) == pytest.approx(0.125)
        # 0.0625 < 0.1, so vertex 4 is outside g_inf.
        assert influenced.cpp_of(4) == 0.0
        assert 4 not in influenced.vertices

    def test_multi_source_takes_maximum(self, chain_graph):
        influenced = community_propagation(chain_graph, {0, 4}, threshold=0.1)
        # Vertex 2 is two hops from both seeds.
        assert influenced.cpp_of(2) == pytest.approx(0.25)
        # Vertex 3 is one hop from seed 4.
        assert influenced.cpp_of(3) == pytest.approx(0.5)

    def test_threshold_zero_reaches_everything(self, chain_graph):
        influenced = community_propagation(chain_graph, {0}, threshold=0.0)
        assert influenced.vertices == frozenset(range(5))

    def test_score_sums_cpp(self, chain_graph):
        influenced = community_propagation(chain_graph, {0}, threshold=0.1)
        expected = 1.0 + 0.5 + 0.25 + 0.125
        assert influenced.score == pytest.approx(expected)
        assert influential_score(chain_graph, {0}, 0.1) == pytest.approx(expected)

    def test_influenced_only_excludes_seeds(self, chain_graph):
        influenced = community_propagation(chain_graph, {0, 1}, threshold=0.1)
        assert 0 not in influenced.influenced_only
        assert 2 in influenced.influenced_only

    def test_len_counts_ginf(self, chain_graph):
        influenced = community_propagation(chain_graph, {0}, threshold=0.1)
        assert len(influenced) == 4

    def test_empty_seed_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            community_propagation(chain_graph, set(), threshold=0.1)

    def test_unknown_seed_rejected(self, chain_graph):
        with pytest.raises(VertexNotFoundError):
            community_propagation(chain_graph, {99}, threshold=0.1)

    def test_threshold_one_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            community_propagation(chain_graph, {0}, threshold=1.0)

    def test_higher_threshold_gives_smaller_community(self, chain_graph):
        loose = community_propagation(chain_graph, {0}, threshold=0.1)
        tight = community_propagation(chain_graph, {0}, threshold=0.3)
        assert tight.vertices <= loose.vertices
        assert tight.score <= loose.score

    def test_asymmetric_probabilities_used_in_seed_to_target_direction(self):
        graph = SocialNetwork()
        graph.add_edge("seed", "target", 0.9, 0.1)
        influenced = community_propagation(graph, {"seed"}, threshold=0.5)
        assert influenced.cpp_of("target") == pytest.approx(0.9)
        reverse = community_propagation(graph, {"target"}, threshold=0.05)
        assert reverse.cpp_of("seed") == pytest.approx(0.1)


class TestCommunityToUserProbability:
    def test_member_is_one(self, chain_graph):
        assert community_to_user_probability(chain_graph, {1, 2}, 2) == 1.0

    def test_matches_best_member_upp(self, chain_graph):
        assert community_to_user_probability(chain_graph, {0, 1}, 3) == pytest.approx(0.25)

    def test_unreachable_is_zero(self, chain_graph):
        chain_graph.add_vertex(99)
        assert community_to_user_probability(chain_graph, {0}, 99) == 0.0


class TestScoreUpperBounds:
    def test_pairs_are_sorted_and_monotone(self, chain_graph):
        pairs = influence_score_upper_bounds(chain_graph, {0}, [0.3, 0.1, 0.2])
        thetas = [theta for theta, _ in pairs]
        scores = [score for _, score in pairs]
        assert thetas == sorted(thetas)
        assert scores == sorted(scores, reverse=True)

    def test_values_match_direct_computation(self, chain_graph):
        pairs = dict(influence_score_upper_bounds(chain_graph, {0}, [0.1, 0.3]))
        assert pairs[0.1] == pytest.approx(influential_score(chain_graph, {0}, 0.1))
        assert pairs[0.3] == pytest.approx(influential_score(chain_graph, {0}, 0.3))

    def test_empty_threshold_list(self, chain_graph):
        assert influence_score_upper_bounds(chain_graph, {0}, []) == []

    def test_invalid_threshold_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            influence_score_upper_bounds(chain_graph, {0}, [0.5, 1.2])
