"""Unit tests for the MIA model primitives (paths, MIP, upp)."""

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork
from repro.influence.mia import (
    maximum_influence_path,
    maximum_influence_paths,
    path_propagation_probability,
    user_to_user_propagation,
)


@pytest.fixture
def diamond_graph() -> SocialNetwork:
    """Two parallel paths from s to t with different probabilities.

    s -> a -> t has probability 0.9 * 0.9 = 0.81;
    s -> b -> t has probability 0.5 * 0.5 = 0.25;
    the direct edge s -> t has probability 0.3.
    """
    graph = SocialNetwork()
    graph.add_edge("s", "a", 0.9)
    graph.add_edge("a", "t", 0.9)
    graph.add_edge("s", "b", 0.5)
    graph.add_edge("b", "t", 0.5)
    graph.add_edge("s", "t", 0.3)
    return graph


class TestPathProbability:
    def test_product_of_edge_probabilities(self, diamond_graph):
        assert path_propagation_probability(diamond_graph, ["s", "a", "t"]) == pytest.approx(0.81)
        assert path_propagation_probability(diamond_graph, ["s", "b", "t"]) == pytest.approx(0.25)

    def test_single_vertex_path(self, diamond_graph):
        assert path_propagation_probability(diamond_graph, ["s"]) == 1.0

    def test_cyclic_path_rejected(self, diamond_graph):
        with pytest.raises(GraphError):
            path_propagation_probability(diamond_graph, ["s", "a", "s"])

    def test_asymmetric_direction_respected(self):
        graph = SocialNetwork()
        graph.add_edge(1, 2, 0.9, 0.1)
        assert path_propagation_probability(graph, [1, 2]) == pytest.approx(0.9)
        assert path_propagation_probability(graph, [2, 1]) == pytest.approx(0.1)


class TestUserToUserPropagation:
    def test_picks_the_best_path(self, diamond_graph):
        assert user_to_user_propagation(diamond_graph, "s", "t") == pytest.approx(0.81)

    def test_identity(self, diamond_graph):
        assert user_to_user_propagation(diamond_graph, "s", "s") == 1.0

    def test_unreachable_is_zero(self, diamond_graph):
        diamond_graph.add_vertex("island")
        assert user_to_user_propagation(diamond_graph, "s", "island") == 0.0

    def test_missing_vertices_rejected(self, diamond_graph):
        with pytest.raises(VertexNotFoundError):
            user_to_user_propagation(diamond_graph, "zzz", "t")
        with pytest.raises(VertexNotFoundError):
            user_to_user_propagation(diamond_graph, "s", "zzz")


class TestMaximumInfluencePaths:
    def test_all_reachable_with_zero_threshold(self, diamond_graph):
        probabilities = maximum_influence_paths(diamond_graph, "s")
        assert probabilities["s"] == 1.0
        assert probabilities["t"] == pytest.approx(0.81)
        assert probabilities["a"] == pytest.approx(0.9)
        assert probabilities["b"] == pytest.approx(0.5)

    def test_threshold_truncates(self, diamond_graph):
        probabilities = maximum_influence_paths(diamond_graph, "s", threshold=0.6)
        assert "b" not in probabilities
        assert probabilities["t"] == pytest.approx(0.81)

    def test_threshold_exactness(self):
        """Truncation never under-reports a value above the threshold."""
        graph = SocialNetwork()
        # Chain with decreasing products: 0.9, 0.81, 0.729...
        for i in range(5):
            graph.add_edge(i, i + 1, 0.9)
        probabilities = maximum_influence_paths(graph, 0, threshold=0.75)
        assert probabilities == {
            0: 1.0,
            1: pytest.approx(0.9),
            2: pytest.approx(0.81),
        }

    def test_allowed_restricts_paths(self, diamond_graph):
        probabilities = maximum_influence_paths(
            diamond_graph, "s", allowed=frozenset({"s", "b", "t"})
        )
        # The best remaining path to t is through b (0.25) or direct (0.3).
        assert probabilities["t"] == pytest.approx(0.3)

    def test_invalid_threshold(self, diamond_graph):
        with pytest.raises(GraphError):
            maximum_influence_paths(diamond_graph, "s", threshold=1.5)

    def test_source_outside_allowed(self, diamond_graph):
        with pytest.raises(GraphError):
            maximum_influence_paths(diamond_graph, "s", allowed=frozenset({"a", "t"}))


class TestMaximumInfluencePath:
    def test_best_path_vertices(self, diamond_graph):
        path = maximum_influence_path(diamond_graph, "s", "t")
        assert path == ["s", "a", "t"]

    def test_identity_path(self, diamond_graph):
        assert maximum_influence_path(diamond_graph, "s", "s") == ["s"]

    def test_unreachable_returns_none(self, diamond_graph):
        diamond_graph.add_vertex("island")
        assert maximum_influence_path(diamond_graph, "s", "island") is None

    def test_path_probability_matches_upp(self, diamond_graph):
        path = maximum_influence_path(diamond_graph, "s", "t")
        assert path_propagation_probability(diamond_graph, path) == pytest.approx(
            user_to_user_propagation(diamond_graph, "s", "t")
        )
