"""Unit tests for the Monte-Carlo independent-cascade simulator."""

import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.social_network import SocialNetwork
from repro.influence.cascade import estimate_spread, simulate_independent_cascade


@pytest.fixture
def deterministic_graph() -> SocialNetwork:
    """Probabilities 1.0 and 0.0 make cascade outcomes deterministic."""
    graph = SocialNetwork()
    graph.add_edge("s", "a", 1.0)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 0.0)
    graph.add_edge("c", "d", 1.0)
    return graph


class TestSimulateIndependentCascade:
    def test_certain_edges_always_activate(self, deterministic_graph):
        activated = simulate_independent_cascade(deterministic_graph, {"s"}, rng=1)
        assert activated == frozenset({"s", "a", "b"})

    def test_zero_probability_blocks(self, deterministic_graph):
        for seed in range(5):
            activated = simulate_independent_cascade(deterministic_graph, {"s"}, rng=seed)
            assert "c" not in activated
            assert "d" not in activated

    def test_seeds_always_active(self, deterministic_graph):
        activated = simulate_independent_cascade(deterministic_graph, {"c"}, rng=1)
        assert "c" in activated
        assert "d" in activated  # via the certain edge c-d

    def test_empty_seed_rejected(self, deterministic_graph):
        with pytest.raises(GraphError):
            simulate_independent_cascade(deterministic_graph, set())

    def test_unknown_seed_rejected(self, deterministic_graph):
        with pytest.raises(VertexNotFoundError):
            simulate_independent_cascade(deterministic_graph, {"zzz"})


class TestEstimateSpread:
    def test_deterministic_spread_has_zero_variance(self, deterministic_graph):
        result = estimate_spread(deterministic_graph, {"s"}, num_simulations=20, rng=3)
        assert result.mean_spread == pytest.approx(3.0)
        assert result.std_spread == pytest.approx(0.0)
        assert result.activation_probability("a") == pytest.approx(1.0)
        assert result.activation_probability("d") == 0.0

    def test_mean_between_seed_size_and_graph_size(self):
        graph = SocialNetwork()
        for v in range(6):
            graph.add_vertex(v)
        for v in range(5):
            graph.add_edge(v, v + 1, 0.5)
        result = estimate_spread(graph, {0}, num_simulations=50, rng=5)
        assert 1.0 <= result.mean_spread <= 6.0

    def test_invalid_simulation_count(self, deterministic_graph):
        with pytest.raises(GraphError):
            estimate_spread(deterministic_graph, {"s"}, num_simulations=0)

    def test_reproducible_with_seed(self, deterministic_graph):
        graph = SocialNetwork()
        for v in range(8):
            graph.add_vertex(v)
        for v in range(7):
            graph.add_edge(v, v + 1, 0.6)
        first = estimate_spread(graph, {0}, num_simulations=30, rng=11)
        second = estimate_spread(graph, {0}, num_simulations=30, rng=11)
        assert first.mean_spread == second.mean_spread
        assert first.activation_frequency == second.activation_frequency
