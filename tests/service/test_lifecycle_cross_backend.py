"""Cross-backend lifecycle property test through :class:`CommunityService`.

Seeded edit scripts drive the full service lifecycle — build → update →
topl/dtopl → update → batch — against two sessions over the same graph, one
per backend, asserting every response **bit-identical** on the wire: the
fast session's snapshot is patched in place (DeltaCSR overlay, no
re-freeze) while the reference session patches dict structures, and a
remote client must not be able to tell them apart.  One scenario finishes
with a spawn-mode parallel batch after an update, which exercises the
worker-side overlay rebuild from the serialized edit log.
"""

from __future__ import annotations

import json

import pytest

from repro.dynamic.updates import random_update_batch
from repro.graph.datasets import uni
from repro.graph.io import graph_to_dict
from repro.query.params import make_dtopl_query, make_topl_query
from repro.serve.batch import ServingConfig
from repro.service.facade import CommunityService
from repro.service.schema import BatchRequest, BuildRequest, DToplRequest, ToplRequest, UpdateRequest

QUERIES = [
    make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3),
    make_topl_query({"sports"}, k=3, radius=1, theta=0.1, top_l=5),
    make_dtopl_query({"movies", "music"}, k=3, radius=2, theta=0.2, top_l=2),
]


def _strip_timings(node):
    if isinstance(node, dict):
        for key in ("elapsed_seconds", "elapsed_ms", "queries_per_second"):
            node.pop(key, None)
        for value in node.values():
            _strip_timings(value)
    elif isinstance(node, list):
        for value in node:
            _strip_timings(value)


def _wire(response) -> dict:
    """Timing-free canonical wire form, through real JSON text."""
    document = json.loads(json.dumps(response.to_json()))
    document.pop("session", None)
    _strip_timings(document)
    return document


def _build_sessions(service: CommunityService, graph_doc: dict) -> None:
    for backend in ("reference", "fast"):
        service.build(
            BuildRequest(
                session=backend,
                graph=graph_doc,
                config={"max_radius": 2, "backend": backend},
                validate=False,
            )
        )


def _run_lifecycle(service: CommunityService, seed: int, workers: int = 1) -> None:
    graph = uni(num_vertices=110, rng=7 + seed)
    _build_sessions(service, graph_to_dict(graph))
    script = random_update_batch(
        graph, 14, rng=seed, insert_ratio=0.5, grow_probability=0.2,
        keyword_pool=("movies", "books", "sports"),
    )
    half = len(script) // 2
    chunks = [tuple(script[:half]), tuple(script[half:])]

    for round_index, edits in enumerate(chunks):
        responses = {}
        for backend in ("reference", "fast"):
            responses[backend] = service.update(
                UpdateRequest(session=backend, edits=edits, damage_threshold=1.0)
            )
        ours, theirs = (_wire(responses[b]) for b in ("reference", "fast"))
        # Reports agree on everything except the backend-specific overlay
        # fields (the reference backend has no overlay to dirty).
        for report in (ours["report"], theirs["report"]):
            report.pop("overlay_dirt_ratio")
            report.pop("compacted")
            report.pop("applied_mode")
        assert ours == theirs, (seed, round_index)

        for query in QUERIES:
            if isinstance(query, type(QUERIES[0])):
                request_type, endpoint = ToplRequest, "topl"
            else:
                request_type, endpoint = DToplRequest, "dtopl"
            answered = {
                backend: service.dispatch(
                    request_type(session=backend, query=query)
                )
                for backend in ("reference", "fast")
            }
            assert _wire(answered["reference"]) == _wire(answered["fast"]), (
                seed, round_index, endpoint, query,
            )

    batch_responses = {
        backend: service.batch(
            BatchRequest(session=backend, queries=tuple(QUERIES), workers=workers)
        )
        for backend in ("reference", "fast")
    }
    ours, theirs = (_wire(batch_responses[b]) for b in ("reference", "fast"))
    for document in (ours, theirs):
        document.pop("cache_statistics", None)
        document["statistics"].pop("mode", None)
        document["statistics"].pop("workers", None)
    assert ours == theirs, seed

    for backend in ("reference", "fast"):
        service.drop_session(backend)


@pytest.mark.parametrize("seed", range(3))
def test_lifecycle_bit_identical_across_backends(seed):
    """build → update → topl/dtopl → update → batch: fast ≡ reference."""
    _run_lifecycle(CommunityService(), seed)


def test_lifecycle_with_spawn_parallel_batch_after_update():
    """The closing batch runs on spawn workers, which rebuild the fast
    session's snapshot overlay from the serialized edit log."""
    service = CommunityService(
        serving_config=ServingConfig(
            workers=2, start_method="spawn", result_cache_capacity=0
        )
    )
    _run_lifecycle(service, seed=99, workers=2)


def test_fast_session_snapshot_is_patched_not_refrozen():
    """The service update path must never re-freeze the fast session's graph."""
    import repro.graph.social_network as social_network_module

    service = CommunityService()
    graph = uni(num_vertices=110, rng=3)
    _build_sessions(service, graph_to_dict(graph))
    script = random_update_batch(graph, 8, rng=5, insert_ratio=0.5)

    calls = []
    original = social_network_module.SocialNetwork.freeze

    def counting_freeze(self):
        calls.append(self.name)
        return original(self)

    social_network_module.SocialNetwork.freeze = counting_freeze
    try:
        response = service.update(
            UpdateRequest(session="fast", edits=tuple(script), damage_threshold=1.0)
        )
        answer = service.topl(ToplRequest(session="fast", query=QUERIES[0]))
    finally:
        social_network_module.SocialNetwork.freeze = original
    assert response.report["mode"] == "incremental"
    assert answer.communities is not None
    assert calls == [], f"freeze() was called on the incremental fast path: {calls}"
    for backend in ("reference", "fast"):
        service.drop_session(backend)
