"""Service-vs-direct equivalence: the acceptance gate of the API redesign.

The full query lifecycle — build, topl, dtopl, update, batch — must
round-trip **bit-identically** through `CommunityService` JSON requests vs
calling the engine directly.  Every comparison here is on *wire forms*
pushed through real JSON text (``json.dumps``/``loads``), i.e. exactly what
a remote client receives, compared with ``==`` down to every float bit.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import UpdateBatch, random_update_batch
from repro.graph.datasets import uni
from repro.graph.io import graph_to_dict
from repro.query.params import make_dtopl_query, make_topl_query
from repro.service.facade import CommunityService
from repro.service.schema import (
    BatchRequest,
    BuildRequest,
    DToplRequest,
    ToplRequest,
    community_to_wire,
    decode_request,
    result_to_wire,
)

QUERIES = [
    make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3),
    make_topl_query({"sports"}, k=3, radius=1, theta=0.1, top_l=5),
    make_dtopl_query({"movies", "music"}, k=3, radius=2, theta=0.2, top_l=2),
    make_dtopl_query({"books"}, k=4, radius=2, theta=0.1, top_l=3, candidate_factor=2),
]


def through_the_wire(request_document: dict, endpoint: str):
    """Serialise to JSON text and decode, as the gateway would."""
    return decode_request(endpoint, json.loads(json.dumps(request_document)))


def wire(result) -> dict:
    """Canonical wire form of a typed result, through real JSON text."""
    return json.loads(json.dumps(result_to_wire(result)))


@pytest.fixture(scope="module", params=["reference", "fast"])
def lifecycle(request):
    """A direct engine and a service session over the same graph + config."""
    backend = request.param
    graph = uni(num_vertices=150, rng=11)
    config = EngineConfig(max_radius=2, backend=backend)
    direct = InfluentialCommunityEngine.build(
        uni(num_vertices=150, rng=11), config=config, validate=False
    )
    service = CommunityService()
    service.build(
        through_the_wire(
            BuildRequest(
                session="eq",
                graph=graph_to_dict(graph),
                config={"max_radius": 2, "backend": backend},
                validate=False,
            ).to_json(),
            "build",
        )
    )
    return direct, service


class TestLifecycleEquivalence:
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_single_queries_bit_identical(self, lifecycle, query_index):
        direct, service = lifecycle
        query = QUERIES[query_index]
        if query_index >= 2:
            request = through_the_wire(
                DToplRequest(query=query, session="eq").to_json(), "dtopl"
            )
            response = service.dtopl(request)
            direct_result = direct.dtopl(query)
            assert json.loads(json.dumps(response.to_json()))["diversity_score"] == (
                direct_result.diversity_score
            )
        else:
            request = through_the_wire(
                ToplRequest(query=query, session="eq").to_json(), "topl"
            )
            response = service.topl(request)
            direct_result = direct.topl(query)
        service_communities = json.loads(
            json.dumps([community_to_wire(c) for c in response.communities])
        )
        direct_communities = json.loads(
            json.dumps([community_to_wire(c) for c in direct_result.communities])
        )
        assert service_communities == direct_communities

    def test_batch_bit_identical_to_direct_calls(self, lifecycle):
        direct, service = lifecycle
        request = through_the_wire(
            BatchRequest(session="eq", queries=tuple(QUERIES)).to_json(), "batch"
        )
        response = service.batch(request)
        direct_results = [
            direct.dtopl(q) if hasattr(q, "candidate_factor") else direct.topl(q)
            for q in QUERIES
        ]
        service_wire = [
            {k: v for k, v in json.loads(json.dumps(r)).items() if k != "statistics"}
            for r in response.results
        ]
        direct_wire = [
            {k: v for k, v in wire(r).items() if k != "statistics"}
            for r in direct_results
        ]
        # Statistics legitimately differ (the serving path shares processors
        # and propagation caches); the *answers* may not.
        assert service_wire == direct_wire

    def test_update_then_queries_bit_identical(self, lifecycle):
        direct, service = lifecycle
        script = random_update_batch(
            direct.graph, 12, rng=3, insert_ratio=0.5, focus=0, focus_radius=2
        )
        edits = [edit.as_dict() for edit in script]

        direct_report = direct.apply_updates(
            UpdateBatch(script), damage_threshold=1.0
        )
        request = through_the_wire(
            {
                "schema_version": 1,
                "session": "eq",
                "edits": edits,
                "damage_threshold": 1.0,
            },
            "update",
        )
        response = service.update(request)

        # Reports agree on everything but wall-clock.
        direct_dict = direct_report.as_dict()
        service_dict = dict(response.report)
        direct_dict.pop("elapsed_seconds")
        service_dict.pop("elapsed_seconds")
        # Epochs advance independently per engine instance but must match
        # here: both started fresh and applied the same script once.
        assert service_dict == direct_dict

        # Post-update answers remain bit-identical.
        query = QUERIES[0]
        response = service.topl(
            through_the_wire(ToplRequest(query=query, session="eq").to_json(), "topl")
        )
        direct_result = direct.topl(query)
        assert json.loads(
            json.dumps([community_to_wire(c) for c in response.communities])
        ) == json.loads(
            json.dumps([community_to_wire(c) for c in direct_result.communities])
        )


class TestResultWireCompleteness:
    def test_result_wire_round_trips_through_text(self, lifecycle):
        """decode(encode(result)) == result at the document level."""
        from repro.service.schema import community_from_wire

        direct, _ = lifecycle
        result = direct.topl(QUERIES[0])
        for community in result.communities:
            document = json.loads(json.dumps(community_to_wire(community)))
            rebuilt = community_from_wire(document)
            assert community_to_wire(rebuilt) == document
            assert rebuilt.score == community.score
            assert rebuilt.vertices == community.vertices
            assert rebuilt.influenced.cpp == community.influenced.cpp
