"""CommunityService facade: sessions, lifecycle, caches, deprecation shims."""

from __future__ import annotations

import warnings

import pytest

from repro import __version__
from repro.dynamic.updates import EdgeUpdate
from repro.exceptions import (
    MalformedRequestError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.query.params import make_dtopl_query, make_topl_query
from repro.serve.batch import BatchQueryEngine, ServingConfig
from repro.service.facade import CommunityService
from repro.service.schema import (
    BatchRequest,
    BuildRequest,
    DToplRequest,
    ToplRequest,
    UpdateRequest,
)

TOPL = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)
DTOPL = make_dtopl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=2)


@pytest.fixture()
def service(service_graph_doc):
    service = CommunityService()
    service.build(
        BuildRequest(
            session="main", graph=service_graph_doc, config={"max_radius": 2}
        )
    )
    return service


class TestSessions:
    def test_build_registers_session(self, service):
        assert service.session_names() == ["main"]
        assert service.has_session("main")
        assert service.engine("main").graph.num_vertices() == 120

    def test_duplicate_session_rejected(self, service, service_graph_doc):
        with pytest.raises(SessionExistsError):
            service.build(BuildRequest(session="main", graph=service_graph_doc))

    def test_replace_rebuilds_session(self, service, service_graph_doc):
        response = service.build(
            BuildRequest(
                session="main",
                graph=service_graph_doc,
                config={"max_radius": 1},
                replace=True,
            )
        )
        assert response.engine["index"]["max_radius"] == 1

    def test_multiple_sessions_coexist(self, service, service_graph_doc):
        service.build(
            BuildRequest(
                session="other", graph=service_graph_doc, config={"max_radius": 1}
            )
        )
        assert service.session_names() == ["main", "other"]
        # Each session answers with its own index.
        assert service.engine("other").index.max_radius == 1
        assert service.engine("main").index.max_radius == 2

    def test_unknown_session_everywhere(self, service):
        with pytest.raises(UnknownSessionError):
            service.topl(ToplRequest(query=TOPL, session="ghost"))
        with pytest.raises(UnknownSessionError):
            service.engine("ghost")
        with pytest.raises(UnknownSessionError):
            service.drop_session("ghost")

    def test_drop_session(self, service):
        service.drop_session("main")
        assert service.session_names() == []

    def test_adopt_existing_engine(self, built_engine):
        service = CommunityService()
        name = service.adopt(built_engine, session="adopted")
        assert name == "adopted"
        assert service.engine("adopted") is built_engine

    def test_unknown_config_setting_rejected(self, service_graph_doc):
        service = CommunityService()
        with pytest.raises(MalformedRequestError):
            service.build(
                BuildRequest(
                    session="x", graph=service_graph_doc, config={"warp_factor": 9}
                )
            )

    def test_sessions_response_reports_diagnostics(self, service):
        document = service.sessions().to_json()
        assert document["api_version"] == __version__
        (info,) = document["sessions"]
        assert info["name"] == "main"
        assert info["engine"]["backend"] == "reference"
        assert info["engine"]["epoch"] == 0
        assert info["engine"]["index_schema_version"] == 1

    def test_health_reuses_engine_describe(self, service):
        document = service.health().to_json()
        assert document["status"] == "ok"
        (info,) = document["sessions"]
        assert info["engine"] == service.engine("main").describe()


class TestLifecycle:
    def test_topl_response_envelope(self, service):
        response = service.topl(ToplRequest(query=TOPL, session="main"))
        assert response.session == "main"
        assert response.epoch == 0
        assert response.api_version == __version__
        assert response.elapsed_seconds >= 0.0
        assert len(response.communities) <= TOPL.top_l
        assert response.statistics["communities_scored"] >= len(response.communities)

    def test_dtopl_response_envelope(self, service):
        response = service.dtopl(DToplRequest(query=DTOPL, session="main"))
        assert len(response.communities) <= DTOPL.top_l
        assert response.diversity_score >= 0.0
        assert response.increment_evaluations >= 0

    def test_update_bumps_epoch_in_responses(self, service):
        edges_before = service.engine("main").graph.num_edges()
        before = service.topl(ToplRequest(query=TOPL, session="main"))
        update = service.update(
            UpdateRequest(
                session="main",
                edits=(EdgeUpdate.insert(0, 60, 0.4),),
                damage_threshold=1.0,
            )
        )
        after = service.topl(ToplRequest(query=TOPL, session="main"))
        assert before.epoch == 0
        assert update.epoch == 1
        assert update.report["mode"] in ("incremental", "rebuild")
        assert update.graph["num_edges"] == edges_before + 1
        assert after.epoch == 1

    def test_batch_preserves_order_and_caches(self, service):
        request = BatchRequest(session="main", queries=(TOPL, DTOPL, TOPL))
        response = service.batch(request)
        assert len(response.results) == 3
        assert response.results[0]["type"] == "topl"
        assert response.results[1]["type"] == "dtopl"
        # Duplicate TopL query in one batch: deduplicated, not recomputed.
        assert response.results[2] == response.results[0]
        assert response.statistics["deduplicated"] == 1
        assert response.cache_statistics["result_cache"]["lookups"] >= 3

    def test_single_queries_share_session_cache(self, service):
        first = service.topl(ToplRequest(query=TOPL, session="main"))
        service.topl(ToplRequest(query=TOPL, session="main"))
        stats = service.serving("main").cache_statistics()["result_cache"]
        assert stats["hits"] >= 1
        assert len(first.communities) <= TOPL.top_l

    def test_pruning_override_answers_unpruned(self, service):
        pruned = service.topl(ToplRequest(query=TOPL, session="main"))
        unpruned = service.topl(
            ToplRequest(
                query=TOPL,
                session="main",
                pruning={"keyword": False, "support": False, "score": False},
            )
        )
        assert [c.score for c in unpruned.communities] == [
            c.score for c in pruned.communities
        ]
        # The override really reached the processor: the optional rules
        # pruned nothing on the unpruned path.
        for rule in ("pruned_by_keyword", "pruned_by_support", "pruned_by_score"):
            assert unpruned.statistics[rule] == 0

    def test_save_and_load_index_through_requests(self, service_graph_doc, tmp_path):
        index_path = str(tmp_path / "index.json")
        service = CommunityService()
        built = service.build(
            BuildRequest(
                session="writer",
                graph=service_graph_doc,
                config={"max_radius": 2},
                save_index_path=index_path,
            )
        )
        assert built.saved_index_path == index_path
        loaded = service.build(
            BuildRequest(
                session="reader",
                graph=service_graph_doc,
                index_path=index_path,
                config={"backend": "fast"},
            )
        )
        assert loaded.loaded_index
        assert loaded.engine["backend"] == "fast"
        assert loaded.engine["index"]["max_radius"] == 2
        a = service.topl(ToplRequest(query=TOPL, session="writer"))
        b = service.topl(ToplRequest(query=TOPL, session="reader"))
        assert [c.score for c in a.communities] == [c.score for c in b.communities]

    def test_handle_json_success_and_error(self, service):
        document, failure = service.handle_json(
            "topl", ToplRequest(query=TOPL, session="main").to_json()
        )
        assert failure is None
        assert document["session"] == "main"
        document, failure = service.handle_json(
            "topl", ToplRequest(query=TOPL, session="ghost").to_json()
        )
        assert failure is not None
        assert document["error"]["code"] == "UNKNOWN_SESSION"
        assert failure.error.http_status == 404

    def test_dispatch_rejects_foreign_objects(self, service):
        with pytest.raises(MalformedRequestError):
            service.dispatch(object())

    def test_handle_json_turns_unexpected_errors_into_internal(
        self, service, monkeypatch
    ):
        """A bug must surface as an INTERNAL document, never a dropped reply."""

        def explode(request):
            raise RuntimeError("secret internal detail")

        monkeypatch.setattr(service, "topl", explode)
        response, failure = service.handle_json(
            "topl", ToplRequest(query=TOPL, session="main").to_json()
        )
        assert failure is not None
        assert response["error"]["code"] == "INTERNAL"
        assert failure.error.http_status == 500
        assert "secret internal detail" not in response["error"]["message"]

    @pytest.mark.parametrize("config", [{"thresholds": 5}, {"max_radius": "two"}])
    def test_wrong_typed_config_is_malformed_not_internal(
        self, service_graph_doc, config
    ):
        service = CommunityService()
        document = BuildRequest(session="bad", graph=service_graph_doc).to_json()
        document["config"] = config
        response, failure = service.handle_json("build", document)
        assert failure is not None
        assert response["error"]["code"] == "MALFORMED_REQUEST"

    def test_batch_pruning_override_keeps_session_serving_config(self, built_engine):
        service = CommunityService()
        service.adopt(
            built_engine,
            session="uncached",
            serving_config=ServingConfig(
                result_cache_capacity=0, propagation_cache_capacity=0
            ),
        )
        response = service.batch(
            BatchRequest(
                session="uncached", queries=(TOPL,), pruning={"score": False}
            )
        )
        # Caches stay off exactly as the session was configured.
        assert response.cache_statistics["result_cache"]["lookups"] == 0
        assert response.statistics["executed"] == 1


class TestServingBindings:
    def test_for_session_binds_by_name(self, service):
        serving = BatchQueryEngine.for_session(service, "main")
        assert serving is service.serving("main")
        assert serving.engine is service.engine("main")

    def test_custom_serving_config_per_session(self, built_engine):
        service = CommunityService()
        service.adopt(
            built_engine,
            session="uncached",
            serving_config=ServingConfig(result_cache_capacity=0),
        )
        assert service.serving("uncached").result_cache is None


class TestDeprecationShims:
    def test_topl_many_warns_and_matches_service_batch(self, service, built_engine):
        queries = [TOPL, TOPL.with_overrides(top_l=2)]
        with pytest.deprecated_call():
            shim_results = built_engine.topl_many(queries)
        response = service.batch(BatchRequest(session="main", queries=tuple(queries)))
        assert [[c.score for c in result] for result in shim_results] == [
            [c["score"] for c in result["communities"]]
            for result in response.results
        ]

    def test_dtopl_many_warns(self, built_engine):
        with pytest.deprecated_call():
            results = built_engine.dtopl_many([DTOPL])
        assert len(results) == 1

    def test_engine_queries_do_not_warn(self, built_engine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            built_engine.topl(TOPL)
