"""Async front door: keep-alive, coalescing, backpressure, streaming.

The :class:`AsyncServiceGateway` must serve the exact ``/v1`` surface of
the threaded gateway while adding the front-door behaviours the sharded
tier relies on: connection reuse, single execution of identical in-flight
reads, and a bounded pending queue that answers ``429`` with
``Retry-After`` instead of queueing without limit.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.query.params import make_topl_query
from repro.service.agateway import AsyncServiceGateway
from repro.service.facade import CommunityService
from repro.service.schema import BatchRequest, ToplRequest

TOPL = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)


@pytest.fixture(scope="module")
def gateway(built_engine):
    service = CommunityService()
    service.adopt(built_engine, session="hosted")
    with AsyncServiceGateway(service, port=0) as running:
        yield running


def post(conn, path, document):
    conn.request(
        "POST",
        path,
        body=json.dumps(document),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read())


class TestRoutesAndKeepAlive:
    def test_health_and_sessions(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            conn.request("GET", "/v1/health")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 200
            assert body["status"] == "ok"
            conn.request("GET", "/v1/sessions")
            response = conn.getresponse()
            assert response.status == 200
            assert "hosted" in [
                s["name"] for s in json.loads(response.read())["sessions"]
            ]
        finally:
            conn.close()

    def test_keep_alive_reuses_one_connection(self, gateway):
        """Two sequential requests travel over a single TCP connection."""
        before = gateway.statistics()["connections"]
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            document = ToplRequest(query=TOPL, session="hosted").to_json()
            status_1, body_1 = post(conn, "/v1/topl", document)
            status_2, body_2 = post(conn, "/v1/topl", document)
        finally:
            conn.close()
        assert status_1 == status_2 == 200
        assert body_1["communities"] == body_2["communities"]
        # http.client raises on an unexpectedly closed keep-alive socket, so
        # reaching here proves reuse; the counter pins it down exactly.
        assert gateway.statistics()["connections"] == before + 1

    def test_answers_match_the_facade(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            status, body = post(
                conn, "/v1/topl", ToplRequest(query=TOPL, session="hosted").to_json()
            )
        finally:
            conn.close()
        assert status == 200
        direct = gateway.service.engine("hosted").topl(TOPL)
        from repro.service.schema import community_to_wire

        assert body["communities"] == json.loads(
            json.dumps([community_to_wire(c) for c in direct.communities])
        )

    def test_unknown_routes_and_methods(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            conn.request("GET", "/v1/nope")
            response = conn.getresponse()
            assert response.status == 404
            assert json.loads(response.read())["error"]["code"] == "NOT_FOUND"
            conn.request("PUT", "/v1/topl", body=b"{}")
            response = conn.getresponse()
            assert response.status == 405
            body = json.loads(response.read())
            assert body["error"]["code"] == "METHOD_NOT_ALLOWED"
        finally:
            conn.close()

    def test_malformed_body_is_a_structured_error(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/topl",
                body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert (
                json.loads(response.read())["error"]["code"] == "MALFORMED_REQUEST"
            )
            # ... and the connection is still usable afterwards.
            conn.request("GET", "/v1/health")
            assert conn.getresponse().status == 200
        finally:
            conn.close()


class TestStreaming:
    def test_ndjson_batch_stream(self, gateway):
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            document = BatchRequest(session="hosted", queries=(TOPL, TOPL)).to_json()
            conn.request(
                "POST",
                "/v1/batch?stream=1",
                body=json.dumps(document),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            lines = [json.loads(line) for line in response.read().splitlines()]
        finally:
            conn.close()
        assert [line["kind"] for line in lines] == ["result", "result", "summary"]
        assert lines[-1]["answered"] == 2

    def test_disconnect_mid_stream_is_quiet(self, gateway):
        """A client that vanishes mid-stream must not wedge the gateway."""
        before = gateway.statistics()["streamed"]
        conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        document = BatchRequest(
            session="hosted", queries=tuple([TOPL] * 6)
        ).to_json()
        conn.request(
            "POST",
            "/v1/batch?stream=1",
            body=json.dumps(document),
            headers={"Content-Type": "application/json"},
        )
        # Read the status line, then hang up without draining the stream.
        response = conn.getresponse()
        assert response.status == 200
        conn.close()
        assert gateway.statistics()["streamed"] == before + 1
        # The gateway still answers new connections.
        probe = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
        try:
            probe.request("GET", "/v1/health")
            assert probe.getresponse().status == 200
        finally:
            probe.close()


class _SlowService(CommunityService):
    """Counts executions and holds each one until released."""

    def __init__(self):
        super().__init__()
        self.calls = 0
        self.release = threading.Event()

    def handle_json(self, endpoint, payload):
        self.calls += 1
        self.release.wait(timeout=10)
        return {"ok": True, "calls": self.calls}, None


def _fetch(gateway, results, index):
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
    try:
        status, body = post(conn, "/v1/topl", {"same": "payload"})
        results[index] = (status, body)
    finally:
        conn.close()


class TestCoalescingAndBackpressure:
    def test_identical_inflight_requests_execute_once(self):
        service = _SlowService()
        with AsyncServiceGateway(service, port=0) as gateway:
            results = {}
            threads = [
                threading.Thread(target=_fetch, args=(gateway, results, index))
                for index in range(4)
            ]
            for thread in threads:
                thread.start()
            deadline = time.time() + 5
            while service.calls == 0 and time.time() < deadline:
                time.sleep(0.01)
            # Give the stragglers time to land on the in-flight future.
            time.sleep(0.3)
            service.release.set()
            for thread in threads:
                thread.join(timeout=10)
            assert service.calls == 1
            assert [results[i] for i in range(4)] == [(200, {"ok": True, "calls": 1})] * 4
            assert gateway.statistics()["coalesced"] == 3

    def test_mutations_are_never_coalesced(self):
        service = _SlowService()
        service.release.set()  # no need to block for this one
        with AsyncServiceGateway(service, port=0) as gateway:
            conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
            try:
                post(conn, "/v1/update", {"same": "payload"})
                post(conn, "/v1/update", {"same": "payload"})
            finally:
                conn.close()
            assert service.calls == 2
            assert gateway.statistics()["coalesced"] == 0

    def test_overload_answers_429_with_retry_after(self):
        service = _SlowService()
        with AsyncServiceGateway(service, port=0, max_pending=1) as gateway:
            results = {}
            # Two *different* payloads so coalescing cannot absorb the second.
            blocker = threading.Thread(
                target=lambda: _fetch(gateway, results, 0)
            )
            blocker.start()
            deadline = time.time() + 5
            while service.calls == 0 and time.time() < deadline:
                time.sleep(0.01)
            conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
            try:
                conn.request(
                    "POST",
                    "/v1/topl",
                    body=json.dumps({"different": "payload"}),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
            service.release.set()
            blocker.join(timeout=10)
            assert response.status == 429
            assert response.getheader("Retry-After") == "1"
            assert body["error"]["code"] == "OVERLOADED"
            assert gateway.statistics()["rejected"] == 1
