"""Error-code contract: every library exception maps to a stable wire code."""

from __future__ import annotations

import inspect

import pytest

from repro import exceptions
from repro.exceptions import (
    DatasetError,
    DynamicUpdateError,
    EdgeNotFoundError,
    GraphError,
    IndexError_,
    InvalidProbabilityError,
    MalformedRequestError,
    QueryParameterError,
    ReproError,
    ScenarioError,
    SerializationError,
    ServiceRequestError,
    ServingError,
    SessionExistsError,
    StoreFormatError,
    UnknownSessionError,
    UnsupportedSchemaVersionError,
    VertexNotFoundError,
)
from repro.service.errors import (
    ERROR_CODE_INTERNAL,
    ERROR_CODES,
    ServiceError,
    all_exception_codes,
    error_code_for,
    http_status_for,
    service_error_from_exception,
)

#: The stable contract: exception class -> wire code.  This table is
#: duplicated from the implementation ON PURPOSE — a code change here is an
#: API break and must be a conscious decision, not a refactor side-effect.
EXPECTED_CODES = {
    ReproError: "REPRO_ERROR",
    GraphError: "GRAPH_ERROR",
    VertexNotFoundError: "VERTEX_NOT_FOUND",
    EdgeNotFoundError: "EDGE_NOT_FOUND",
    InvalidProbabilityError: "INVALID_PROBABILITY",
    QueryParameterError: "QUERY_PARAMETER_INVALID",
    IndexError_: "INDEX_STATE_INVALID",
    DatasetError: "DATASET_ERROR",
    SerializationError: "SERIALIZATION_ERROR",
    StoreFormatError: "STORE_FORMAT_INVALID",
    ServingError: "SERVING_ERROR",
    DynamicUpdateError: "DYNAMIC_UPDATE_INVALID",
    ScenarioError: "SCENARIO_INVALID",
    ServiceRequestError: "SERVICE_REQUEST_INVALID",
    MalformedRequestError: "MALFORMED_REQUEST",
    UnsupportedSchemaVersionError: "UNSUPPORTED_SCHEMA_VERSION",
    UnknownSessionError: "UNKNOWN_SESSION",
    SessionExistsError: "SESSION_EXISTS",
}


class TestCodeMapping:
    @pytest.mark.parametrize(
        "exception_type,code", sorted(EXPECTED_CODES.items(), key=lambda kv: kv[1])
    )
    def test_exact_code_per_class(self, exception_type, code):
        assert error_code_for(exception_type) == code

    def test_every_library_exception_has_a_code(self):
        """New exceptions must get a stable code (or consciously inherit one)."""
        for name, obj in vars(exceptions).items():
            if inspect.isclass(obj) and issubclass(obj, ReproError):
                assert obj in EXPECTED_CODES, (
                    f"exception {name} has no entry in the stable code table; "
                    "add one (and document it in docs/service.md)"
                )

    def test_no_stale_entries_in_implementation(self):
        assert ERROR_CODES == EXPECTED_CODES

    def test_all_exception_codes_helper_matches(self):
        by_name = all_exception_codes()
        for exception_type, code in EXPECTED_CODES.items():
            assert by_name[exception_type.__name__] == code
        # IndexStateError is the public alias of IndexError_.
        assert by_name["IndexStateError"] == "INDEX_STATE_INVALID"

    def test_instance_and_class_agree(self):
        assert error_code_for(UnknownSessionError("x")) == error_code_for(
            UnknownSessionError
        )

    def test_future_subclass_inherits_parent_code(self):
        class BrandNewGraphProblem(GraphError):
            pass

        assert error_code_for(BrandNewGraphProblem("boom")) == "GRAPH_ERROR"

    def test_non_repro_exception_is_internal(self):
        assert error_code_for(ValueError("x")) == ERROR_CODE_INTERNAL
        assert error_code_for(RuntimeError) == ERROR_CODE_INTERNAL


class TestHttpStatuses:
    @pytest.mark.parametrize(
        "code,status",
        [
            ("UNKNOWN_SESSION", 404),
            ("VERTEX_NOT_FOUND", 404),
            ("EDGE_NOT_FOUND", 404),
            ("DATASET_ERROR", 404),
            ("SESSION_EXISTS", 409),
            ("QUERY_PARAMETER_INVALID", 422),
            ("DYNAMIC_UPDATE_INVALID", 422),
            ("MALFORMED_REQUEST", 400),
            ("UNSUPPORTED_SCHEMA_VERSION", 400),
            ("GRAPH_ERROR", 400),
            (ERROR_CODE_INTERNAL, 500),
        ],
    )
    def test_status_per_code(self, code, status):
        assert http_status_for(code) == status

    def test_unlisted_codes_default_to_400(self):
        assert http_status_for("SOME_FUTURE_CODE") == 400


class TestServiceErrorValue:
    def test_from_repro_error_keeps_message(self):
        error = service_error_from_exception(UnknownSessionError("ghost"))
        assert error.code == "UNKNOWN_SESSION"
        assert "ghost" in error.message
        assert error.http_status == 404

    def test_from_internal_error_hides_message(self):
        error = service_error_from_exception(ValueError("/secret/path leaked"))
        assert error.code == ERROR_CODE_INTERNAL
        assert "/secret/path" not in error.message
        assert "ValueError" in error.message

    def test_json_round_trip(self):
        error = ServiceError(code="UNKNOWN_SESSION", message="gone", detail={"s": "x"})
        assert ServiceError.from_json(error.to_json()) == error

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(MalformedRequestError):
            ServiceError.from_json({"code": "X", "message": "m", "extra": 1})

    def test_from_json_rejects_missing_fields(self):
        with pytest.raises(MalformedRequestError):
            ServiceError.from_json({"code": "X"})
