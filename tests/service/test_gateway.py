"""HTTP gateway tests: routing, error statuses, NDJSON streaming."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.query.params import make_dtopl_query, make_topl_query
from repro.service.facade import CommunityService
from repro.service.gateway import ServiceGateway
from repro.service.schema import (
    SCHEMA_VERSION,
    BatchRequest,
    BuildRequest,
    DToplRequest,
    ToplRequest,
    UpdateRequest,
    community_to_wire,
)
from repro.dynamic.updates import EdgeUpdate

TOPL = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)
DTOPL = make_dtopl_query({"movies"}, k=3, radius=2, theta=0.2, top_l=2)


@pytest.fixture(scope="module")
def gateway(built_engine):
    service = CommunityService()
    service.adopt(built_engine, session="hosted")
    with ServiceGateway(service, port=0) as running:
        yield running


def http(gateway, method, path, document=None, headers=None):
    """One HTTP round trip; returns (status, parsed_body_bytes)."""
    data = None if document is None else json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        gateway.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def http_json(gateway, method, path, document=None, headers=None):
    status, body = http(gateway, method, path, document, headers)
    return status, json.loads(body)


class TestRoutes:
    def test_health_reports_sessions_and_diagnostics(self, gateway):
        status, body = http_json(gateway, "GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        (session,) = [s for s in body["sessions"] if s["name"] == "hosted"]
        assert session["engine"]["backend"] == "reference"
        assert "index_schema_version" in session["engine"]

    def test_sessions_listing(self, gateway):
        status, body = http_json(gateway, "GET", "/v1/sessions")
        assert status == 200
        assert "hosted" in [s["name"] for s in body["sessions"]]

    def test_topl_round_trip(self, gateway):
        status, body = http_json(
            gateway, "POST", "/v1/topl",
            ToplRequest(query=TOPL, session="hosted").to_json(),
        )
        assert status == 200
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["session"] == "hosted"
        assert len(body["communities"]) <= TOPL.top_l
        # The gateway answer is bit-identical to the in-process one.
        direct = gateway.service.engine("hosted").topl(TOPL)
        assert body["communities"] == json.loads(
            json.dumps([community_to_wire(c) for c in direct.communities])
        )

    def test_dtopl_round_trip(self, gateway):
        status, body = http_json(
            gateway, "POST", "/v1/dtopl",
            DToplRequest(query=DTOPL, session="hosted").to_json(),
        )
        assert status == 200
        assert body["diversity_score"] >= 0.0

    def test_build_update_query_lifecycle(self, gateway, service_graph_doc):
        status, body = http_json(
            gateway, "POST", "/v1/build",
            BuildRequest(
                session="lifecycle",
                graph=service_graph_doc,
                config={"max_radius": 2},
            ).to_json(),
        )
        assert status == 200
        assert body["epoch"] == 0
        status, body = http_json(
            gateway, "POST", "/v1/update",
            UpdateRequest(
                session="lifecycle",
                edits=(EdgeUpdate.insert(0, 61, 0.4),),
                damage_threshold=1.0,
            ).to_json(),
        )
        assert status == 200
        assert body["epoch"] == 1
        status, body = http_json(
            gateway, "POST", "/v1/topl",
            ToplRequest(query=TOPL, session="lifecycle").to_json(),
        )
        assert status == 200
        assert body["epoch"] == 1

    def test_batch_buffered(self, gateway):
        status, body = http_json(
            gateway, "POST", "/v1/batch",
            BatchRequest(session="hosted", queries=(TOPL, DTOPL)).to_json(),
        )
        assert status == 200
        assert [r["type"] for r in body["results"]] == ["topl", "dtopl"]
        assert body["statistics"]["total_queries"] == 2
        assert "result_cache" in body["cache_statistics"]


class TestStreaming:
    def test_batch_ndjson_via_query_parameter(self, gateway):
        status, raw = http(
            gateway, "POST", "/v1/batch?stream=1",
            BatchRequest(session="hosted", queries=(TOPL, DTOPL, TOPL)).to_json(),
        )
        assert status == 200
        lines = [json.loads(line) for line in raw.splitlines()]
        assert [line["kind"] for line in lines] == [
            "result", "result", "result", "summary",
        ]
        assert [line["position"] for line in lines[:-1]] == [0, 1, 2]
        summary = lines[-1]
        assert summary["total_queries"] == 3
        assert summary["answered"] == 3
        assert summary["session"] == "hosted"
        assert "cache_statistics" in summary

    def test_batch_ndjson_via_accept_header(self, gateway):
        status, raw = http(
            gateway, "POST", "/v1/batch",
            BatchRequest(session="hosted", queries=(TOPL,)).to_json(),
            headers={"Accept": "application/x-ndjson"},
        )
        assert status == 200
        lines = [json.loads(line) for line in raw.splitlines()]
        assert [line["kind"] for line in lines] == ["result", "summary"]

    def test_streamed_results_match_buffered(self, gateway):
        document = BatchRequest(session="hosted", queries=(TOPL, DTOPL)).to_json()
        _, buffered = http_json(gateway, "POST", "/v1/batch", document)
        _, raw = http(gateway, "POST", "/v1/batch?stream=1", document)
        streamed = [
            json.loads(line)["result"]
            for line in raw.splitlines()
            if json.loads(line)["kind"] == "result"
        ]
        drop = lambda r: {k: v for k, v in r.items() if k != "statistics"}  # noqa: E731
        assert [drop(r) for r in streamed] == [drop(r) for r in buffered["results"]]

    def test_streaming_unknown_session_fails_before_stream(self, gateway):
        status, body = http_json(
            gateway, "POST", "/v1/batch?stream=1",
            BatchRequest(session="ghost", queries=(TOPL,)).to_json(),
        )
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_SESSION"


class TestErrorStatuses:
    def test_unknown_session_404(self, gateway):
        status, body = http_json(
            gateway, "POST", "/v1/topl",
            ToplRequest(query=TOPL, session="ghost").to_json(),
        )
        assert status == 404
        assert body["error"]["code"] == "UNKNOWN_SESSION"

    def test_malformed_json_400(self, gateway):
        request = urllib.request.Request(
            gateway.url + "/v1/topl", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "MALFORMED_REQUEST"

    def test_empty_body_400(self, gateway):
        status, body = http_json(gateway, "POST", "/v1/topl", {})
        assert status == 400  # missing schema_version -> malformed
        assert body["error"]["code"] == "MALFORMED_REQUEST"

    def test_unsupported_schema_version_400(self, gateway):
        document = ToplRequest(query=TOPL, session="hosted").to_json()
        document["schema_version"] = 999
        status, body = http_json(gateway, "POST", "/v1/topl", document)
        assert status == 400
        assert body["error"]["code"] == "UNSUPPORTED_SCHEMA_VERSION"

    def test_out_of_range_query_parameter_422(self, gateway):
        document = ToplRequest(query=TOPL, session="hosted").to_json()
        document["query"]["k"] = 1
        status, body = http_json(gateway, "POST", "/v1/topl", document)
        assert status == 422
        assert body["error"]["code"] == "QUERY_PARAMETER_INVALID"

    def test_invalid_edit_script_422(self, gateway):
        document = UpdateRequest(session="hosted", edits=()).to_json()
        document["edits"] = [{"op": "delete", "u": 0, "v": 0}]
        status, body = http_json(gateway, "POST", "/v1/update", document)
        assert status == 422
        assert body["error"]["code"] == "DYNAMIC_UPDATE_INVALID"

    def test_unknown_route_404(self, gateway):
        status, body = http_json(gateway, "GET", "/v1/frobnicate")
        assert status == 404
        assert body["error"]["code"] == "NOT_FOUND"
        status, body = http_json(gateway, "POST", "/v1/frobnicate", {})
        assert status == 404

    def test_method_not_allowed_405(self, gateway):
        status, body = http_json(gateway, "DELETE", "/v1/health")
        assert status == 405
        assert body["error"]["code"] == "METHOD_NOT_ALLOWED"

    def test_duplicate_build_conflict_409(self, gateway, service_graph_doc):
        document = BuildRequest(session="hosted", graph=service_graph_doc).to_json()
        status, body = http_json(gateway, "POST", "/v1/build", document)
        assert status == 409
        assert body["error"]["code"] == "SESSION_EXISTS"
