"""Worker-pool behaviour: replication, failover, degradation, restart.

These tests run the real process-backed pool (2 shards x 2 replicas):
round-robin routing over live replicas, hard-killed replicas failing over
mid-batch without changing a single answer, ``restart_dead`` respawning
from the router engine, and the loud failure once every replica of a shard
is gone.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.exceptions import ServingError
from repro.graph.datasets import uni
from repro.query.params import make_topl_query
from repro.service.facade import CommunityService
from repro.service.schema import BatchRequest, result_to_wire
from repro.service.sharded import ShardedCommunityService
from repro.serve.batch import ServingConfig

#: Distinct queries, so no answer is served from the result cache and every
#: one exercises the fan-out (degradation must be observable).
QUERIES = [
    make_topl_query({"movies"}, k=3, radius=2, theta=theta, top_l=4)
    for theta in (0.05, 0.1, 0.15, 0.2, 0.25, 0.3)
]

_WORK_FIELDS = ("statistics", "cache_statistics", "elapsed_seconds", "elapsed_ms")


def answers_only(document):
    def strip(node):
        if isinstance(node, dict):
            for key in _WORK_FIELDS:
                node.pop(key, None)
            for value in node.values():
                strip(value)
        elif isinstance(node, list):
            for value in node:
                strip(value)

    document = json.loads(json.dumps(document))
    strip(document)
    return document


def fresh_engine():
    return InfluentialCommunityEngine.build(
        uni(num_vertices=100, rng=5),
        config=EngineConfig(max_radius=2),
        validate=False,
    )


@pytest.fixture(scope="module")
def expected():
    """The unsharded facade's answers (cache off) for every test query."""
    plain = CommunityService(
        serving_config=ServingConfig(result_cache_capacity=0)
    )
    plain.adopt(fresh_engine(), session="pool")
    return [
        answers_only(result_to_wire(plain.answer_one("pool", query)))
        for query in QUERIES
    ]


@pytest.fixture()
def sharded():
    service = ShardedCommunityService(
        num_shards=2,
        replicas=2,
        mode="process",
        serving_config=ServingConfig(result_cache_capacity=0),
    )
    service.adopt(fresh_engine(), session="pool")
    yield service
    service.close()


class TestPool:
    def test_round_robin_and_health(self, sharded, expected):
        for query, answer in zip(QUERIES[:4], expected):
            assert (
                answers_only(result_to_wire(sharded.answer_one("pool", query)))
                == answer
            )
        health = sharded.pool("pool").health()
        assert health["num_shards"] == 2
        assert health["replicas"] == 2
        assert health["mode"] == "process"
        assert all(
            replica["alive"] and "pid" in replica
            for shard in health["shards"]
            for replica in shard["replicas"]
        )

    def test_killed_replica_degrades_not_fails(self, sharded, expected):
        """A hard-killed replica mid-batch: identical answers, no error."""
        pool = sharded.pool("pool")
        first = sharded.answer_one("pool", QUERIES[0])
        assert answers_only(result_to_wire(first)) == expected[0]
        # The failure injector: one replica of shard 0 dies undetected.
        pool.kill_replica(0, 0)
        response = sharded.batch(
            BatchRequest(session="pool", queries=tuple(QUERIES[1:]))
        )
        assert [answers_only(r) for r in response.results] == expected[1:]
        health = pool.health()
        alive = [
            replica["alive"]
            for shard in health["shards"]
            for replica in shard["replicas"]
        ]
        assert alive.count(False) == 1  # the killed one, now detected

    def test_restart_dead_revives_from_router(self, sharded, expected):
        pool = sharded.pool("pool")
        pool.kill_replica(1, 1)
        # Detection happens on the next routed request or in restart_dead's
        # own liveness probe — either way one respawn must happen.
        assert pool.restart_dead() == 1
        assert pool.restarts == 1
        health = pool.health()
        assert all(
            replica["alive"]
            for shard in health["shards"]
            for replica in shard["replicas"]
        )
        assert (
            answers_only(result_to_wire(sharded.answer_one("pool", QUERIES[5])))
            == expected[5]
        )

    def test_whole_shard_down_fails_loudly(self, sharded):
        pool = sharded.pool("pool")
        pool.kill_replica(0, 0)
        pool.kill_replica(0, 1)
        with pytest.raises(ServingError, match="unavailable"):
            sharded.answer_one("pool", QUERIES[2])


def test_inline_failover_and_exhaustion():
    """The inline pool honours the same liveness contract as processes."""
    service = ShardedCommunityService(num_shards=2, replicas=2, mode="inline")
    service.adopt(fresh_engine(), session="pool")
    try:
        pool = service.pool("pool")
        pool.kill_replica(0, 0)
        result = service.answer_one("pool", QUERIES[0])  # replica 1 serves
        assert result.communities is not None
        pool.kill_replica(0, 1)
        with pytest.raises(ServingError, match="unavailable"):
            service.answer_one("pool", QUERIES[1])
        assert pool.restart_dead() == 2
    finally:
        service.close()


def test_shard_plan_is_stable_and_total():
    from repro.service.sharded import ShardPlan

    plan = ShardPlan(4)
    owners = {vertex: plan.owner(vertex) for vertex in range(1000)}
    assert set(owners.values()) <= set(range(4))
    # crc32-based ownership is deterministic across processes and runs.
    assert owners == {vertex: plan.owner(vertex) for vertex in range(1000)}
    sizes = plan.partition_sizes(range(1000))
    assert sum(sizes) == 1000
    assert all(size > 0 for size in sizes)
