"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.graph.datasets import uni
from repro.graph.io import graph_to_dict


@pytest.fixture(scope="session")
def service_graph():
    """One small graph shared (read-only) by the service tests."""
    return uni(num_vertices=120, rng=5)


@pytest.fixture(scope="session")
def service_graph_doc(service_graph):
    return graph_to_dict(service_graph)


@pytest.fixture(scope="session")
def built_engine(service_graph):
    """A pre-built engine for tests that adopt instead of building."""
    return InfluentialCommunityEngine.build(
        service_graph, config=EngineConfig(max_radius=2), validate=False
    )
