"""Threaded-gateway robustness: keep-alive reuse and disconnect handling.

Regression tests for two production bugs:

* a client that disconnected mid-NDJSON-stream crashed the handler thread —
  the ``except`` block wrote the terminal *error line* into the broken pipe
  it was handling, raising a second exception with no handler;
* a request with an unconsumed body (bad ``Content-Length``) left unread
  bytes on a kept-alive connection, which the next request-line parse then
  misread.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

import pytest

from repro.query.params import make_topl_query
from repro.service.facade import CommunityService
from repro.service.gateway import ServiceGateway
from repro.service.schema import BatchRequest, ToplRequest

TOPL = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)


@pytest.fixture(scope="module")
def gateway(built_engine):
    service = CommunityService()
    service.adopt(built_engine, session="hosted")
    with ServiceGateway(service, port=0) as running:
        yield running


def test_keep_alive_reuses_one_connection(gateway):
    """Two sequential requests on one HTTP/1.1 connection (the keep-alive
    contract ``protocol_version = "HTTP/1.1"`` + Content-Length promises)."""
    conn = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
    try:
        sockets = []
        for _ in range(2):
            conn.request(
                "POST",
                "/v1/topl",
                body=json.dumps(ToplRequest(query=TOPL, session="hosted").to_json()),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 200
            response.read()
            sockets.append(conn.sock)
        # http.client only keeps `sock` when the server honoured keep-alive;
        # the same object on both requests proves one TCP connection.
        assert sockets[0] is sockets[1] is not None
    finally:
        conn.close()


def test_disconnect_mid_stream_does_not_crash_the_handler(gateway):
    """Hang up mid-NDJSON-stream; the gateway must stay serviceable."""
    import struct

    document = BatchRequest(session="hosted", queries=tuple([TOPL] * 8)).to_json()
    body = json.dumps(document).encode("utf-8")
    with socket.create_connection((gateway.host, gateway.port), timeout=30) as raw:
        raw.sendall(
            b"POST /v1/batch?stream=1 HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        # Wait for the stream to start (status line + first result line),
        # then vanish abruptly (RST via SO_LINGER 0, the rudest way a
        # client can leave).
        raw.settimeout(10)
        data = b""
        while data.count(b"\n") < 2:
            chunk = raw.recv(4096)
            if not chunk:
                break
            data += chunk
        assert data.startswith(b"HTTP/1.1 200")
        raw.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    time.sleep(0.2)  # let the handler hit the broken pipe
    # The gateway answers follow-up requests: the handler died quietly.
    probe = http.client.HTTPConnection(gateway.host, gateway.port, timeout=30)
    try:
        probe.request("GET", "/v1/health")
        assert probe.getresponse().status == 200
    finally:
        probe.close()


def test_invalid_content_length_closes_the_connection(gateway):
    """An unconsumed body must not poison the keep-alive byte stream."""
    with socket.create_connection((gateway.host, gateway.port), timeout=30) as raw:
        raw.sendall(
            b"POST /v1/topl HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: nonsense\r\n"
            b"\r\n"
        )
        raw.settimeout(10)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = raw.recv(4096)
            if not chunk:
                break
            data += chunk
        head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert " 400 " in head.splitlines()[0]
        assert "connection: close" in head.lower()
        # The server closes: recv drains to EOF instead of waiting for a
        # next request that would misparse leftover bytes.
        while True:
            chunk = raw.recv(4096)
            if not chunk:
                break


def test_oversized_content_length_closes_the_connection(gateway):
    from repro.service.gateway import MAX_BODY_BYTES

    with socket.create_connection((gateway.host, gateway.port), timeout=30) as raw:
        raw.sendall(
            b"POST /v1/topl HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode() + b"\r\n"
            b"\r\n"
        )
        raw.settimeout(10)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = raw.recv(4096)
            if not chunk:
                break
            data += chunk
        head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert " 400 " in head.splitlines()[0]
        assert "connection: close" in head.lower()
