"""Wire-schema tests: round trips, strictness, and error paths."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.dynamic.updates import EdgeUpdate
from repro.exceptions import (
    DynamicUpdateError,
    MalformedRequestError,
    QueryParameterError,
    UnsupportedSchemaVersionError,
)
from repro.query.params import DTopLQuery, TopLQuery, make_dtopl_query, make_topl_query
from repro.service.schema import (
    SCHEMA_VERSION,
    BatchRequest,
    BuildRequest,
    DToplRequest,
    ErrorResponse,
    ToplRequest,
    UpdateRequest,
    decode_request,
    query_from_wire,
    query_to_wire,
)
from repro.service.errors import ServiceError


def wire_round_trip(document: dict) -> dict:
    """Push a document through real JSON text, like the gateway does."""
    return json.loads(json.dumps(document))


TOPL = make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3)
DTOPL = make_dtopl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=2, candidate_factor=2)


class TestQueryWire:
    def test_topl_round_trip_is_lossless(self):
        restored = query_from_wire(wire_round_trip(query_to_wire(TOPL)))
        assert restored == TOPL

    def test_dtopl_round_trip_is_lossless(self):
        restored = query_from_wire(wire_round_trip(query_to_wire(DTOPL)))
        assert restored == DTOPL

    def test_unknown_type_rejected(self):
        wire = query_to_wire(TOPL)
        wire["type"] = "mystery"
        with pytest.raises(MalformedRequestError):
            query_from_wire(wire)

    def test_unknown_field_rejected(self):
        wire = query_to_wire(TOPL)
        wire["surprise"] = 1
        with pytest.raises(MalformedRequestError):
            query_from_wire(wire)

    def test_candidate_factor_only_valid_on_dtopl(self):
        wire = query_to_wire(TOPL)
        wire["candidate_factor"] = 3
        with pytest.raises(MalformedRequestError):
            query_from_wire(wire)

    def test_non_string_keywords_rejected(self):
        wire = query_to_wire(TOPL)
        wire["keywords"] = ["ok", 7]
        with pytest.raises(MalformedRequestError):
            query_from_wire(wire)

    @pytest.mark.parametrize(
        "field,value",
        [("k", 1), ("radius", 0), ("theta", 1.5), ("theta", -0.1), ("top_l", 0)],
    )
    def test_out_of_range_parameters_raise_query_parameter_error(self, field, value):
        """Domain validation is the library's own — no drift possible."""
        wire = query_to_wire(TOPL)
        wire[field] = value
        with pytest.raises(QueryParameterError):
            query_from_wire(wire)

    def test_out_of_range_candidate_factor(self):
        wire = query_to_wire(DTOPL)
        wire["candidate_factor"] = 0
        with pytest.raises(QueryParameterError):
            query_from_wire(wire)

    def test_wrong_type_k_rejected_before_domain_validation(self):
        wire = query_to_wire(TOPL)
        wire["k"] = "four"
        with pytest.raises(MalformedRequestError):
            query_from_wire(wire)

    def test_boolean_k_rejected(self):
        wire = query_to_wire(TOPL)
        wire["k"] = True
        with pytest.raises(MalformedRequestError):
            query_from_wire(wire)


class TestRequestCodecs:
    def test_build_request_round_trip(self, service_graph_doc):
        request = BuildRequest(
            session="s",
            graph=service_graph_doc,
            config={"max_radius": 2, "backend": "fast"},
            save_index_path="/tmp/x.json",
            replace=True,
        )
        assert BuildRequest.from_json(wire_round_trip(request.to_json())) == request

    def test_build_request_requires_exactly_one_graph_source(self, service_graph_doc):
        with pytest.raises(MalformedRequestError):
            BuildRequest(session="s")
        with pytest.raises(MalformedRequestError):
            BuildRequest(session="s", graph=service_graph_doc, graph_path="x.json")

    def test_topl_request_round_trip(self):
        request = ToplRequest(query=TOPL, session="s", pruning={"score": False})
        assert ToplRequest.from_json(wire_round_trip(request.to_json())) == request

    def test_dtopl_request_round_trip(self):
        request = DToplRequest(query=DTOPL, session="s")
        assert DToplRequest.from_json(wire_round_trip(request.to_json())) == request

    def test_topl_request_rejects_dtopl_query_document(self):
        payload = ToplRequest(query=TOPL, session="s").to_json()
        payload["query"] = query_to_wire(DTOPL)
        with pytest.raises(MalformedRequestError):
            ToplRequest.from_json(payload)

    def test_update_request_round_trip(self):
        request = UpdateRequest(
            session="s",
            edits=(EdgeUpdate.insert(1, 2, 0.4, 0.3), EdgeUpdate.delete(1, 2)),
            damage_threshold=0.5,
        )
        assert UpdateRequest.from_json(wire_round_trip(request.to_json())) == request

    def test_update_request_malformed_edit_raises_dynamic_update_error(self):
        payload = UpdateRequest(session="s", edits=()).to_json()
        payload["edits"] = [{"op": "insert"}]  # missing endpoints
        with pytest.raises(DynamicUpdateError):
            UpdateRequest.from_json(payload)

    def test_batch_request_round_trip(self):
        request = BatchRequest(session="s", queries=(TOPL, DTOPL, TOPL), workers=2)
        restored = BatchRequest.from_json(wire_round_trip(request.to_json()))
        assert restored == request
        assert isinstance(restored.queries[1], DTopLQuery)
        assert isinstance(restored.queries[0], TopLQuery)

    def test_batch_request_rejects_bad_workers(self):
        with pytest.raises(MalformedRequestError):
            BatchRequest(session="s", queries=(TOPL,), workers=0)

    def test_pruning_validation(self):
        with pytest.raises(MalformedRequestError):
            ToplRequest(query=TOPL, session="s", pruning={"typo": True})
        with pytest.raises(MalformedRequestError):
            ToplRequest(query=TOPL, session="s", pruning={"score": "yes"})

    def test_empty_session_rejected(self):
        payload = ToplRequest(query=TOPL, session="s").to_json()
        payload["session"] = ""
        with pytest.raises(MalformedRequestError):
            ToplRequest.from_json(payload)


class TestSchemaVersionGate:
    @pytest.mark.parametrize("endpoint", ["build", "topl", "dtopl", "update", "batch"])
    def test_unknown_schema_version_rejected_everywhere(self, endpoint):
        with pytest.raises(UnsupportedSchemaVersionError):
            decode_request(endpoint, {"schema_version": SCHEMA_VERSION + 1})

    def test_missing_schema_version_rejected(self):
        payload = ToplRequest(query=TOPL, session="s").to_json()
        del payload["schema_version"]
        with pytest.raises(MalformedRequestError):
            ToplRequest.from_json(payload)

    @pytest.mark.parametrize("version", [True, "1", 1.0, None])
    def test_non_integer_schema_version_rejected(self, version):
        """Booleans must not pass as version 1 (bool == 1 in Python)."""
        payload = ToplRequest(query=TOPL, session="s").to_json()
        payload["schema_version"] = version
        with pytest.raises(MalformedRequestError):
            ToplRequest.from_json(payload)

    @pytest.mark.parametrize("endpoint", ["build", "topl", "dtopl", "update", "batch"])
    def test_session_defaults_to_default_on_every_endpoint(
        self, endpoint, service_graph_doc
    ):
        """The wire contract is uniform: omitting 'session' means \"default\"."""
        documents = {
            "build": BuildRequest(graph=service_graph_doc).to_json(),
            "topl": ToplRequest(query=TOPL).to_json(),
            "dtopl": DToplRequest(query=DTOPL).to_json(),
            "update": UpdateRequest(edits=()).to_json(),
            "batch": BatchRequest(queries=(TOPL,)).to_json(),
        }
        document = documents[endpoint]
        document.pop("session", None)
        assert decode_request(endpoint, document).session == "default"

    def test_non_object_payload_rejected(self):
        with pytest.raises(MalformedRequestError):
            decode_request("topl", ["not", "an", "object"])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(MalformedRequestError):
            decode_request("frobnicate", {})


class TestResponseEnvelopes:
    def test_error_response_round_trip(self):
        response = ErrorResponse(
            error=ServiceError(code="UNKNOWN_SESSION", message="gone"), session="s"
        )
        restored = ErrorResponse.from_json(wire_round_trip(response.to_json()))
        assert restored == response

    def test_error_response_carries_api_version(self):
        document = ErrorResponse(
            error=ServiceError(code="X", message="m")
        ).to_json()
        assert document["api_version"] == __version__
        assert document["schema_version"] == SCHEMA_VERSION
