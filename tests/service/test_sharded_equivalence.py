"""Shard-merge equivalence: the acceptance gate of the sharded serving tier.

The sharded facade's answers must be **bit-identical** to the unsharded
facade's over the full lifecycle — single queries, mixed batches, and
queries re-asked after updates — for every shard count and both graph-core
backends.  All comparisons are on wire forms pushed through real JSON text,
with the work-accounting fields (``statistics``/``cache_statistics``)
stripped: a fan-out legitimately *works* differently, it must never
*answer* differently.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import random_update_batch
from repro.graph.datasets import uni
from repro.query.params import make_dtopl_query, make_topl_query
from repro.service.facade import CommunityService
from repro.service.schema import BatchRequest, UpdateRequest, result_to_wire
from repro.service.sharded import ShardedCommunityService

QUERIES = [
    make_topl_query({"movies", "books"}, k=3, radius=2, theta=0.2, top_l=3),
    make_topl_query({"sports"}, k=3, radius=1, theta=0.1, top_l=5),
    make_topl_query({"movies"}, k=4, radius=2, theta=0.1, top_l=4),
    make_dtopl_query({"movies", "music"}, k=3, radius=2, theta=0.2, top_l=2),
    make_dtopl_query({"books"}, k=4, radius=2, theta=0.1, top_l=3, candidate_factor=2),
]

_WORK_FIELDS = ("statistics", "cache_statistics", "elapsed_seconds", "elapsed_ms")


def answers_only(document) -> dict:
    """Canonical answer-bearing wire form, through real JSON text."""

    def strip(node):
        if isinstance(node, dict):
            for key in _WORK_FIELDS:
                node.pop(key, None)
            for value in node.values():
                strip(value)
        elif isinstance(node, list):
            for value in node:
                strip(value)

    document = json.loads(json.dumps(document))
    strip(document)
    return document


def fresh_engine(backend: str) -> InfluentialCommunityEngine:
    # A fresh graph per engine: updates mutate the graph in place, so the
    # two facades must never share one object.
    return InfluentialCommunityEngine.build(
        uni(num_vertices=120, rng=5),
        config=EngineConfig(max_radius=2, backend=backend),
        validate=False,
    )


@pytest.fixture(
    scope="module",
    params=[(2, "reference"), (3, "reference"), (4, "reference"), (3, "fast")],
    ids=["2shards-ref", "3shards-ref", "4shards-ref", "3shards-fast"],
)
def pair(request):
    """(plain, sharded) services over identical graphs, shard count varied."""
    num_shards, backend = request.param
    plain = CommunityService()
    plain.adopt(fresh_engine(backend), session="eq")
    sharded = ShardedCommunityService(num_shards=num_shards, mode="inline")
    sharded.adopt(fresh_engine(backend), session="eq")
    yield plain, sharded
    sharded.close()


class TestShardMergeEquivalence:
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_single_queries_bit_identical(self, pair, query_index):
        plain, sharded = pair
        query = QUERIES[query_index]
        expected = answers_only(result_to_wire(plain.answer_one("eq", query)))
        answered = answers_only(result_to_wire(sharded.answer_one("eq", query)))
        assert answered == expected

    def test_batch_bit_identical(self, pair):
        plain, sharded = pair
        request = BatchRequest(session="eq", queries=tuple(QUERIES))
        expected = answers_only(list(plain.batch(request).results))
        answered = answers_only(list(sharded.batch(request).results))
        assert answered == expected

    def test_equivalence_survives_updates(self, pair):
        """Broadcast updates keep every shard on the router's epoch."""
        plain, sharded = pair
        for rng in (21, 22):
            batch = random_update_batch(plain.engine("eq").graph, 5, rng=rng)
            edits = tuple(batch)
            plain.update(UpdateRequest(session="eq", edits=edits))
            sharded.update(UpdateRequest(session="eq", edits=edits))
            for query in QUERIES[:3]:
                expected = answers_only(result_to_wire(plain.answer_one("eq", query)))
                answered = answers_only(
                    result_to_wire(sharded.answer_one("eq", query))
                )
                assert answered == expected

    def test_pruning_override_falls_back_to_router(self, pair):
        """Request-level pruning overrides answer off the router engine."""
        from repro.service.schema import ToplRequest

        plain, sharded = pair
        request = ToplRequest(
            session="eq", query=QUERIES[0], pruning={"score": False}
        )
        expected = answers_only(plain.topl(request).to_json())
        answered = answers_only(sharded.topl(request).to_json())
        expected.pop("session", None)
        answered.pop("session", None)
        assert answered == expected


def test_health_reports_shard_topology():
    sharded = ShardedCommunityService(num_shards=2, mode="inline")
    sharded.adopt(fresh_engine("reference"), session="topo")
    try:
        response = sharded.health()
        (entry,) = [s for s in response.sessions if s["name"] == "topo"]
        assert entry["shards"]["num_shards"] == 2
        assert entry["shards"]["mode"] == "inline"
        assert all(
            replica["alive"]
            for shard in entry["shards"]["shards"]
            for replica in shard["replicas"]
        )
    finally:
        sharded.close()


def test_merge_rejects_out_of_sync_worker():
    """A returned centre missing from the canonical order fails loudly."""
    from repro.exceptions import ServingError
    from repro.influence.propagation import InfluencedCommunity
    from repro.query.results import SeedCommunity
    from repro.service.sharded.merge import merge_shard_candidates

    ghost = SeedCommunity(
        center="nobody",
        vertices=frozenset({"nobody"}),
        influenced=InfluencedCommunity(
            seed_vertices=frozenset({"nobody"}), cpp={"nobody": 1.0}, threshold=0.1
        ),
        k=3,
        radius=2,
    )
    with pytest.raises(ServingError, match="out of sync"):
        merge_shard_candidates([[ghost]], positions={}, capacity=3)
