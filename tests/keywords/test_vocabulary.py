"""Unit tests for vocabularies and keyword distributions."""

import random
from collections import Counter

import pytest

from repro.exceptions import DatasetError
from repro.keywords.vocabulary import (
    GaussianKeywordDistribution,
    UniformKeywordDistribution,
    Vocabulary,
    ZipfKeywordDistribution,
    default_vocabulary,
    distribution_names,
    make_distribution,
)


class TestVocabulary:
    def test_basic_properties(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        assert len(vocabulary) == 3
        assert "b" in vocabulary
        assert vocabulary[0] == "a"
        assert vocabulary.index_of("c") == 2

    def test_duplicates_removed_preserving_order(self):
        vocabulary = Vocabulary(["a", "b", "a", "c"])
        assert vocabulary.keywords == ("a", "b", "c")

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(DatasetError):
            Vocabulary([])

    def test_unknown_keyword_rejected(self):
        vocabulary = Vocabulary(["a"])
        with pytest.raises(DatasetError):
            vocabulary.index_of("z")

    def test_sample_without_replacement(self):
        vocabulary = Vocabulary([f"kw{i}" for i in range(10)])
        sample = vocabulary.sample(5, rng=1)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_sample_too_many_rejected(self):
        vocabulary = Vocabulary(["a", "b"])
        with pytest.raises(DatasetError):
            vocabulary.sample(3)

    def test_default_vocabulary_sizes(self):
        assert len(default_vocabulary(5)) == 5
        assert len(default_vocabulary(80)) == 80
        assert "movies" in default_vocabulary(10)

    def test_default_vocabulary_invalid_size(self):
        with pytest.raises(DatasetError):
            default_vocabulary(0)


class TestDistributions:
    def _frequencies(self, distribution, draws=400, per_draw=1, seed=3):
        rng = random.Random(seed)
        counter = Counter()
        for _ in range(draws):
            counter.update(distribution.sample_keywords(per_draw, rng=rng))
        return counter

    def test_uniform_is_roughly_flat(self):
        vocabulary = default_vocabulary(10)
        counts = self._frequencies(UniformKeywordDistribution(vocabulary))
        assert max(counts.values()) < 3 * min(counts.values())

    def test_zipf_is_skewed_towards_low_ranks(self):
        vocabulary = default_vocabulary(20)
        counts = self._frequencies(ZipfKeywordDistribution(vocabulary, exponent=1.2))
        first = counts.get(vocabulary[0], 0)
        last = counts.get(vocabulary[-1], 0)
        assert first > last

    def test_gaussian_is_peaked_at_the_middle(self):
        vocabulary = default_vocabulary(21)
        counts = self._frequencies(GaussianKeywordDistribution(vocabulary))
        middle = counts.get(vocabulary[10], 0)
        edge = counts.get(vocabulary[0], 0)
        assert middle > edge

    def test_sample_count_respected_and_distinct(self):
        vocabulary = default_vocabulary(15)
        distribution = UniformKeywordDistribution(vocabulary)
        sample = distribution.sample_keywords(6, rng=1)
        assert len(sample) == 6

    def test_sample_zero_or_negative(self):
        vocabulary = default_vocabulary(5)
        distribution = UniformKeywordDistribution(vocabulary)
        assert distribution.sample_keywords(0) == frozenset()
        assert distribution.sample_keywords(-2) == frozenset()

    def test_sample_capped_at_domain(self):
        vocabulary = default_vocabulary(4)
        distribution = ZipfKeywordDistribution(vocabulary)
        assert len(distribution.sample_keywords(10, rng=1)) == 4

    def test_invalid_parameters_rejected(self):
        vocabulary = default_vocabulary(5)
        with pytest.raises(DatasetError):
            ZipfKeywordDistribution(vocabulary, exponent=0)
        with pytest.raises(DatasetError):
            GaussianKeywordDistribution(vocabulary, std_fraction=0)


class TestFactory:
    def test_make_distribution_by_name(self):
        vocabulary = default_vocabulary(5)
        assert isinstance(make_distribution("uniform", vocabulary), UniformKeywordDistribution)
        assert isinstance(make_distribution("Gaussian", vocabulary), GaussianKeywordDistribution)
        assert isinstance(make_distribution("ZIPF", vocabulary), ZipfKeywordDistribution)

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            make_distribution("poisson", default_vocabulary(5))

    def test_distribution_names(self):
        assert set(distribution_names()) == {"uniform", "gaussian", "zipf"}
