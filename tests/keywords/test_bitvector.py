"""Unit tests for keyword bit vectors."""

import pytest

from repro.exceptions import GraphError
from repro.keywords.bitvector import (
    BitVector,
    aggregate,
    hash_keyword,
    may_share_keyword,
)


class TestHashKeyword:
    def test_stable_across_calls(self):
        assert hash_keyword("movies") == hash_keyword("movies")

    def test_within_range(self):
        for keyword in ("movies", "books", "a", "very-long-keyword-with-dashes"):
            assert 0 <= hash_keyword(keyword, 32) < 32

    def test_respects_num_bits(self):
        positions = {hash_keyword(f"kw{i}", 8) for i in range(100)}
        assert positions <= set(range(8))

    def test_invalid_num_bits(self):
        with pytest.raises(GraphError):
            hash_keyword("movies", 0)


class TestBitVector:
    def test_from_keywords_sets_expected_bits(self):
        vector = BitVector.from_keywords({"movies", "books"})
        assert vector.popcount() in (1, 2)  # collisions possible but bounded
        for keyword in ("movies", "books"):
            assert vector.bits & (1 << hash_keyword(keyword))

    def test_empty_vector_is_falsy(self):
        assert not BitVector.empty()
        assert BitVector.from_keywords(set()).bits == 0

    def test_or_aggregates(self):
        a = BitVector.from_keywords({"movies"})
        b = BitVector.from_keywords({"books"})
        combined = a | b
        assert combined.contains_all(a)
        assert combined.contains_all(b)

    def test_and_intersection(self):
        a = BitVector.from_keywords({"movies", "books"})
        b = BitVector.from_keywords({"books", "sports"})
        assert (a & b).bits != 0
        assert a.intersects(b)

    def test_disjoint_keywords_usually_disjoint_bits(self):
        a = BitVector.from_keywords({"movies"})
        b = BitVector.from_keywords({"gardening"})
        # These two specific keywords do not collide under blake2b mod 64.
        if hash_keyword("movies") != hash_keyword("gardening"):
            assert not a.intersects(b)

    def test_equality_and_hash(self):
        a = BitVector.from_keywords({"movies"})
        b = BitVector.from_keywords({"movies"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitVector.from_keywords({"books"})

    def test_width_mismatch_rejected(self):
        a = BitVector.empty(32)
        b = BitVector.empty(64)
        with pytest.raises(GraphError):
            _ = a | b
        with pytest.raises(GraphError):
            a.intersects(b)

    def test_bits_are_masked_to_width(self):
        vector = BitVector(bits=(1 << 80) | 0b101, num_bits=8)
        assert vector.bits == 0b101

    def test_set_positions(self):
        vector = BitVector(bits=0b1001, num_bits=8)
        assert vector.set_positions() == (0, 3)

    def test_invalid_width(self):
        with pytest.raises(GraphError):
            BitVector(0, num_bits=0)


class TestAggregateAndPruningHelper:
    def test_aggregate_many(self):
        vectors = [BitVector.from_keywords({f"kw{i}"}) for i in range(10)]
        combined = aggregate(vectors)
        assert all(combined.contains_all(vector) for vector in vectors)

    def test_aggregate_empty_input(self):
        assert aggregate([]) == BitVector.empty()

    def test_may_share_keyword_true_on_overlap(self):
        candidate = BitVector.from_keywords({"movies", "books"})
        query = BitVector.from_keywords({"books"})
        assert may_share_keyword(candidate, query)

    def test_may_share_keyword_false_is_definitive(self):
        # When the AND is zero there is provably no shared keyword.
        candidate = BitVector.from_keywords({"movies"})
        query = BitVector.from_keywords({"movies"})
        assert may_share_keyword(candidate, query)
        empty = BitVector.empty()
        assert not may_share_keyword(empty, query)
