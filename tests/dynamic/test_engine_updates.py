"""Tests for ``InfluentialCommunityEngine.apply_updates`` (modes, epoch, report)."""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.exceptions import DynamicUpdateError, QueryParameterError
from repro.query.params import make_topl_query

from tests.dynamic.strategies_dynamic import dynamic_config

_CONFIG = dynamic_config(
    max_radius=2, thresholds=(0.1, 0.2, 0.3), fanout=3, leaf_capacity=4
)


@pytest.fixture
def bridge_engine(two_cliques_bridge):
    return InfluentialCommunityEngine.build(
        two_cliques_bridge, config=_CONFIG, validate=False
    )


class TestApplyUpdates:
    def test_incremental_mode_and_epoch(self, bridge_engine):
        report = bridge_engine.apply_updates(
            [EdgeUpdate.delete(4, 5)], damage_threshold=1.0
        )
        assert report.mode == "incremental"
        assert report.deletions == 1 and report.insertions == 0
        assert report.epoch == 1 == bridge_engine.epoch
        assert 0 < report.affected_vertices <= report.total_vertices
        assert report.elapsed_seconds >= 0.0

    def test_accepts_plain_edit_iterables(self, bridge_engine):
        report = bridge_engine.apply_updates(
            (EdgeUpdate.insert(0, 9, 0.4),), damage_threshold=1.0
        )
        assert report.insertions == 1
        assert bridge_engine.graph.has_edge(0, 9)

    def test_noop_batch_keeps_epoch(self, bridge_engine):
        report = bridge_engine.apply_updates(UpdateBatch())
        assert report.mode == "noop"
        assert report.epoch == 0 == bridge_engine.epoch

    def test_invalid_batch_leaves_engine_untouched(self, bridge_engine):
        edges_before = bridge_engine.graph.num_edges()
        with pytest.raises(DynamicUpdateError):
            bridge_engine.apply_updates(
                [EdgeUpdate.delete(4, 5), EdgeUpdate.delete(4, 5)]
            )
        assert bridge_engine.graph.num_edges() == edges_before
        assert bridge_engine.epoch == 0

    def test_damage_threshold_forces_rebuild(self, bridge_engine):
        old_index = bridge_engine.index
        report = bridge_engine.apply_updates(
            [EdgeUpdate.delete(4, 5)], damage_threshold=0.01
        )
        assert report.mode == "rebuild"
        assert bridge_engine.index is not old_index
        assert bridge_engine.epoch == 1

    def test_rebuild_flag(self, bridge_engine):
        report = bridge_engine.apply_updates(
            [EdgeUpdate.insert(1, 8, 0.3), EdgeUpdate.insert(0, 77, 0.2)],
            damage_threshold=1.0,
            rebuild=True,
        )
        assert report.mode == "rebuild"
        assert report.new_vertices == 1
        assert report.damage_ratio == 1.0
        assert bridge_engine.graph.has_edge(1, 8)
        assert bridge_engine.index.num_vertices() == bridge_engine.graph.num_vertices()

    def test_out_of_range_damage_threshold_rejected(self, bridge_engine):
        from repro.exceptions import QueryParameterError

        for bad in (0.0, -1.0, 1.5):
            with pytest.raises(QueryParameterError):
                bridge_engine.apply_updates(
                    [EdgeUpdate.delete(4, 5)], damage_threshold=bad
                )
        assert bridge_engine.graph.has_edge(4, 5)  # nothing applied
        assert bridge_engine.epoch == 0

    def test_new_vertex_becomes_queryable(self, bridge_engine):
        before = bridge_engine.index.num_vertices()
        report = bridge_engine.apply_updates(
            [
                EdgeUpdate.insert(0, 100, 0.9, keywords_v={"movies"}),
                EdgeUpdate.insert(1, 100, 0.9),
                EdgeUpdate.insert(2, 100, 0.9),
                EdgeUpdate.insert(3, 100, 0.9),
            ],
            damage_threshold=1.0,
        )
        assert report.mode == "incremental"
        assert report.new_vertices == 1
        assert bridge_engine.index.num_vertices() == before + 1
        result = bridge_engine.topl(
            make_topl_query({"movies"}, k=4, radius=1, theta=0.2, top_l=1)
        )
        assert len(result) == 1
        assert 100 in result[0].vertices

    def test_sequential_batches_compose(self, bridge_engine):
        bridge_engine.apply_updates([EdgeUpdate.delete(4, 5)], damage_threshold=1.0)
        report = bridge_engine.apply_updates(
            [EdgeUpdate.insert(4, 5, 0.6)], damage_threshold=1.0
        )
        assert report.epoch == 2
        assert bridge_engine.graph.has_edge(4, 5)

    def test_report_as_dict_round_trips(self, bridge_engine):
        report = bridge_engine.apply_updates(
            [EdgeUpdate.delete(4, 5)], damage_threshold=1.0
        )
        payload = report.as_dict()
        assert payload["mode"] == report.mode
        assert payload["applied_mode"] == report.applied_mode
        assert payload["epoch"] == 1
        assert set(payload) >= {
            "affected_vertices", "damage_ratio", "damage_threshold",
            "support_changed_edges", "truss_changed_edges",
            "overlay_dirt_ratio", "compacted",
        }

    def test_config_damage_threshold_validation(self):
        with pytest.raises(QueryParameterError):
            EngineConfig(damage_threshold=0.0)
        with pytest.raises(QueryParameterError):
            EngineConfig(damage_threshold=1.5)
        assert "damage_threshold" in EngineConfig().describe()

    def test_from_saved_index_supports_updates(self, two_cliques_bridge, tmp_path):
        engine = InfluentialCommunityEngine.build(
            two_cliques_bridge, config=_CONFIG, validate=False
        )
        path = tmp_path / "index.json"
        engine.save_index(path)
        loaded = InfluentialCommunityEngine.from_saved_index(
            two_cliques_bridge.copy(), path
        )
        report = loaded.apply_updates([EdgeUpdate.delete(4, 5)], damage_threshold=1.0)
        assert report.mode == "incremental"
        assert not loaded.graph.has_edge(4, 5)


class TestOverlayCompaction:
    """Fast-backend snapshot lifecycle: patch in place, compact past the knob."""

    @pytest.fixture
    def fast_engine(self, two_cliques_bridge):
        config = dynamic_config(
            max_radius=2, thresholds=(0.1, 0.2, 0.3), fanout=3, leaf_capacity=4,
            backend="fast", compact_dirt_ratio=0.2,
        )
        return InfluentialCommunityEngine.build(
            two_cliques_bridge, config=config, validate=False
        )

    def test_patch_then_compact_then_patch_again(self, fast_engine):
        from repro.fastgraph.csr import CSRGraph
        from repro.fastgraph.delta import DeltaCSR

        first = fast_engine.apply_updates(
            [EdgeUpdate.delete(4, 5)], damage_threshold=1.0
        )
        assert first.applied_mode == "patch"
        assert 0.0 < first.overlay_dirt_ratio <= 0.2
        assert isinstance(fast_engine._frozen, DeltaCSR)

        second = fast_engine.apply_updates(
            [
                EdgeUpdate.insert(4, 5, 0.6),
                EdgeUpdate.insert(0, 9, 0.4),
                EdgeUpdate.insert(1, 8, 0.4),
            ],
            damage_threshold=1.0,
        )
        assert second.applied_mode == "compact"
        assert second.compacted and second.overlay_dirt_ratio > 0.2
        assert isinstance(fast_engine._frozen, CSRGraph)
        assert fast_engine.overlay_dirt_ratio() == 0.0

        third = fast_engine.apply_updates(
            [EdgeUpdate.delete(0, 9)], damage_threshold=1.0
        )
        assert third.applied_mode == "patch"
        assert isinstance(fast_engine._frozen, DeltaCSR)

        # The surviving state is still exact: answers equal a fresh build.
        fresh = InfluentialCommunityEngine.build(
            fast_engine.graph.copy(), config=_CONFIG, validate=False
        )
        query = make_topl_query({"movies"}, k=3, radius=2, theta=0.1, top_l=2)
        ours = tuple((c.vertices, c.score) for c in fast_engine.topl(query))
        theirs = tuple((c.vertices, c.score) for c in fresh.topl(query))
        assert ours == theirs

    def test_edit_log_resets_on_compaction(self, fast_engine):
        fast_engine.apply_updates([EdgeUpdate.delete(4, 5)], damage_threshold=1.0)
        assert fast_engine.serialized_overlay() is not None
        report = fast_engine.apply_updates(
            [
                EdgeUpdate.insert(4, 5, 0.6),
                EdgeUpdate.insert(0, 9, 0.4),
                EdgeUpdate.insert(1, 8, 0.4),
            ],
            damage_threshold=1.0,
        )
        assert report.compacted
        assert fast_engine.serialized_overlay() is None  # new base, empty log
