"""Targeted tests for incremental truss maintenance (exactness by construction)."""

from __future__ import annotations

from repro.dynamic.truss_maintenance import IncrementalTrussState
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.graph.generators import complete_graph, planted_community_graph
from repro.graph.social_network import SocialNetwork
from repro.truss.decomposition import truss_decomposition
from repro.truss.support import edge_key, edge_support

from tests.dynamic.strategies_dynamic import make_truss_state


def _assert_exact(state: IncrementalTrussState) -> None:
    """The state must match a from-scratch decomposition of its graph."""
    fresh = truss_decomposition(state.graph)
    assert state.trussness == fresh.edge_trussness
    assert state.supports == edge_support(state.graph)
    assert state.decomposition().vertex_trussness == fresh.vertex_trussness


def _near_clique() -> SocialNetwork:
    """A 4-clique missing one edge: every edge has trussness 3."""
    graph = SocialNetwork(name="near-clique")
    for u, v in ((0, 1), (0, 2), (0, 3), (1, 2), (1, 3)):
        graph.add_edge(u, v, 0.5)
    return graph


class TestInsertion:
    def test_completing_a_clique_lifts_a_distant_edge(self):
        """Inserting {2,3} lifts edge {0,1} to trussness 4 even though the
        support of {0,1} never changes — the candidate BFS must reach it."""
        graph = _near_clique()
        state = make_truss_state(graph)
        state.apply(UpdateBatch([EdgeUpdate.insert(2, 3, 0.5)]))
        assert state.trussness[edge_key(0, 1)] == 4
        _assert_exact(state)

    def test_insert_between_new_vertices(self):
        graph = _near_clique()
        state = make_truss_state(graph)
        delta = state.apply(
            UpdateBatch([EdgeUpdate.insert(10, 11, 0.4, keywords_u={"music"})])
        )
        assert delta.new_vertices == [10, 11]
        assert graph.keywords(10) == frozenset({"music"})
        assert state.trussness[edge_key(10, 11)] == 2
        _assert_exact(state)

    def test_pendant_insert_changes_nothing_else(self):
        graph = complete_graph(5, rng=1)
        state = make_truss_state(graph)
        before = dict(state.trussness)
        delta = state.apply(UpdateBatch([EdgeUpdate.insert(0, 99, 0.3)]))
        assert delta.truss_changed == set()
        for key, value in before.items():
            assert state.trussness[key] == value
        _assert_exact(state)


class TestDeletion:
    def test_clique_edge_deletion_cascades(self):
        graph = complete_graph(5, rng=1)  # every edge trussness 5
        state = make_truss_state(graph)
        delta = state.apply(UpdateBatch([EdgeUpdate.delete(0, 1)]))
        # The survivors drop: edges at 0 and 1 to 4, and the peeling of the
        # remaining K4 caps everything at 4.
        assert all(value == 4 for value in state.trussness.values())
        assert delta.deleted_edges[0][:2] == (0, 1)
        _assert_exact(state)

    def test_deleting_bridge_leaves_cliques_untouched(self, two_cliques_bridge):
        state = make_truss_state(two_cliques_bridge)
        before = dict(state.trussness)
        delta = state.apply(UpdateBatch([EdgeUpdate.delete(4, 5)]))
        assert delta.truss_changed == set()
        for key in before:
            if key != edge_key(4, 5):
                assert state.trussness[key] == before[key]
        _assert_exact(state)

    def test_delete_then_reinsert_restores_decomposition(self):
        graph = complete_graph(4, rng=2)
        state = make_truss_state(graph)
        before = dict(state.trussness)
        delta = state.apply(
            UpdateBatch(
                [EdgeUpdate.delete(0, 1), EdgeUpdate.insert(0, 1, 0.5)]
            )
        )
        assert state.trussness == before
        assert delta.truss_changed == set()
        _assert_exact(state)


class TestBatches:
    def test_mixed_batch_on_planted_graph(self):
        graph = planted_community_graph([8, 8, 8], intra_probability=0.8,
                                        inter_probability=0.1, rng=3)
        state = make_truss_state(graph)
        edits = [
            EdgeUpdate.delete(*next(iter(graph.edges()))),
            EdgeUpdate.insert(0, 23, 0.6),
            EdgeUpdate.insert(1, 16, 0.4),
        ]
        delta = state.apply(UpdateBatch(edits))
        assert delta.touched_vertices >= {0, 1, 16, 23}
        _assert_exact(state)

    def test_supports_adopted_by_reference(self):
        graph = complete_graph(4, rng=2)
        shared = edge_support(graph)
        state = make_truss_state(graph, supports=shared)
        state.apply(UpdateBatch([EdgeUpdate.delete(0, 1)]))
        # The caller's dict is the state's dict: updated in place.
        assert shared is state.supports
        assert shared == edge_support(graph)

    def test_delta_reports_net_changes_only(self):
        graph = _near_clique()
        state = make_truss_state(graph)
        delta = state.apply(
            UpdateBatch([EdgeUpdate.insert(2, 3, 0.5), EdgeUpdate.delete(2, 3)])
        )
        # Net effect is the identity: supports and trussness both report no
        # surviving change.
        assert delta.support_changed == set()
        assert delta.truss_changed == set()
        _assert_exact(state)
