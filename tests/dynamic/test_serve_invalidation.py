"""Regression: a serving engine must never return stale results across updates.

Before the dynamic subsystem, ``BatchQueryEngine`` had no invalidation path at
all: a graph mutation left whole results *and* memoised propagation scores in
the LRU caches, and every later query silently got pre-update answers.  These
tests pin the fix — epoch-tagged cache keys plus processor re-binding — by
asserting post-update serving answers always equal a from-scratch engine's.
"""

from __future__ import annotations

import pytest

from repro.core.engine import InfluentialCommunityEngine
from repro.dynamic.updates import EdgeUpdate
from repro.query.params import make_topl_query
from repro.serve.cache import propagation_cache_key, query_cache_key
from repro.pruning.stats import PruningConfig

from tests.dynamic.strategies_dynamic import dynamic_config

_CONFIG = dynamic_config(
    max_radius=2, thresholds=(0.1, 0.2, 0.3), fanout=3, leaf_capacity=4
)


def _fingerprint(result):
    return tuple((c.vertices, round(c.score, 9)) for c in result)


@pytest.fixture
def engine(two_cliques_bridge):
    return InfluentialCommunityEngine.build(
        two_cliques_bridge, config=_CONFIG, validate=False
    )


#: A query whose answer the updates below demonstrably change: the 4-clique
#: tagged "movies" is the only k=4 candidate.
QUERY = make_topl_query({"movies"}, k=4, radius=1, theta=0.2, top_l=1)


class TestResultCacheInvalidation:
    def test_answer_after_update_is_fresh(self, engine):
        serving = engine.serve()
        stale = serving.answer(QUERY)
        assert len(stale) == 1  # the movies 4-clique exists pre-update

        # Breaking a clique edge kills the only 4-truss: the cached result is
        # now wrong, and serving it would be the pre-fix bug.
        engine.apply_updates([EdgeUpdate.delete(0, 1)], damage_threshold=1.0)
        fresh = InfluentialCommunityEngine.build(
            engine.graph.copy(), config=_CONFIG, validate=False
        )
        assert _fingerprint(serving.answer(QUERY)) == _fingerprint(fresh.topl(QUERY))
        assert _fingerprint(serving.answer(QUERY)) != _fingerprint(stale)
        assert serving.epoch_refreshes == 1

    def test_run_after_update_is_fresh(self, engine):
        serving = engine.serve()
        warm = serving.run([QUERY, QUERY])
        assert warm.statistics.total_queries == 2

        engine.apply_updates([EdgeUpdate.delete(1, 2)], damage_threshold=1.0)
        batch = serving.run([QUERY])
        fresh = InfluentialCommunityEngine.build(
            engine.graph.copy(), config=_CONFIG, validate=False
        )
        assert _fingerprint(batch[0]) == _fingerprint(fresh.topl(QUERY))
        # The pre-update entry must not have been served from cache.
        assert batch.statistics.result_cache_hits == 0
        assert batch.statistics.executed == 1

    def test_rebuild_swaps_index_for_serving(self, engine):
        serving = engine.serve()
        serving.answer(QUERY)
        engine.apply_updates([EdgeUpdate.delete(0, 1)], rebuild=True)
        fresh = InfluentialCommunityEngine.build(
            engine.graph.copy(), config=_CONFIG, validate=False
        )
        assert _fingerprint(serving.answer(QUERY)) == _fingerprint(fresh.topl(QUERY))
        # The processors must now point at the rebuilt index object.
        assert serving._topl.index is engine.index


class TestPropagationCacheInvalidation:
    def test_memoised_scores_are_not_reused_across_updates(self, engine):
        # Result cache off isolates the propagation cache: the same seed
        # community is re-scored after an update that changes its influence.
        serving = engine.serve(result_cache_capacity=0)
        before = serving.answer(QUERY)

        # A high-probability edge out of the movies clique raises its
        # influential score without touching the clique's structure.
        engine.apply_updates(
            [EdgeUpdate.insert(3, 50, 0.95, keywords_v={"travel"})],
            damage_threshold=1.0,
        )
        after = serving.answer(QUERY)
        fresh = InfluentialCommunityEngine.build(
            engine.graph.copy(), config=_CONFIG, validate=False
        )
        assert _fingerprint(after) == _fingerprint(fresh.topl(QUERY))
        assert after[0].score > before[0].score


class TestEpochTaggedKeys:
    def test_query_cache_key_distinguishes_epochs(self):
        pruning = PruningConfig.all_enabled()
        assert query_cache_key(QUERY, pruning, 0) != query_cache_key(QUERY, pruning, 1)

    def test_propagation_cache_key_distinguishes_epochs(self):
        assert propagation_cache_key({1, 2}, 0.2, 0) != propagation_cache_key({1, 2}, 0.2, 1)
