"""Hypothesis strategies + backend plumbing for dynamic-graph scenarios.

The whole ``tests/dynamic`` suite honours ``REPRO_TEST_BACKEND``: the CI
backend-matrix job exports ``fast``, which runs every engine through the
array core and every directly-constructed truss state over a
:class:`~repro.fastgraph.delta.DeltaCSR` overlay — the same assertions then
prove the incremental fast path bit-identical to the reference rebuilds.
``REPRO_TEST_KERNELS`` additionally pins the fast backend's kernel tier:
the CI kernels-matrix job exports ``vector``, which drives every update
through the vector workspaces' dirty-overlay demotion paths.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.dynamic.truss_maintenance import IncrementalTrussState
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.truss.support import edge_key
from tests.property.strategies import KEYWORD_POOL, social_networks

__all__ = [
    "DYNAMIC_BACKEND",
    "KEYWORD_POOL",
    "dynamic_config",
    "dynamic_scenarios",
    "make_truss_state",
]

#: Backend the dynamic suite runs on; the CI matrix exports fast.
DYNAMIC_BACKEND = os.environ.get("REPRO_TEST_BACKEND", "reference")
#: Kernel tier of the fast backend; the kernels-matrix leg exports vector.
DYNAMIC_KERNELS = os.environ.get("REPRO_TEST_KERNELS", "auto")


def dynamic_config(**overrides) -> EngineConfig:
    """An :class:`EngineConfig` on the backend + kernel tier under test."""
    overrides.setdefault("backend", DYNAMIC_BACKEND)
    overrides.setdefault("kernel_tier", DYNAMIC_KERNELS)
    return EngineConfig(**overrides)


def make_truss_state(graph, **kwargs) -> IncrementalTrussState:
    """A truss state over the backend under test's graph core.

    On the fast backend the worklist runs over a ``DeltaCSR`` overlay of a
    fresh snapshot (exactly what the engine maintains); on the reference
    backend over the default ``AdjacencyCore`` view.
    """
    if DYNAMIC_BACKEND == "fast" and "core" not in kwargs:
        from repro.fastgraph.delta import DeltaCSR

        kwargs["core"] = DeltaCSR(graph.freeze())
    return IncrementalTrussState(graph, **kwargs)


@st.composite
def dynamic_scenarios(draw, max_edits: int = 8):
    """Generate ``(graph, truss_state, batch)`` with a sequentially-valid script.

    Edits are drawn one at a time against the evolving edge set, mixing
    insertions (including to brand-new vertices), deletions, and
    delete-then-reinsert churn.
    """
    graph = draw(social_networks(min_vertices=3, max_vertices=12))
    state = make_truss_state(graph)

    vertices = list(graph.vertices())
    edges = {edge_key(u, v) for u, v in graph.edges()}
    next_vertex = max(vertices) + 1
    num_edits = draw(st.integers(min_value=1, max_value=max_edits))

    updates: list[EdgeUpdate] = []
    for _ in range(num_edits):
        deletable = sorted(edges, key=sorted)
        can_delete = bool(deletable)
        do_insert = draw(st.booleans()) or not can_delete
        if do_insert:
            grow = draw(st.booleans())
            if grow:
                u = draw(st.sampled_from(vertices))
                v = next_vertex
                next_vertex += 1
                vertices.append(v)
            else:
                u = draw(st.sampled_from(vertices))
                candidates = [
                    w for w in vertices if w != u and edge_key(u, w) not in edges
                ]
                if not candidates:
                    continue
                v = draw(st.sampled_from(candidates))
            probability = draw(st.floats(min_value=0.05, max_value=0.95))
            updates.append(EdgeUpdate.insert(u, v, probability))
            edges.add(edge_key(u, v))
        else:
            key = draw(st.sampled_from(deletable))
            u, v = sorted(key)
            updates.append(EdgeUpdate.delete(u, v))
            edges.discard(key)
    return graph, state, UpdateBatch(updates)
