"""Hypothesis strategies for dynamic-graph scenarios (graph + edit script)."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dynamic.truss_maintenance import IncrementalTrussState
from repro.dynamic.updates import EdgeUpdate, UpdateBatch
from repro.truss.support import edge_key
from tests.property.strategies import KEYWORD_POOL, social_networks

__all__ = ["KEYWORD_POOL", "dynamic_scenarios"]


@st.composite
def dynamic_scenarios(draw, max_edits: int = 8):
    """Generate ``(graph, truss_state, batch)`` with a sequentially-valid script.

    Edits are drawn one at a time against the evolving edge set, mixing
    insertions (including to brand-new vertices), deletions, and
    delete-then-reinsert churn.
    """
    graph = draw(social_networks(min_vertices=3, max_vertices=12))
    state = IncrementalTrussState(graph)

    vertices = list(graph.vertices())
    edges = {edge_key(u, v) for u, v in graph.edges()}
    next_vertex = max(vertices) + 1
    num_edits = draw(st.integers(min_value=1, max_value=max_edits))

    updates: list[EdgeUpdate] = []
    for _ in range(num_edits):
        deletable = sorted(edges, key=sorted)
        can_delete = bool(deletable)
        do_insert = draw(st.booleans()) or not can_delete
        if do_insert:
            grow = draw(st.booleans())
            if grow:
                u = draw(st.sampled_from(vertices))
                v = next_vertex
                next_vertex += 1
                vertices.append(v)
            else:
                u = draw(st.sampled_from(vertices))
                candidates = [
                    w for w in vertices if w != u and edge_key(u, w) not in edges
                ]
                if not candidates:
                    continue
                v = draw(st.sampled_from(candidates))
            probability = draw(st.floats(min_value=0.05, max_value=0.95))
            updates.append(EdgeUpdate.insert(u, v, probability))
            edges.add(edge_key(u, v))
        else:
            key = draw(st.sampled_from(deletable))
            u, v = sorted(key)
            updates.append(EdgeUpdate.delete(u, v))
            edges.discard(key)
    return graph, state, UpdateBatch(updates)
