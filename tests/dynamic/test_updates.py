"""Tests for edit scripts: EdgeUpdate, UpdateBatch, JSON round trip, generation."""

from __future__ import annotations

import json

import pytest

from repro.dynamic.updates import EdgeUpdate, UpdateBatch, random_update_batch
from repro.exceptions import DynamicUpdateError
from repro.truss.support import edge_key


class TestEdgeUpdate:
    def test_insert_defaults(self):
        update = EdgeUpdate.insert("a", "b")
        assert update.op == "insert"
        assert update.key == edge_key("a", "b")

    def test_delete_constructor(self):
        update = EdgeUpdate.delete(1, 2)
        assert update.op == "delete"
        assert update.p_uv is None and update.p_vu is None

    def test_unknown_op_rejected(self):
        with pytest.raises(DynamicUpdateError):
            EdgeUpdate(op="toggle", u=1, v=2)

    def test_self_loop_rejected(self):
        with pytest.raises(DynamicUpdateError):
            EdgeUpdate.insert(3, 3)

    def test_delete_with_probability_rejected(self):
        with pytest.raises(DynamicUpdateError):
            EdgeUpdate(op="delete", u=1, v=2, p_uv=0.4)

    def test_dict_round_trip(self):
        update = EdgeUpdate.insert(1, 9, 0.3, 0.7, keywords_v={"music", "food"})
        parsed = EdgeUpdate.from_dict(update.as_dict())
        assert parsed == update

    def test_insert_dict_fills_probability_defaults(self):
        record = EdgeUpdate.insert(1, 2).as_dict()
        assert record["p_uv"] == 0.5
        assert record["p_vu"] == 0.5

    def test_malformed_record_rejected(self):
        with pytest.raises(DynamicUpdateError):
            EdgeUpdate.from_dict({"op": "insert", "u": 1})


class TestUpdateBatchValidation:
    def test_sequential_insert_then_delete_is_valid(self, triangle_graph):
        batch = UpdateBatch([EdgeUpdate.insert("a", "d"), EdgeUpdate.delete("a", "d")])
        batch.validate_against(triangle_graph)  # must not raise

    def test_duplicate_insert_rejected(self, triangle_graph):
        batch = UpdateBatch([EdgeUpdate.insert("a", "b")])
        with pytest.raises(DynamicUpdateError):
            batch.validate_against(triangle_graph)

    def test_delete_missing_edge_rejected(self, triangle_graph):
        batch = UpdateBatch([EdgeUpdate.delete("a", "d")])
        with pytest.raises(DynamicUpdateError):
            batch.validate_against(triangle_graph)

    def test_delete_then_reinsert_is_valid(self, triangle_graph):
        batch = UpdateBatch(
            [EdgeUpdate.delete("a", "b"), EdgeUpdate.insert("a", "b", 0.1)]
        )
        batch.validate_against(triangle_graph)

    def test_out_of_range_probability_rejected(self, triangle_graph):
        batch = UpdateBatch([EdgeUpdate.insert("a", "d", 1.5)])
        with pytest.raises(DynamicUpdateError):
            batch.validate_against(triangle_graph)

    def test_counts(self):
        batch = UpdateBatch(
            [EdgeUpdate.insert(1, 2), EdgeUpdate.delete(2, 3), EdgeUpdate.insert(4, 5)]
        )
        assert len(batch) == 3
        assert batch.num_insertions == 2
        assert batch.num_deletions == 1

    def test_non_edge_update_rejected(self):
        with pytest.raises(DynamicUpdateError):
            UpdateBatch([("insert", 1, 2)])


class TestApplyTo:
    def test_applies_sequentially_and_reports_new_vertices(self, triangle_graph):
        batch = UpdateBatch(
            [
                EdgeUpdate.insert("a", "x", 0.3, keywords_v={"music"}),
                EdgeUpdate.delete("a", "x"),
                EdgeUpdate.insert("x", "y", 0.4),
            ]
        )
        batch.validate_against(triangle_graph)
        new_vertices = batch.apply_to(triangle_graph)
        assert new_vertices == ["x", "y"]
        assert not triangle_graph.has_edge("a", "x")
        assert triangle_graph.has_edge("x", "y")
        assert triangle_graph.keywords("x") == frozenset({"music"})


class TestEditScriptRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        batch = UpdateBatch(
            [
                EdgeUpdate.insert(1, 2, 0.25, 0.75, keywords_u={"music"}),
                EdgeUpdate.delete(2, 3),
            ]
        )
        path = tmp_path / "edits.json"
        batch.save(path)
        loaded = UpdateBatch.load(path)
        assert loaded.updates == batch.updates

    def test_bare_list_accepted(self):
        loaded = UpdateBatch.from_json([{"op": "delete", "u": 1, "v": 2}])
        assert loaded[0] == EdgeUpdate.delete(1, 2)

    def test_missing_edits_key_rejected(self):
        with pytest.raises(DynamicUpdateError):
            UpdateBatch.from_json({"format": "repro-edit-script"})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DynamicUpdateError):
            UpdateBatch.load(tmp_path / "nope.json")

    def test_script_document_is_json(self, tmp_path):
        path = tmp_path / "edits.json"
        UpdateBatch([EdgeUpdate.insert(1, 2)]).save(path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro-edit-script"
        assert document["edits"][0]["op"] == "insert"


class TestRandomUpdateBatch:
    def test_generated_script_is_valid(self, planted_graph):
        batch = random_update_batch(planted_graph, 20, rng=5)
        assert len(batch) == 20
        batch.validate_against(planted_graph)

    def test_deterministic_for_same_seed(self, planted_graph):
        first = random_update_batch(planted_graph, 15, rng=11)
        second = random_update_batch(planted_graph, 15, rng=11)
        assert first.updates == second.updates

    def test_focus_restricts_endpoints(self, two_cliques_bridge):
        batch = random_update_batch(
            two_cliques_bridge, 10, rng=3, focus=0, focus_radius=1
        )
        allowed = {0, 1, 2, 3, 4}  # ball(0, 1) in clique A plus bridge vertex
        for update in batch:
            assert update.u in allowed and update.v in allowed

    def test_grow_probability_adds_new_vertices(self, planted_graph):
        batch = random_update_batch(
            planted_graph, 30, rng=7, insert_ratio=1.0, grow_probability=1.0,
            keyword_pool=("music", "food"),
        )
        existing = set(planted_graph.vertices())
        new = {u.v for u in batch if u.v not in existing}
        assert new, "grow_probability=1.0 must create vertices"
        batch.validate_against(planted_graph)

    def test_negative_size_rejected(self, planted_graph):
        with pytest.raises(DynamicUpdateError):
            random_update_batch(planted_graph, -1)
